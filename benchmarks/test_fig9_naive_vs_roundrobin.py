"""Figure 9 — NaïveQ vs RoundRobin vs number of relations ``n_R``.

Paper setup: ``c_R = 50`` tuples per relation, ``n_R ∈ {1 … 8}``,
round-robin used *for every join* (as the paper does "to make the
execution times comparable"). Paper observations: both curves grow
almost linearly with ``n_R``; RoundRobin is consistently slower.

Our in-memory engine has no per-SQL-query overhead, so the RoundRobin
penalty (one cursor advance per tuple) is visible but far smaller than
on 2005 Oracle — the *ordering* and both *linear shapes* are preserved;
EXPERIMENTS.md records the gap compression.
"""

from __future__ import annotations

import pytest

from repro.bench import fit_linear
from repro.core import (
    MaxTuplesPerRelation,
    STRATEGY_NAIVE,
    STRATEGY_ROUND_ROBIN,
    generate_result_database,
)

N_RELATIONS = [1, 2, 3, 4, 5, 6, 7, 8]
C_R = 50


def _run(setup, strategy):
    for seeds in setup.seed_sets:
        generate_result_database(
            setup.db,
            setup.schema,
            seeds,
            MaxTuplesPerRelation(C_R),
            strategy=strategy,
        )


@pytest.mark.parametrize("n_r", N_RELATIONS)
def test_fig9_naive_point(benchmark, chains, n_r):
    benchmark.group = "fig9 naive vs round-robin vs n_R (c_R=50)"
    setup = chains(n_r)
    benchmark(_run, setup, STRATEGY_NAIVE)


@pytest.mark.parametrize("n_r", N_RELATIONS)
def test_fig9_round_robin_point(benchmark, chains, n_r):
    benchmark.group = "fig9 naive vs round-robin vs n_R (c_R=50)"
    setup = chains(n_r)
    benchmark(_run, setup, STRATEGY_ROUND_ROBIN)


def _cost_series(chains, strategy):
    series = []
    for n_r in N_RELATIONS:
        setup = chains(n_r)
        with setup.db.meter.measure() as measured:
            _run(setup, strategy)
        series.append((n_r, measured.modeled_cost / len(setup.seed_sets)))
    return series


def test_fig9_shape(benchmark, chains):
    """Both strategies linear in n_R; RoundRobin costs strictly more."""
    benchmark.group = "fig9 naive vs round-robin vs n_R (c_R=50)"

    def sweep():
        return (
            _cost_series(chains, STRATEGY_NAIVE),
            _cost_series(chains, STRATEGY_ROUND_ROBIN),
        )

    naive, round_robin = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, series in (("naive", naive), ("round_robin", round_robin)):
        fit = fit_linear([x for x, __ in series], [y for __, y in series])
        assert fit.r_squared >= 0.98, f"{label} not linear: {series}"
        benchmark.extra_info[f"{label} series (n_R, modeled cost)"] = series
    # the round-robin penalty: strictly more work wherever joins execute
    for (n_r, cost_naive), (__, cost_rr) in zip(naive, round_robin):
        if n_r > 1:
            assert cost_rr > cost_naive, (
                f"round-robin not slower at n_R={n_r}: "
                f"{cost_rr} vs {cost_naive}"
            )
    # ... and the gap itself grows with n_R (more joins, more cursors)
    gaps = [rr - nv for (__, nv), (__, rr) in zip(naive, round_robin)]
    assert gaps == sorted(gaps)
