"""Figure 8 — Result Database Generator time vs tuples-per-relation c_R.

Paper setup: ``n_R = 4`` relations in the answer, NaïveQ everywhere,
``c_R ∈ {10 … 90}``, averaging over relation sets / start relations /
5 random seed sets. Paper observation: "time increases almost linearly
with c_R, in agreement with Formula (2)".

The parametrized benchmark is the series; the shape test fits a line to
the deterministic modeled cost and requires r² ≥ 0.98.
"""

from __future__ import annotations

import pytest

from repro.bench import fit_linear
from repro.core import (
    MaxTuplesPerRelation,
    STRATEGY_NAIVE,
    generate_result_database,
)

CARDINALITIES = [10, 30, 50, 70, 90]
N_RELATIONS = 4


def _generate(setup, c_r, seeds):
    return generate_result_database(
        setup.db,
        setup.schema,
        seeds,
        MaxTuplesPerRelation(c_r),
        strategy=STRATEGY_NAIVE,
    )


@pytest.mark.parametrize("c_r", CARDINALITIES)
def test_fig8_point(benchmark, chains, c_r):
    benchmark.group = "fig8 result-database-generator vs c_R (naive, n_R=4)"
    setup = chains(N_RELATIONS)

    def run():
        for seeds in setup.seed_sets:
            _generate(setup, c_r, seeds)

    benchmark(run)


def test_fig8_shape_linear_in_cr(benchmark, chains):
    """Modeled cost (and tuple count) grow linearly in c_R."""
    benchmark.group = "fig8 result-database-generator vs c_R (naive, n_R=4)"
    setup = chains(N_RELATIONS)

    def sweep():
        series = []
        for c_r in CARDINALITIES:
            with setup.db.meter.measure() as measured:
                for seeds in setup.seed_sets:
                    answer, __ = _generate(setup, c_r, seeds)
            series.append((c_r, measured.modeled_cost / len(setup.seed_sets)))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = fit_linear([x for x, __ in series], [y for __, y in series])
    assert fit.r_squared >= 0.98, f"not linear in c_R: {series}"
    assert fit.slope > 0
    benchmark.extra_info["series (c_R, modeled cost)"] = series
    benchmark.extra_info["r_squared"] = fit.r_squared


def test_fig8_cardinalities_saturate_at_cap(benchmark, chains):
    """Sanity: each relation actually reaches the c_R cap (the chain

    has enough joinable tuples at every level), so the sweep measures
    retrieval, not data exhaustion."""
    benchmark.group = "fig8 result-database-generator vs c_R (naive, n_R=4)"
    setup = chains(N_RELATIONS)
    answer, __ = benchmark.pedantic(
        _generate, args=(setup, 90, setup.seed_sets[0]), rounds=1, iterations=1
    )
    cards = answer.cardinalities()
    for relation in ("R2", "R3", "R4"):
        assert cards[relation] == 90, cards
