"""Figure 7 — Result Schema Generator execution time vs degree ``d``.

Paper setup: degree = maximum number of attributes projected
(``TopRProjections``), query tokens contained in a single relation,
20 random weight sets × 10 start relations per point (the paper averages
200 runs/point). Paper observation: "execution time … is very small even
for large values of d" — negligible next to the database generator.

The parametrized benchmark table reproduces the series; the shape test
asserts the negligible-and-at-most-linear growth on popped-path counts
(the deterministic proxy for work done).
"""

from __future__ import annotations

import pytest

from repro.bench import fit_linear
from repro.core import TopRProjections, generate_result_schema
from repro.core.schema_generator import SchemaGeneratorStats

DEGREES = [5, 10, 20, 40, 80, 120]


def _run_all(graph, weight_sets, start_relations, d):
    """One Figure 7 point: all weight sets × all start relations."""
    for weights in weight_sets:
        personalized = graph.with_weights(weights)
        for origin in start_relations:
            generate_result_schema(
                personalized, [origin], TopRProjections(d)
            )


@pytest.mark.parametrize("d", DEGREES)
def test_fig7_point(
    benchmark, fig7_graph, fig7_weight_sets, fig7_start_relations, d
):
    benchmark.group = "fig7 result-schema-generator vs d"
    # benchmark one run (one weight set, one start relation), averaged
    # internally by pytest-benchmark; the sweep harness lives in the
    # shape test and run_experiments.py
    weights = fig7_weight_sets[0]
    personalized = fig7_graph.with_weights(weights)
    origin = fig7_start_relations[0]
    result = benchmark(
        generate_result_schema, personalized, [origin], TopRProjections(d)
    )
    assert len(result.projected_attributes) <= d


def test_fig7_shape(benchmark, fig7_graph, fig7_weight_sets, fig7_start_relations):
    """Work grows at most linearly in d and stays small in absolute

    terms (the paper's 'negligible' claim)."""
    benchmark.group = "fig7 result-schema-generator vs d"

    def sweep():
        series = []
        for d in DEGREES:
            popped = 0
            for weights in fig7_weight_sets[:5]:
                personalized = fig7_graph.with_weights(weights)
                for origin in fig7_start_relations[:4]:
                    stats = SchemaGeneratorStats()
                    generate_result_schema(
                        personalized, [origin], TopRProjections(d),
                        stats=stats,
                    )
                    popped += stats.paths_popped
            series.append((d, popped / 20.0))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    xs = [d for d, __ in series]
    ys = [work for __, work in series]
    assert all(y2 >= y1 for y1, y2 in zip(ys, ys[1:])), "work is monotone"
    fit = fit_linear(xs, ys)
    assert fit.r_squared > 0.9, f"super-linear growth: {series}"
    benchmark.extra_info["series (d, avg paths popped)"] = series
