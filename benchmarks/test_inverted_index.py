"""Inverted-index substrate bench (§4: "we chose to build our own

inverted index that allows efficient retrieval of all occurrences of a
token"). Measures build throughput and word/phrase lookup latency at
three database scales, so index costs can be separated from generator
costs in the other figures.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_movies_database
from repro.text import build_index

SCALES = [100, 400, 1600]


@pytest.fixture(scope="module")
def databases():
    return {n: generate_movies_database(n_movies=n, seed=3) for n in SCALES}


@pytest.fixture(scope="module")
def indexes(databases):
    return {n: build_index(db) for n, db in databases.items()}


@pytest.mark.parametrize("n_movies", SCALES)
def test_index_build(benchmark, databases, n_movies):
    benchmark.group = "inverted index: build"
    db = databases[n_movies]
    index = benchmark(build_index, db)
    benchmark.extra_info["vocabulary"] = index.vocabulary_size
    benchmark.extra_info["postings"] = index.postings_count()


@pytest.mark.parametrize("n_movies", SCALES)
def test_word_lookup(benchmark, indexes, n_movies):
    benchmark.group = "inverted index: word lookup"
    index = indexes[n_movies]
    occurrences = benchmark(index.lookup_word, "drama")
    assert occurrences


@pytest.mark.parametrize("n_movies", SCALES)
def test_phrase_lookup(benchmark, databases, indexes, n_movies):
    benchmark.group = "inverted index: phrase lookup"
    db = databases[n_movies]
    index = indexes[n_movies]
    name = next(
        row["DNAME"] for row in db.relation("DIRECTOR").scan(["DNAME"])
    )
    occurrences = benchmark(index.lookup_token, name)
    assert any(o.relation == "DIRECTOR" for o in occurrences)
