"""Ablation — précis vs DISCOVER-style vs BANKS-style keyword search.

Related-work positioning (§2): same tokens, same inverted index, same
schema graph, three answer models. Reports response time per system plus
answer-shape metrics in extra_info: the précis answer is *one*
multi-relation database; DISCOVER returns N flattened rows that repeat
the same director once per movie-genre combination; BANKS returns rooted
tuple trees.
"""

from __future__ import annotations

import pytest

from repro import MaxTuplesPerRelation, PrecisEngine, WeightThreshold
from repro.baselines import BanksSearch, DiscoverSearch
from repro.datasets import generate_movies_database, movies_graph


@pytest.fixture(scope="module")
def setup():
    db = generate_movies_database(n_movies=150, seed=21)
    graph = movies_graph()
    engine = PrecisEngine(db, graph=graph)
    # a director with several movies makes the flattening effect visible
    director = max(
        (
            (
                sum(
                    1
                    for row in db.relation("MOVIE").scan(["DID"])
                    if row["DID"] == d["DID"]
                ),
                d["DNAME"],
            )
            for d in (
                row.as_dict() for row in db.relation("DIRECTOR").scan()
            )
        )
    )[1]
    discover = DiscoverSearch(db, graph, engine.index)
    banks = BanksSearch(db, graph, engine.index)
    banks.data_graph()  # build once, outside the timed region
    return engine, discover, banks, director


def test_precis(benchmark, setup):
    benchmark.group = "baseline comparison (same token)"
    engine, __, ___, director = setup
    answer = benchmark(
        engine.ask,
        f'"{director}"',
        degree=WeightThreshold(0.9),
        cardinality=MaxTuplesPerRelation(10),
    )
    assert answer.found
    benchmark.extra_info["answer shape"] = (
        f"1 sub-database: {answer.cardinalities()}"
    )


def test_discover(benchmark, setup):
    benchmark.group = "baseline comparison (same token)"
    __, discover, ___, director = setup
    surname = director.split()[-1]
    results = benchmark(discover.search, [surname], 50)
    assert results
    benchmark.extra_info["answer shape"] = f"{len(results)} flat joined rows"


def test_banks(benchmark, setup):
    benchmark.group = "baseline comparison (same token)"
    __, ___, banks, director = setup
    surname = director.split()[-1]
    trees = benchmark(banks.search, [surname], 10)
    assert trees
    benchmark.extra_info["answer shape"] = f"{len(trees)} tuple trees"


def _shared_genre(db, director):
    """A genre carried by at least two of the director's movies."""
    did = next(
        row["DID"]
        for row in db.relation("DIRECTOR").scan()
        if row["DNAME"] == director
    )
    mids = {
        row["MID"]
        for row in db.relation("MOVIE").scan(["MID", "DID"])
        if row["DID"] == did
    }
    counts: dict[str, int] = {}
    for row in db.relation("GENRE").scan(["MID", "GENRE"]):
        if row["MID"] in mids:
            counts[row["GENRE"]] = counts.get(row["GENRE"], 0) + 1
    return max(counts, key=counts.get)


def test_flattening_redundancy(benchmark, setup):
    """DISCOVER repeats the matching tuple once per join combination

    (one row per drama movie of the director); the précis carries the
    director exactly once."""
    benchmark.group = "baseline comparison (same token)"
    engine, discover, __, director = setup
    genre = _shared_genre(engine.db, director)
    surname = director.split()[-1]

    def run():
        answer = engine.ask(
            f'"{director}"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(10),
        )
        rows = discover.search([surname, genre], limit=None)
        return answer, rows

    answer, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    director_copies = sum(
        1
        for r in rows
        if any(
            row.relation == "DIRECTOR"
            and row.get("DNAME") == director
            for row in r.rows.values()
        )
    )
    in_precis = sum(
        1
        for row in answer.database.relation("DIRECTOR").scan(["DNAME"])
        if row["DNAME"] == director
    )
    assert in_precis == 1
    assert director_copies > 1
    benchmark.extra_info["copies"] = {
        "discover_rows_repeating_director": director_copies,
        "precis_director_tuples": in_precis,
    }
