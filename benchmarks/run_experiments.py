"""Regenerate every §6 series as explicit tables (for EXPERIMENTS.md).

Usage::

    python benchmarks/run_experiments.py [--backend memory|sqlite] [fig7 ...]

Prints, for each figure of the paper's evaluation, the x-axis, the
wall-clock time per point (this machine) and the deterministic modeled
cost (abstract I/O units, machine-independent), plus the ablation
tables. The pytest-benchmark suite covers the same ground with rigorous
timing; this script exists to produce compact, diffable tables.

Every experiment also returns its table as a structured payload, and
``main`` collects them into ``BENCH_precis.json`` at the repo root
(``--json-out`` overrides the path, ``--json-out -`` skips the file):
per-experiment wall-clock timings plus, for the ``overhead``
experiment, the key service counters from a metrics-enabled warm loop.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.bench import (
    chain_database,
    chain_graph,
    fit_linear,
    print_series,
    random_schema_graph,
)
from repro.core import (
    MaxTuplesPerRelation,
    STRATEGY_NAIVE,
    STRATEGY_ROUND_ROBIN,
    TopRProjections,
    WeightThreshold,
    generate_result_database,
    generate_result_schema,
)
from repro.core.schema_generator import SchemaGeneratorStats
from repro.graph import random_weight_assignments


def _time(fn, repeat=3):
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _table(title, columns, rows, **extra):
    """Print one series and return it as a JSON-compatible payload."""
    print_series(title, columns, rows)
    payload = {"title": title, "columns": list(columns), "rows": rows}
    payload.update(extra)
    return payload


def figure_7():
    """Result Schema Generator time vs degree d (tokens in one relation,

    20 random weight sets x 10 start relations per point)."""
    graph = random_schema_graph(n_relations=30, attrs_per_relation=8, seed=0)
    weight_sets = random_weight_assignments(graph, 20, seed=1)
    rng = random.Random(2)
    origins = rng.sample(list(graph.relations), 10)
    rows = []
    for d in (5, 10, 20, 40, 80, 120):
        runs = [
            (graph.with_weights(w), o) for w in weight_sets for o in origins
        ]

        def sweep():
            for personalized, origin in runs:
                generate_result_schema(
                    personalized, [origin], TopRProjections(d)
                )

        seconds = _time(sweep, repeat=1)
        stats = SchemaGeneratorStats()
        generate_result_schema(
            graph.with_weights(weight_sets[0]), [origins[0]],
            TopRProjections(d), stats=stats,
        )
        rows.append([d, seconds / len(runs) * 1e3, stats.paths_popped])
    return _table(
        "Figure 7 — Result Schema Generator vs degree d "
        "(avg of 200 runs/point)",
        ["d", "ms/run", "paths popped (1 run)"],
        rows,
    )


class _Chain:
    def __init__(self, n, backend=None):
        self.db = chain_database(
            n, roots=100, fanout=3, seed=0,
            max_tuples_per_relation=3000, backend=backend,
        )
        self.schema = generate_result_schema(
            chain_graph(n), ["R1"], WeightThreshold(0.9)
        )
        rng = random.Random(17)
        tids = list(self.db.relation("R1").tids())
        self.seed_sets = [
            {"R1": set(rng.sample(tids, 40))} for __ in range(5)
        ]

    def run(self, c_r, strategy):
        for seeds in self.seed_sets:
            generate_result_database(
                self.db, self.schema, seeds,
                MaxTuplesPerRelation(c_r), strategy=strategy,
            )


def figure_8(backend=None):
    """Result Database Generator vs c_R (n_R = 4, NaïveQ)."""
    chain = _Chain(4, backend)
    rows = []
    for c_r in (10, 30, 50, 70, 90):
        seconds = _time(lambda: chain.run(c_r, STRATEGY_NAIVE))
        with chain.db.meter.measure() as measured:
            chain.run(c_r, STRATEGY_NAIVE)
        rows.append(
            [c_r, seconds / 5 * 1e3, measured.modeled_cost / 5]
        )
    fit = fit_linear([r[0] for r in rows], [r[2] for r in rows])
    payload = _table(
        "Figure 8 — Result Database Generator vs c_R (naive, n_R=4)",
        ["c_R", "ms/run", "modeled cost/run"],
        rows,
        fit_r_squared=fit.r_squared,
    )
    print(f"   linear fit of modeled cost: r^2 = {fit.r_squared:.4f}")
    return payload


def figure_9(backend=None):
    """NaïveQ vs RoundRobin vs n_R (c_R = 50)."""
    rows = []
    for n_r in range(1, 9):
        chain = _Chain(n_r, backend)
        t_naive = _time(lambda: chain.run(50, STRATEGY_NAIVE))
        t_rr = _time(lambda: chain.run(50, STRATEGY_ROUND_ROBIN))
        with chain.db.meter.measure() as m_naive:
            chain.run(50, STRATEGY_NAIVE)
        with chain.db.meter.measure() as m_rr:
            chain.run(50, STRATEGY_ROUND_ROBIN)
        rows.append(
            [
                n_r,
                t_naive / 5 * 1e3,
                t_rr / 5 * 1e3,
                m_naive.modeled_cost / 5,
                m_rr.modeled_cost / 5,
            ]
        )
    fits = {}
    for label, column in (("naive", 3), ("round-robin", 4)):
        fit = fit_linear([r[0] for r in rows], [r[column] for r in rows])
        fits[label] = fit.r_squared
    payload = _table(
        "Figure 9 — NaïveQ vs RoundRobin vs n_R (c_R=50)",
        ["n_R", "naive ms", "rrobin ms", "naive cost", "rrobin cost"],
        rows,
        fit_r_squared=fits,
    )
    for label, r_squared in fits.items():
        print(f"   {label} modeled cost linear fit: r^2 = {r_squared:.4f}")
    return payload


def formula_2(backend=None):
    """Cost model check: measured vs c_R * n_R * (IndexTime+TupleTime)."""
    rows = []
    for n_r, c_r in ((2, 20), (4, 30), (4, 60), (6, 40), (8, 50)):
        chain = _Chain(n_r, backend)
        with chain.db.meter.measure() as measured:
            generate_result_database(
                chain.db, chain.schema, chain.seed_sets[0],
                MaxTuplesPerRelation(c_r), strategy=STRATEGY_NAIVE,
            )
        predicted = c_r * n_r * chain.db.meter.params.unit_fetch
        rows.append(
            [n_r, c_r, measured.modeled_cost, predicted,
             measured.modeled_cost / predicted]
        )
    return _table(
        "Formula (2) — measured modeled cost vs c_R*n_R*(It+Tt)",
        ["n_R", "c_R", "measured", "formula2", "ratio"],
        rows,
    )


def ablation_strategies(backend=None):
    """Coverage under skew: the §5.2 motivation for RoundRobin."""
    from repro.bench import chain_graph, chain_schema
    from repro.relational import Database

    schema = chain_schema(2)
    db = Database(schema, backend=backend)
    n_parents, heavy = 20, 50
    for pid in range(1, n_parents + 1):
        db.insert("R1", {"ID": pid, "VAL": f"parent {pid}"})
    cid = 1000
    for __ in range(heavy):
        db.insert("R2", {"ID": cid, "REF": 1, "VAL": f"child {cid}"})
        cid += 1
    for pid in range(2, n_parents + 1):
        db.insert("R2", {"ID": cid, "REF": pid, "VAL": f"child {cid}"})
        cid += 1
    db.create_join_indexes()
    result_schema = generate_result_schema(
        chain_graph(2), ["R1"], WeightThreshold(0.9)
    )
    seeds = {"R1": set(db.relation("R1").tids())}
    rows = []
    for strategy in ("naive", "round_robin", "auto"):
        answer, __ = generate_result_database(
            db, result_schema, seeds, MaxTuplesPerRelation(20),
            strategy=strategy,
        )
        parents = {r["ID"] for r in answer.relation("R1").scan(["ID"])}
        covered = {r["REF"] for r in answer.relation("R2").scan(["REF"])}
        rows.append([strategy, len(parents & covered) / len(parents)])
    return _table(
        "Ablation — retrieval strategies under skew "
        "(1 parent owns 50/69 children, budget 20)",
        ["strategy", "driving-tuple coverage"],
        rows,
    )


def ablation_join_order(backend=None):
    """Budget-weighted relevance: heaviest-first vs FIFO (§5.2)."""
    from repro.core import JOIN_ORDER_FIFO, JOIN_ORDER_WEIGHT, MaxTotalTuples
    from repro.datasets import generate_movies_database, movies_graph
    from repro.graph import random_weight_assignment

    db = generate_movies_database(n_movies=150, seed=5, backend=backend)
    seeds = {
        "MOVIE": set(list(db.relation("MOVIE").tids())[:2]),
        "ACTOR": set(list(db.relation("ACTOR").tids())[:2]),
        "THEATRE": set(list(db.relation("THEATRE").tids())[:2]),
    }

    def relevance(report):
        score = float(sum(report.seed_counts.values()))
        for execution in report.executions:
            score += execution.tuples_new * execution.edge.weight
        return score

    totals = {"weight": 0.0, "fifo": 0.0}
    for seed in range(12):
        graph = movies_graph().with_weights(
            random_weight_assignment(movies_graph(), random.Random(seed))
        )
        schema = generate_result_schema(
            graph, ["MOVIE", "ACTOR", "THEATRE"], TopRProjections(12)
        )
        for name, order in (
            ("weight", JOIN_ORDER_WEIGHT),
            ("fifo", JOIN_ORDER_FIFO),
        ):
            __, report = generate_result_database(
                db, schema, seeds, MaxTotalTuples(40), join_order=order
            )
            totals[name] += relevance(report)
    return _table(
        "Ablation — join order under a 40-tuple total budget "
        "(12 random weight sets)",
        ["order", "budget-weighted relevance"],
        [[name, value] for name, value in totals.items()],
    )


def ablation_cache(backend=None):
    """Warm vs cold repeated asks under each cache configuration."""
    from repro.cache import CacheConfig
    from repro.core import PrecisEngine
    from repro.datasets import generate_movies_database, movies_graph

    db = generate_movies_database(n_movies=300, seed=7, backend=backend)
    graph = movies_graph()
    queries = [
        "midnight",
        "drama",
        "crimson harbor",
        "garcia",
        "thriller",
    ]
    configs = [
        ("off", None),
        ("plans", CacheConfig(plans=True, answers=False)),
        ("plans+answers", CacheConfig(plans=True, answers=True)),
    ]
    rows = []
    for label, config in configs:
        engine = PrecisEngine(db, graph=graph, cache=config)
        for query in queries:  # cold pass fills the caches
            engine.ask(query, cardinality=MaxTuplesPerRelation(10))

        def warm():
            for query in queries:
                engine.ask(query, cardinality=MaxTuplesPerRelation(10))

        seconds = _time(warm)
        stats = engine.cache_stats()
        hits = sum(layer["hits"] for layer in stats.values())
        misses = sum(layer["misses"] for layer in stats.values())
        rows.append([label, seconds / len(queries) * 1e3, hits, misses])
    baseline = rows[0][1]
    for row in rows:
        row.append(baseline / row[1])
    return _table(
        "Ablation — repeated asks per cache configuration "
        "(300-movie db, warm passes)",
        ["cache", "ms/ask", "hits", "misses", "speedup"],
        rows,
    )


def metrics_overhead(backend=None):
    """Ask latency with the service layers off vs on (warm passes).

    The acceptance bar: with metrics *disabled* the engine takes the
    exact PR-3 code path (``self.metrics is None`` short-circuits), so
    "off" IS the baseline and any metrics cost shows only in the other
    rows. The metrics row also contributes the key service counters to
    ``BENCH_precis.json``.
    """
    from repro.core import PrecisEngine
    from repro.datasets import generate_movies_database, movies_graph
    from repro.obs import Tracer

    db = generate_movies_database(n_movies=200, seed=9, backend=backend)
    graph = movies_graph()
    queries = ["midnight", "drama", "garcia", "thriller", "comedy"]
    configs = [
        ("off", {}),
        ("metrics", {"metrics": True}),
        ("metrics+slowlog", {"metrics": True, "slow_query_ms": 0.0}),
        ("traced", {"tracer": Tracer()}),
    ]
    rows = []
    counters = {}
    histogram = {}
    for label, kwargs in configs:
        engine = PrecisEngine(db, graph=graph, **kwargs)
        for query in queries:  # warm-up pass
            engine.ask(query, cardinality=MaxTuplesPerRelation(10))

        def warm():
            for query in queries:
                engine.ask(query, cardinality=MaxTuplesPerRelation(10))

        seconds = _time(warm)
        rows.append([label, seconds / len(queries) * 1e3])
        if label == "metrics":
            snapshot = engine.metrics_snapshot()
            counters = {
                name: value
                for name, value in snapshot["counters"].items()
                if "{" not in name  # unlabeled key counters only
            }
            histogram = snapshot["histograms"]["precis_ask_seconds"]
            histogram = {
                k: histogram[k]
                for k in ("count", "p50", "p95", "p99")
            }
    baseline = rows[0][1]
    for row in rows:
        row.append(row[1] / baseline)
    return _table(
        "Overhead — warm ask latency per service-layer configuration "
        "(200-movie db)",
        ["config", "ms/ask", "vs off"],
        rows,
        counters=counters,
        ask_histogram=histogram,
        note="metrics=None short-circuits every service-layer branch: "
        "the 'off' row is the pre-metrics baseline by construction",
    )


def serve_bench(backend=None):
    """Closed-loop serving-layer benchmark (repro.service): throughput
    and client-observed latency with and without a per-request
    deadline. With the deadline on, p99 stays bounded near it — queued
    requests past the deadline are shed stale, executing ones degrade
    cooperatively at the next iteration boundary."""
    from repro.service import movies_workload, run_serve_bench

    engine, queries = movies_workload(n_movies=200, backend=backend)
    rows = []
    payloads = {}
    for label, deadline_ms in (("none", None), ("50ms", 50.0)):
        payload = run_serve_bench(
            engine,
            queries,
            client_threads=8,
            requests_per_client=15,
            workers=2,
            deadline_ms=deadline_ms,
        )
        payloads[label] = payload
        outcomes = payload["outcomes"]
        latency = payload["latency_ms"]
        rows.append(
            [
                label,
                outcomes["answered"],
                outcomes["degraded"],
                outcomes["shed_full"] + outcomes["shed_stale"],
                payload["throughput_rps"],
                latency["p50"] or 0.0,
                latency["p99"] or 0.0,
            ]
        )
    return _table(
        "Serving layer — closed loop, 8 clients x 15 requests, 2 workers",
        ["deadline", "answered", "degraded", "shed", "req/s", "p50 ms",
         "p99 ms"],
        rows,
        runs=payloads,
    )


def frontdoor_bench(backend=None):
    """Open-loop overload A/B for the async front door
    (repro.service.frontdoor): the same seeded Poisson stream at ~2x
    capacity with a 60% duplicate share, coalescing on vs off. The
    headline columns are goodput (non-degraded answers per second of
    makespan), shed rate and the coalescing hit rate — the gate in
    benchmarks/test_frontdoor.py asserts hit rate >= 0.4 and goodput
    ratio >= 1.5 on these same counters."""
    import time as _time

    from repro.service import (
        OpenLoopConfig,
        movies_workload,
        run_frontdoor_bench,
    )

    engine, queries = movies_workload(n_movies=200, backend=backend)
    for query in queries:
        engine.ask(query)  # warm
    start = _time.perf_counter()
    for query in queries:
        engine.ask(query)
    mean_ask = (_time.perf_counter() - start) / len(queries)
    workers = 2
    rate = 2.0 * workers / mean_ask
    config = OpenLoopConfig(
        arrival_rate=rate,
        duration_s=min(2.0, max(0.5, 300.0 / rate)),
        duplicate_fraction=0.6,
        batch_fraction=0.25,
        deadline_ms=mean_ask * 1e3 * 50.0,
    )
    payload = run_frontdoor_bench(engine, queries, config, workers=workers)
    rows = []
    for label in ("coalesced", "uncoalesced"):
        arm = payload[label]
        interactive = arm["classes"].get("interactive", {})
        latency = interactive.get("latency_ms") or {}
        rows.append(
            [
                label,
                arm["offered"],
                arm["outcomes"]["answered"],
                round(arm["goodput_rps"], 1),
                round(arm["shed_rate"], 3),
                round(arm["coalesce_hit_rate"], 3),
                round(latency.get("p50") or 0.0, 1),
                round(latency.get("p99") or 0.0, 1),
            ]
        )
    return _table(
        "Front door — open loop at ~2x capacity, 60% duplicates, "
        f"{workers} workers",
        ["arm", "offered", "answered", "goodput r/s", "shed", "hit rate",
         "int p50 ms", "int p99 ms"],
        rows,
        **payload,
    )


def tracing_overhead(backend=None):
    """Cost and yield of end-to-end request tracing (repro.obs.context):
    throughput with sampling on vs off (budget: <= 5% at 10%), plus the
    statistical profiler's per-stage self-time attribution — the
    correlation layer must be cheap enough to leave on."""
    from repro.service import measure_trace_overhead, movies_workload
    from repro.service import run_serve_bench

    engine, queries = movies_workload(n_movies=200, backend=backend)
    overhead = measure_trace_overhead(engine, queries, sample_rate=0.1)
    profiled = run_serve_bench(
        engine,
        queries,
        client_threads=4,
        requests_per_client=15,
        workers=2,
        profile=True,
    )
    profile = profiled.get("profile", {})
    rows = [
        [
            f"{overhead['sample_rate']:.0%}",
            overhead["baseline_rps"],
            overhead["traced_rps"],
            overhead["overhead_pct"],
            profile.get("attributed_fraction", 0.0) * 100.0,
        ]
    ]
    return _table(
        "Tracing overhead — sampling on vs off, best of "
        f"{overhead['rounds']}",
        ["sample", "base req/s", "traced req/s", "overhead %",
         "profiled %"],
        rows,
        overhead=overhead,
        profile=profile,
    )


def _deep_size(obj, seen=None) -> int:
    """Recursive ``sys.getsizeof``: containers, dataclasses, __dict__ and
    __slots__ objects. Approximate by design — used for *ratios* (overlay
    footprint vs graph-clone footprint), not absolute accounting."""
    import sys as _sys

    seen = seen if seen is not None else set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = _sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += _deep_size(key, seen) + _deep_size(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += _deep_size(item, seen)
    else:
        if hasattr(obj, "__dict__"):
            size += _deep_size(vars(obj), seen)
        for slot in getattr(type(obj), "__slots__", ()):
            if hasattr(obj, slot):
                size += _deep_size(getattr(obj, slot), seen)
    return size


def tenants_scaling(backend=None, tenant_counts=(1, 10, 100, 1000)):
    """Multi-tenant overlay scaling: asks/sec and plan-cache hit rate at
    1, 10, 100, 1000 distinct per-tenant overlays on one shared engine,
    plus the memory story — the summed footprint of N sparse overlay
    patch maps must stay far below N materialized graph clones (the
    gate that makes 'millions of profiles' plausible)."""
    from repro.cache import CacheConfig
    from repro.core import PrecisEngine
    from repro.datasets import generate_movies_database, movies_graph
    from repro.graph import WeightOverlay

    db = generate_movies_database(n_movies=80, seed=11, backend=backend)
    base = movies_graph()
    queries = ["midnight", "drama", "garcia", "thriller", "comedy"]
    asks_per_point = 200

    def tenant_overlay(i, n):
        # distinct effective weights per tenant: never equal to the base
        # (TITLE base 1.0, GENRE base 0.9), never colliding across i
        return {
            ("proj", "MOVIE", "TITLE"): 0.2 + 0.6 * i / n,
            ("join", "MOVIE", "GENRE"): 0.15,
        }

    rows = []
    memory = {}
    for n in tenant_counts:
        overlays = [tenant_overlay(i, n) for i in range(n)]
        # answer caching off: an answer-cache hit would short-circuit
        # ask() before the plan cache is consulted, hiding exactly the
        # per-tenant plan-sharing behaviour this table measures
        engine = PrecisEngine(
            db,
            graph=base,
            cache=CacheConfig(plans=True, plan_entries=max(256, 2 * n)),
        )

        def sweep():
            for i in range(asks_per_point):
                engine.ask(
                    queries[i % len(queries)],
                    degree=WeightThreshold(0.5),
                    weights=overlays[i % n],
                )

        sweep()  # warm pass
        seconds = _time(sweep, repeat=1)
        stats = engine.cache.plans.stats
        consulted = stats.hits + stats.misses
        hit_rate = stats.hits / consulted if consulted else 0.0
        overlay_bytes = _deep_size(
            [WeightOverlay(base, o).patches for o in overlays]
        )
        clone_bytes = _deep_size(base.with_weights(overlays[0])) * n
        rows.append(
            [
                n,
                asks_per_point / seconds,
                hit_rate,
                overlay_bytes / 1024.0,
                clone_bytes / 1024.0,
            ]
        )
        memory[n] = {
            "overlay_bytes": overlay_bytes,
            "clone_bytes": clone_bytes,
        }
    largest = max(tenant_counts)
    ratio = (
        memory[largest]["overlay_bytes"] / memory[largest]["clone_bytes"]
    )
    if largest >= 100 and ratio > 0.5:
        raise RuntimeError(
            f"overlay memory gate failed: {largest} overlays cost "
            f"{ratio:.1%} of {largest} graph clones (expected far less)"
        )
    payload = _table(
        "Tenants — shared engine, N distinct weight overlays "
        f"({asks_per_point} asks/point)",
        ["tenants", "asks/s", "plan hit rate", "overlay KiB", "clone KiB"],
        rows,
        memory=memory,
        overlay_to_clone_ratio=ratio,
    )
    print(
        f"   {largest} overlays cost {ratio:.1%} of "
        f"{largest} materialized graph clones"
    )
    return payload


def main(argv=None):
    from repro.storage import BACKEND_NAMES

    figures = {
        "fig7": figure_7,
        "fig8": figure_8,
        "fig9": figure_9,
        "formula2": formula_2,
        "strategies": ablation_strategies,
        "joinorder": ablation_join_order,
        "cache": ablation_cache,
        "overhead": metrics_overhead,
        "serve": serve_bench,
        "frontdoor": frontdoor_bench,
        "tracing": tracing_overhead,
        "tenants": tenants_scaling,
    }
    default_json = Path(__file__).resolve().parent.parent / "BENCH_precis.json"
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "figures", nargs="*", choices=[[], *figures], metavar="figure",
        help=f"which tables to print (default: all of {', '.join(figures)})",
    )
    parser.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default="memory",
        help="storage backend the workload databases are built on",
    )
    parser.add_argument(
        "--json-out", default=str(default_json), metavar="FILE",
        help="where to write the structured results "
        "(default: BENCH_precis.json at the repo root; '-' disables)",
    )
    args = parser.parse_args(argv)
    backend = args.backend
    print(f"(storage backend: {backend})")
    experiments = {}
    for name in args.figures or list(figures):
        fn = figures[name]
        start = time.perf_counter()
        if name == "fig7":
            payload = fn()  # graph-only: no database involved
        else:
            payload = fn(backend=backend)
        payload["seconds"] = time.perf_counter() - start
        experiments[name] = payload
    if args.json_out != "-":
        # merge semantics: a partial run (e.g. just-added experiments)
        # updates its entries in an existing same-backend document
        # instead of discarding the others
        merged = dict(experiments)
        target = Path(args.json_out)
        if target.exists():
            try:
                existing = json.loads(target.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                existing = None
            if (
                isinstance(existing, dict)
                and existing.get("backend") == backend
                and isinstance(existing.get("experiments"), dict)
            ):
                merged = {**existing["experiments"], **experiments}
        document = {
            "backend": backend,
            "experiments": merged,
            "total_seconds": sum(p["seconds"] for p in merged.values()),
        }
        with open(args.json_out, "w", encoding="utf-8") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"(structured results written to {args.json_out})")


if __name__ == "__main__":
    main()
