"""Ablation — join execution order: heaviest-first vs FIFO (§5.2).

The paper orders joins by decreasing weight so that "relations in D'
that are most related to the query are populated first. Any relations
that may not be eventually populated due to the cardinality constraint
would be the most weakly connected to the query." This bench quantifies
that: under a total-tuple budget, heaviest-first spends the budget on
high-weight neighbourhoods; FIFO (result-schema admission order) can
waste it on weakly connected ones.

Relevance metric: budget-weighted relevance = Σ over answer tuples of
the weight of the join edge that brought them in (seeds count 1.0).
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    JOIN_ORDER_FIFO,
    JOIN_ORDER_WEIGHT,
    MaxTotalTuples,
    TopRProjections,
    generate_result_database,
    generate_result_schema,
)
from repro.datasets import generate_movies_database, movies_graph
from repro.graph import random_weight_assignment


@pytest.fixture(scope="module")
def setup():
    db = generate_movies_database(n_movies=150, seed=5)
    # multiple origins + randomized weights: with one origin, admission
    # order already *is* decreasing path weight, so FIFO and weight
    # ordering coincide; interleaved origins make them diverge
    graphs = [
        movies_graph().with_weights(
            random_weight_assignment(movies_graph(), random.Random(seed))
        )
        for seed in range(12)
    ]
    seeds = {
        "MOVIE": set(list(db.relation("MOVIE").tids())[:2]),
        "ACTOR": set(list(db.relation("ACTOR").tids())[:2]),
        "THEATRE": set(list(db.relation("THEATRE").tids())[:2]),
    }
    schemas = [
        generate_result_schema(
            g, ["MOVIE", "ACTOR", "THEATRE"], TopRProjections(12)
        )
        for g in graphs
    ]
    return db, schemas, seeds


def _relevance(report) -> float:
    score = float(sum(report.seed_counts.values()))
    for execution in report.executions:
        score += execution.tuples_new * execution.edge.weight
    return score


def _total_relevance(db, schemas, seeds, join_order) -> float:
    total = 0.0
    for schema in schemas:
        __, report = generate_result_database(
            db, schema, seeds, MaxTotalTuples(40), join_order=join_order
        )
        total += _relevance(report)
    return total


@pytest.mark.parametrize("order", [JOIN_ORDER_WEIGHT, JOIN_ORDER_FIFO])
def test_join_order_speed(benchmark, setup, order):
    benchmark.group = "ablation: join order under a total budget"
    db, schemas, seeds = setup

    def run():
        for schema in schemas:
            generate_result_database(
                db, schema, seeds, MaxTotalTuples(40), join_order=order
            )

    benchmark(run)


def test_weight_order_wins_on_relevance(benchmark, setup):
    benchmark.group = "ablation: join order under a total budget"
    db, schemas, seeds = setup

    def run():
        return (
            _total_relevance(db, schemas, seeds, JOIN_ORDER_WEIGHT),
            _total_relevance(db, schemas, seeds, JOIN_ORDER_FIFO),
        )

    weight_score, fifo_score = benchmark.pedantic(run, rounds=1, iterations=1)
    assert weight_score >= fifo_score
    benchmark.extra_info["relevance"] = {
        "weight_order": weight_score,
        "fifo_order": fifo_score,
    }
