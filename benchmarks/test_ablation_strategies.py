"""Ablation — retrieval strategies: NaïveQ vs RoundRobin vs auto (§5.2).

Beyond Figure 9's timing comparison, this quantifies *why* the paper
bothers with RoundRobin at all:

    "if the join is to-n, there is a risk of selecting a subset of
    R_j's tuples that join to only a subset of R_i's tuples … since the
    real distribution in the database may be very different [from
    uniform], we have adopted the round-robin method."

So the workload here is *skewed*: one driving tuple owns most of the
join partners. Measured as **coverage** — the fraction of driving tuples
with at least one join partner in the answer. NaïveQ's tid-order prefix
collapses onto the heavy tuple; RoundRobin spreads the budget; ``auto``
(RoundRobin only where the join is 1-to-n) matches RoundRobin.
"""

from __future__ import annotations

import pytest

from repro.bench import chain_graph, chain_schema
from repro.core import (
    MaxTuplesPerRelation,
    WeightThreshold,
    generate_result_database,
    generate_result_schema,
)
from repro.relational import Database

STRATEGIES = ["naive", "round_robin", "auto"]
N_PARENTS = 20
HEAVY_CHILDREN = 50  # parent 1's children
C_R = 20


@pytest.fixture(scope="module")
def skewed():
    """R1 with 20 parents; parent 1 has 50 children, the rest 1 each."""
    schema = chain_schema(2)
    db = Database(schema)
    for pid in range(1, N_PARENTS + 1):
        db.insert("R1", {"ID": pid, "VAL": f"parent {pid}"})
    cid = 1000
    for __ in range(HEAVY_CHILDREN):
        db.insert("R2", {"ID": cid, "REF": 1, "VAL": f"child {cid}"})
        cid += 1
    for pid in range(2, N_PARENTS + 1):
        db.insert("R2", {"ID": cid, "REF": pid, "VAL": f"child {cid}"})
        cid += 1
    db.create_join_indexes()
    graph = chain_graph(2)
    result_schema = generate_result_schema(graph, ["R1"], WeightThreshold(0.9))
    seeds = {"R1": set(db.relation("R1").tids())}
    return db, result_schema, seeds


def _coverage(answer):
    parents = {row["ID"] for row in answer.relation("R1").scan(["ID"])}
    covered = {row["REF"] for row in answer.relation("R2").scan(["REF"])}
    return len(parents & covered) / len(parents)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy_speed_and_coverage(benchmark, skewed, strategy):
    benchmark.group = "ablation: retrieval strategies under skew (c_R=20)"
    db, result_schema, seeds = skewed

    def run():
        answer, __ = generate_result_database(
            db, result_schema, seeds,
            MaxTuplesPerRelation(C_R), strategy=strategy,
        )
        return answer

    answer = benchmark(run)
    benchmark.extra_info["coverage"] = _coverage(answer)


def test_round_robin_fixes_naive_starvation(benchmark, skewed):
    benchmark.group = "ablation: retrieval strategies under skew (c_R=20)"
    db, result_schema, seeds = skewed

    def run():
        out = {}
        for strategy in STRATEGIES:
            answer, __ = generate_result_database(
                db, result_schema, seeds,
                MaxTuplesPerRelation(C_R), strategy=strategy,
            )
            out[strategy] = _coverage(answer)
        return out

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    # NaïveQ's tid-order prefix is exactly parent 1's 50 children
    # truncated to 20 -> only 1 of 20 parents covered
    assert coverage["naive"] == pytest.approx(1 / N_PARENTS)
    # RoundRobin's first round gives every parent one child
    assert coverage["round_robin"] == 1.0
    # auto detects the to-n join and behaves like RoundRobin
    assert coverage["auto"] == 1.0
    benchmark.extra_info["coverage"] = coverage
