"""End-to-end engine latency vs database size.

Not a figure of the paper, but the question every adopter asks first:
how does ``ask()`` scale with the database? With indexes on all join
attributes and a per-relation cardinality cap, the work per query is
bounded by the *answer* size, not the database size — latency should be
near-flat across 100/400/1600-movie instances (index probes are O(1),
fetches are capped). The shape test asserts sub-linear growth.
"""

from __future__ import annotations

import pytest

from repro import MaxTuplesPerRelation, PrecisEngine, WeightThreshold
from repro.bench import stage_breakdown
from repro.datasets import generate_movies_database, movies_graph
from repro.storage import BACKEND_NAMES

SCALES = [100, 400, 1600]


@pytest.fixture(scope="module", params=BACKEND_NAMES)
def engines(request):
    out = {}
    for n in SCALES:
        db = generate_movies_database(
            n_movies=n, seed=9, backend=request.param
        )
        engine = PrecisEngine(db, graph=movies_graph())
        # a director that exists at every scale (generator is seeded,
        # but names differ per scale — pick per engine)
        name = next(
            row["DNAME"] for row in db.relation("DIRECTOR").scan(["DNAME"])
        )
        out[n] = (engine, name)
    out["backend"] = request.param
    return out


def _ask(engine, name, tracer=None):
    return engine.ask(
        f'"{name}"',
        degree=WeightThreshold(0.9),
        cardinality=MaxTuplesPerRelation(5),
        translate=False,
        tracer=tracer,
    )


@pytest.mark.parametrize("n_movies", SCALES)
def test_ask_latency(benchmark, engines, n_movies):
    benchmark.group = "end-to-end ask() vs database size (capped answer)"
    engine, name = engines[n_movies]
    answer = benchmark(_ask, engine, name)
    assert answer.found
    benchmark.extra_info["db_tuples"] = engine.db.total_tuples()
    benchmark.extra_info["backend"] = engines["backend"]
    # where the latency goes, not just how much of it there is: best-of-3
    # per-stage breakdown via the repro.obs tracer
    stats = stage_breakdown(lambda t: _ask(engine, name, tracer=t))
    benchmark.extra_info["stage_ms"] = {
        stage.name: round(stage.duration_ms, 4)
        for stage in stats.stages
        if stage.depth == 1
    }
    benchmark.extra_info["counters"] = dict(stats.counters)


def test_ask_cost_is_size_independent(benchmark, engines):
    """Modeled retrieval cost must not scale with the database: the

    answer is capped, and all access paths are indexed."""
    benchmark.group = "end-to-end ask() vs database size (capped answer)"

    benchmark.extra_info["backend"] = engines["backend"]

    def sweep():
        series = []
        for n in SCALES:
            engine, name = engines[n]
            answer = _ask(engine, name)
            cost = answer.cost.modeled_cost(engine.db.meter.params)
            series.append((engine.db.total_tuples(), cost))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    costs = [cost for __, cost in series]
    # 16x more data must not mean 16x more cost; allow 3x slack for
    # fan-out variance between the sampled directors
    assert max(costs) <= 3 * max(min(costs), 1)
    benchmark.extra_info["series (db tuples, modeled cost)"] = series
