"""Shared fixtures and helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each figure of the paper's §6 maps to one module here; the
pytest-benchmark table, grouped per figure, *is* the reproduced series
(one row per x-value). Shape assertions (linearity, NaïveQ vs RoundRobin
ordering, cost-model fit) run on the engine's deterministic modeled cost
so they hold regardless of machine noise. ``run_experiments.py`` prints
the same series as explicit tables for EXPERIMENTS.md.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import chain_database, chain_graph, random_schema_graph
from repro.core import WeightThreshold, generate_result_schema
from repro.graph import random_weight_assignments


@pytest.fixture(scope="session")
def fig7_graph():
    """IMDB-scale random schema graph (30 relations × 8 attributes)."""
    return random_schema_graph(n_relations=30, attrs_per_relation=8, seed=0)


@pytest.fixture(scope="session")
def fig7_weight_sets(fig7_graph):
    """The paper's '20 randomly generated sets of weights'."""
    return random_weight_assignments(fig7_graph, 20, seed=1)


@pytest.fixture(scope="session")
def fig7_start_relations(fig7_graph):
    rng = random.Random(2)
    return rng.sample(list(fig7_graph.relations), 10)


class ChainSetup:
    """A populated chain R1 → … → Rn with its result schema and seeds."""

    def __init__(self, n_relations: int, seed: int = 0):
        self.db = chain_database(
            n_relations, roots=100, fanout=3, seed=seed,
            max_tuples_per_relation=3000,
        )
        self.graph = chain_graph(n_relations)
        self.schema = generate_result_schema(
            self.graph, ["R1"], WeightThreshold(0.9)
        )
        rng = random.Random(seed + 17)
        all_tids = list(self.db.relation("R1").tids())
        # 40 seed roots x fanout 3 = 120 joinable tuples at every level,
        # enough to saturate the largest c_R the Figure 8 sweep uses (90)
        self.seed_sets = [
            {"R1": set(rng.sample(all_tids, 40))} for __ in range(5)
        ]


@pytest.fixture(scope="session")
def chains():
    """Chain setups keyed by length, built lazily and cached."""
    cache: dict[int, ChainSetup] = {}

    def get(n: int) -> ChainSetup:
        if n not in cache:
            cache[n] = ChainSetup(n)
        return cache[n]

    return get
