"""Ablation — degree-constraint forms under schema restructuring (§3.3).

The paper argues that *weight-threshold* constraints are "more immune to
the effects of database normalization or database restructuring" than
top-r or path-length constraints: splitting MOVIE–DIRECTOR through a
DIRECTED_BY bridge relation lengthens every path, so count- and
length-based constraints change the answer while a weight threshold
(with the bridge edges at weight 1) does not.

This bench measures all three constraint forms on the same query and
*verifies the robustness claim* by actually restructuring the schema.
"""

from __future__ import annotations

import pytest

from repro.core import (
    MaxPathLength,
    TopRProjections,
    WeightThreshold,
    generate_result_schema,
)
from repro.datasets import movies_graph
from repro.graph import SchemaGraph


def _restructured_graph() -> SchemaGraph:
    """Figure-1 graph with MOVIE→DIRECTOR factored through DIRECTED_BY,

    bridge edges at weight 1 so path weights are preserved."""
    base = movies_graph()
    graph = SchemaGraph()
    for relation in base.relations:
        graph.add_relation(relation)
        for attribute in base.attributes_of(relation):
            graph.add_attribute(
                relation,
                attribute,
                base.projection_edge(relation, attribute).weight,
            )
    graph.add_relation("DIRECTED_BY")
    graph.add_attribute("DIRECTED_BY", "MID", 0.2)
    graph.add_attribute("DIRECTED_BY", "DID", 0.2)
    for edge in base.all_join_edges():
        if {edge.source, edge.target} == {"MOVIE", "DIRECTOR"}:
            continue
        graph.add_join(
            edge.source,
            edge.target,
            edge.source_attribute,
            edge.target_attribute,
            edge.weight,
        )
    # MOVIE -> DIRECTED_BY -> DIRECTOR with the original weight on the
    # first hop and weight 1 on the bridge (and vice versa)
    graph.add_join("MOVIE", "DIRECTED_BY", "MID", "MID",
                   base.join_edge("MOVIE", "DIRECTOR").weight)
    graph.add_join("DIRECTED_BY", "DIRECTOR", "DID", "DID", 1.0)
    graph.add_join("DIRECTOR", "DIRECTED_BY", "DID", "DID",
                   base.join_edge("DIRECTOR", "MOVIE").weight)
    graph.add_join("DIRECTED_BY", "MOVIE", "MID", "MID", 1.0)
    return graph


CONSTRAINTS = {
    "weight>=0.9": WeightThreshold(0.9),
    "top-7": TopRProjections(7),
    "length<=2": MaxPathLength(2),
}


@pytest.mark.parametrize("name", list(CONSTRAINTS))
def test_degree_constraint_speed(benchmark, name):
    benchmark.group = "ablation: degree-constraint forms"
    graph = movies_graph()
    constraint = CONSTRAINTS[name]
    benchmark(
        generate_result_schema, graph, ["DIRECTOR", "ACTOR"], constraint
    )


def _visible(schema):
    return schema.projected_attributes


def test_weight_threshold_robust_to_restructuring(benchmark):
    """§3.3's robustness claim, verified end to end."""
    benchmark.group = "ablation: degree-constraint forms"
    base, bridged = movies_graph(), _restructured_graph()

    def run():
        return (
            generate_result_schema(base, ["ACTOR"], WeightThreshold(0.9)),
            generate_result_schema(bridged, ["ACTOR"], WeightThreshold(0.9)),
        )

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _visible(before) == _visible(after), (
        "weight threshold should survive normalization"
    )


def test_length_constraint_not_robust(benchmark):
    """The same restructuring changes a length-bounded answer — the

    contrast that motivates weight constraints."""
    benchmark.group = "ablation: degree-constraint forms"
    base, bridged = movies_graph(), _restructured_graph()

    def run():
        return (
            generate_result_schema(base, ["DIRECTOR"], MaxPathLength(2)),
            generate_result_schema(bridged, ["DIRECTOR"], MaxPathLength(2)),
        )

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _visible(before) != _visible(after), (
        "path-length constraints should break under normalization"
    )
    # specifically: MOVIE's attributes drift out of reach
    assert ("MOVIE", "TITLE") in _visible(before)
    assert ("MOVIE", "TITLE") not in _visible(after)
