"""Formulas (1)–(3) — validating the paper's cost model.

The paper models the Result Database Generator as::

    Cost(D') = c_R · n_R · (IndexTime + TupleTime)          (2)

and derives cardinality constraints from a response-time budget::

    c_R = cost_M / (n_R · (IndexTime + TupleTime))          (3)

Our engine charges exactly those unit operations, so the fit can be
checked analytically: the measured modeled cost must track the Formula-2
prediction within a small constant factor (the formula ignores the
seed retrieval and counts one index probe per tuple rather than per
driving value).
"""

from __future__ import annotations

import pytest

from repro.core import (
    MaxTuplesPerRelation,
    STRATEGY_NAIVE,
    cardinality_for_response_time,
    generate_result_database,
)

CASES = [(2, 20), (4, 30), (4, 60), (6, 40), (8, 50)]


def _formula_2(setup, c_r):
    params = setup.db.meter.params
    n_r = len(setup.schema.relations)
    return c_r * n_r * params.unit_fetch


@pytest.mark.parametrize("n_r,c_r", CASES)
def test_formula2_tracks_measured_cost(benchmark, chains, n_r, c_r):
    benchmark.group = "cost model (formula 2)"
    setup = chains(n_r)
    seeds = setup.seed_sets[0]

    def run():
        with setup.db.meter.measure() as measured:
            answer, __ = generate_result_database(
                setup.db,
                setup.schema,
                seeds,
                MaxTuplesPerRelation(c_r),
                strategy=STRATEGY_NAIVE,
            )
        return measured.modeled_cost, answer

    (cost, answer) = benchmark(run)
    predicted = _formula_2(setup, c_r)
    # Formula (2) assumes every relation contributes exactly c_R tuples;
    # seed relations may contribute fewer (40 seeds < c_R impossible
    # here: 40 seeds vs c_R up to 60 — recompute with actual counts).
    actual_tuples = answer.total_tuples()
    refined = actual_tuples * setup.db.meter.params.unit_fetch
    assert cost == pytest.approx(refined, rel=0.35), (
        f"measured {cost} vs per-tuple prediction {refined}"
    )
    assert cost == pytest.approx(predicted, rel=0.6), (
        f"measured {cost} vs formula-2 prediction {predicted}"
    )
    benchmark.extra_info["measured"] = cost
    benchmark.extra_info["formula2"] = predicted


def test_formula3_budget_respected(benchmark, chains):
    """A Formula-3-derived constraint keeps the measured cost within

    the requested budget (plus bounded slack for seed retrieval)."""
    benchmark.group = "cost model (formula 3)"
    setup = chains(4)
    params = setup.db.meter.params
    budget = 600.0
    constraint = cardinality_for_response_time(
        budget, len(setup.schema.relations), params
    )

    def run():
        with setup.db.meter.measure() as measured:
            generate_result_database(
                setup.db,
                setup.schema,
                setup.seed_sets[0],
                constraint,
                strategy=STRATEGY_NAIVE,
            )
        return measured.modeled_cost

    cost = benchmark(run)
    slack = len(setup.schema.relations) * params.unit_fetch
    assert cost <= budget + slack
    benchmark.extra_info["budget"] = budget
    benchmark.extra_info["measured"] = cost
