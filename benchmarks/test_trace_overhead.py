"""Tracing must be cheap enough to leave on: the ≤5% throughput gate.

The PR that added end-to-end request tracing (repro.obs.context)
promised that capture at the default 10% head-sampling rate costs at
most 5% of serving throughput. ``measure_trace_overhead`` compares a
genuinely untraced service (no TraceBuffer: no contexts minted, no
spans built) against a fully traced one, serial (one client, one
worker) with alternating best-of rounds — serial because a concurrent
closed loop on a shared runner measures scheduler noise, not tracing
(an A/A control there swings ±10%). This module *fails* when the
budget is blown, where ``repro serve-bench --trace-overhead`` only
warns.
"""

from __future__ import annotations

import pytest

from repro.service import measure_trace_overhead, movies_workload


@pytest.fixture(scope="module")
def workload():
    return movies_workload(n_movies=200)


class TestTraceOverheadGate:
    def test_overhead_within_budget_at_default_sampling(self, workload):
        engine, queries = workload
        result = measure_trace_overhead(
            engine,
            queries,
            sample_rate=0.1,
            rounds=3,
            budget_pct=5.0,
        )
        assert result["baseline_rps"] > 0
        assert result["traced_rps"] > 0
        assert result["passed"], (
            f"tracing overhead {result['overhead_pct']:.2f}% exceeds the "
            f"{result['budget_pct']:g}% budget at "
            f"{result['sample_rate']:.0%} sampling "
            f"(baseline {result['baseline_rps']:.1f} req/s, traced "
            f"{result['traced_rps']:.1f} req/s)"
        )

    def test_result_shape_is_json_ready(self, workload):
        import json

        engine, queries = workload
        result = measure_trace_overhead(
            engine,
            queries,
            client_threads=2,
            requests_per_client=5,
            workers=1,
            rounds=1,
        )
        parsed = json.loads(json.dumps(result))
        assert set(parsed) == {
            "sample_rate",
            "rounds",
            "baseline_rps",
            "traced_rps",
            "overhead_pct",
            "budget_pct",
            "passed",
        }

    def test_rounds_validation(self, workload):
        engine, queries = workload
        with pytest.raises(ValueError):
            measure_trace_overhead(engine, queries, rounds=0)
