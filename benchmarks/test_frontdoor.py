"""Open-loop overload benchmark for the async front door.

The coalescing claim: a duplicate-heavy offered stream at ~2x the
stack's capacity is served with materially higher goodput when
identical in-flight asks share one execution. The gate replays the
*same* seeded Poisson schedule against two fresh stacks — coalescing
on, then off — and asserts the front door's own counters: a coalescing
hit rate of at least 0.4 at a 60% duplicate share, and at least 1.5x
the goodput of the uncoalesced arm. Best-of-N so the ratio holds on
noisy CI machines; the structured payload for EXPERIMENTS.md comes
from ``run_experiments.py frontdoor`` (BENCH_precis.json under
``frontdoor``).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.service import (
    AsyncFrontDoor,
    OpenLoopConfig,
    PrecisService,
    ServiceConfig,
    movies_workload,
    run_frontdoor_bench,
)

WORKERS = 2
DUPLICATE_FRACTION = 0.6
MIN_HIT_RATE = 0.4
MIN_GOODPUT_RATIO = 1.5


@pytest.fixture(scope="module")
def workload():
    return movies_workload(n_movies=200)


def _mean_ask_s(engine, queries) -> float:
    """Warm, then time one serial pass — the capacity estimate the
    offered load is scaled from."""
    for query in queries:
        engine.ask(query)
    start = time.perf_counter()
    for query in queries:
        engine.ask(query)
    return (time.perf_counter() - start) / len(queries)


def _overload_config(engine, queries, seed: int = 0) -> OpenLoopConfig:
    mean_ask = _mean_ask_s(engine, queries)
    capacity = WORKERS / mean_ask  # closed-loop ceiling, req/s
    rate = 2.0 * capacity  # firmly past saturation
    return OpenLoopConfig(
        arrival_rate=rate,
        # enough arrivals for stable rates without minute-long runs
        duration_s=min(2.0, max(0.5, 300.0 / rate)),
        duplicate_fraction=DUPLICATE_FRACTION,
        batch_fraction=0.25,
        deadline_ms=mean_ask * 1e3 * 50.0,
        seed=seed,
    )


def test_coalescing_goodput_gate(workload):
    """The headline number: >= 1.5x goodput and >= 40% coalescing hit
    rate at 2x capacity with a 60% duplicate share."""
    engine, queries = workload
    attempts = []
    for attempt in range(3):  # best-of-N: overload runs are noisy
        config = _overload_config(engine, queries, seed=attempt)
        payload = run_frontdoor_bench(
            engine, queries, config, workers=WORKERS
        )
        hit_rate = payload["coalesced"]["coalesce_hit_rate"]
        ratio = payload["goodput_ratio"]
        attempts.append((hit_rate, ratio))
        if hit_rate >= MIN_HIT_RATE and ratio >= MIN_GOODPUT_RATIO:
            return
    pytest.fail(
        f"coalescing gate missed in {len(attempts)} attempts "
        f"(hit_rate, goodput_ratio): {attempts}"
    )


def test_open_loop_accounts_for_every_arrival(workload):
    """Conservation: offered = answered + degraded + shed + failed in
    both arms, and the uncoalesced arm of an overloaded run sheds."""
    engine, queries = workload
    config = _overload_config(engine, queries)
    payload = run_frontdoor_bench(engine, queries, config, workers=WORKERS)
    for arm in ("coalesced", "uncoalesced"):
        outcomes = payload[arm]["outcomes"]
        assert sum(outcomes.values()) == payload[arm]["offered"]
        assert outcomes["failed"] == 0
    assert payload["uncoalesced"]["shed_rate"] > 0.0


def test_frontdoor_roundtrip(benchmark, workload):
    """Latency of one uncontended submit through the full front-door
    stack (dispatcher + service worker + engine), warm cache path."""
    engine, queries = workload
    benchmark.group = "front door round trip (200-movie db)"
    service = PrecisService(
        engine, config=ServiceConfig(workers=WORKERS)
    )

    def roundtrip():
        async def go():
            async with AsyncFrontDoor(service) as frontdoor:
                for query in queries:
                    await frontdoor.submit(query)

        asyncio.run(go())

    try:
        benchmark(roundtrip)
    finally:
        service.close()
