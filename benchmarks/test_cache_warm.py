"""Warm vs cold asks under the versioned cache (repro.cache).

The caching subsystem's performance claim: once an ask has been
answered, repeating the same query signature against an unchanged
database is served from the answer cache at a fraction of the cold
cost — and a single mutation through any epoch-bumping API restores
cold behavior for exactly one ask (the entry is re-validated, not
left stale). The speedup assertion runs on best-of-N wall times so it
holds on noisy CI machines.
"""

from __future__ import annotations

import time

import pytest

from repro import MaxTuplesPerRelation, PrecisEngine
from repro.cache import CacheConfig
from repro.datasets import generate_movies_database, movies_graph

QUERIES = ("midnight", "drama", "crimson harbor", "garcia", "thriller")
CARDINALITY = MaxTuplesPerRelation(10)


@pytest.fixture(scope="module")
def movies_db():
    return generate_movies_database(n_movies=300, seed=7)


def _engine(db, cache=None):
    return PrecisEngine(db, graph=movies_graph(), cache=cache)


def _ask_all(engine):
    for query in QUERIES:
        engine.ask(query, cardinality=CARDINALITY)


def _best_of(fn, repeat=5):
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_cold_ask(benchmark, movies_db):
    benchmark.group = "warm vs cold ask (300-movie db)"
    engine = _engine(movies_db)
    answer = benchmark(
        engine.ask, QUERIES[0], cardinality=CARDINALITY
    )
    assert answer.found


def test_warm_plan_cache(benchmark, movies_db):
    benchmark.group = "warm vs cold ask (300-movie db)"
    engine = _engine(movies_db, CacheConfig(plans=True, answers=False))
    _ask_all(engine)  # prime
    answer = benchmark(engine.ask, QUERIES[0], cardinality=CARDINALITY)
    assert answer.found
    assert engine.cache_stats()["plans"]["hits"] > 0


def test_warm_answer_cache(benchmark, movies_db):
    benchmark.group = "warm vs cold ask (300-movie db)"
    engine = _engine(movies_db, cache=True)
    _ask_all(engine)  # prime
    answer = benchmark(engine.ask, QUERIES[0], cardinality=CARDINALITY)
    assert answer.found
    assert engine.cache_stats()["answers"]["hits"] > 0
    assert engine.cache_stats()["answers"]["evictions"] == 0


def test_warm_speedup_at_least_5x(movies_db):
    """The headline number: repeated asks >= 5x faster with the answer

    cache than without, same queries, same database."""
    cold_engine = _engine(movies_db)
    warm_engine = _engine(movies_db, cache=True)
    _ask_all(warm_engine)  # prime

    cold = _best_of(lambda: _ask_all(cold_engine))
    warm = _best_of(lambda: _ask_all(warm_engine))
    assert warm > 0
    speedup = cold / warm
    assert speedup >= 5.0, f"warm speedup only {speedup:.1f}x"


def test_mutation_restores_cold_path_once(movies_db):
    """One insert = one invalidation per touched entry, then warm again."""
    engine = _engine(movies_db, cache=True)
    _ask_all(engine)
    _ask_all(engine)  # all hits now
    hits_before = engine.cache_stats()["answers"]["hits"]
    assert hits_before >= len(QUERIES)

    movies_db.insert(
        "GENRE", {"MID": 1, "GENRE": "Noir"}
    )  # bumps data_epoch -> every answer entry is now stale
    _ask_all(engine)  # re-validates: misses, not stale hits
    stats = engine.cache_stats()["answers"]
    assert stats["invalidations"] >= len(QUERIES)
    assert stats["hits"] == hits_before

    _ask_all(engine)  # warm again under the new epoch
    assert engine.cache_stats()["answers"]["hits"] >= hits_before + len(
        QUERIES
    )
