#!/usr/bin/env python
"""Test-database extraction — the §1 enterprise use case.

    "Given large databases, enterprises often need smaller subsets that
    conform to the original schema and satisfy all of its constraints
    in order to perform realistic tests of new applications before
    deploying them to production."

A précis query *is* that extractor: pick a few anchor values, let the
result schema span the whole schema (weight threshold 0), bound the
volume with a cardinality constraint, and the answer is a small,
referentially consistent database. This script carves a test database
out of a 500-movie instance, verifies its integrity, exports it to CSV
and runs SQL against the extract.

Run::

    python examples/test_database_extraction.py [output_dir]
"""

import sys
import tempfile

from repro import (
    MaxTuplesPerRelation,
    PrecisEngine,
    WeightThreshold,
)
from repro.core import STRATEGY_ROUND_ROBIN
from repro.datasets import generate_movies_database, movies_graph
from repro.relational.csvio import load_database, save_database
from repro.relational.sql import execute


def main():
    big = generate_movies_database(n_movies=500, seed=7)
    print("source database :", big.cardinalities())

    engine = PrecisEngine(big, graph=movies_graph())

    # anchor the extract on a handful of movie titles
    titles = [
        row["TITLE"] for row in big.relation("MOVIE").scan(["TITLE"])
    ][:4]
    query = " ".join(f'"{t}"' for t in titles)

    answer = engine.ask(
        query,
        degree=WeightThreshold(0.05),  # span everything reachable
        cardinality=MaxTuplesPerRelation(25),
        strategy=STRATEGY_ROUND_ROBIN,  # spread tuples, avoid dangles
    )
    extract = answer.database
    print("extracted subset:", extract.cardinalities())

    dangling = extract.integrity_violations()
    print(f"referential gaps: {len(dangling)}")

    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="precis_extract_"
    )
    save_database(extract, out_dir)
    print("exported to     :", out_dir)

    # the extract is a real database: reload it and query it with SQL
    reloaded = load_database(out_dir, enforce_foreign_keys=False)
    rows = execute(
        reloaded,
        "SELECT m.TITLE, d.DNAME FROM MOVIE m, DIRECTOR d "
        "WHERE m.DID = d.DID LIMIT 5",
    )
    print("\nSQL over the extract (movies and their directors):")
    for row in rows:
        print("  ", row)


if __name__ == "__main__":
    main()
