#!/usr/bin/env python
"""Précis over semi-structured data (paper §3: "our approach is

applicable to other types of (semi-)structured data as well").

Shreds a collection of JSON-style documents into a relational database
with synthesized keys, derives a weighted schema graph automatically,
and answers free-form queries with sub-databases and generated prose —
no schema authored by hand anywhere.

Run::

    python examples/documents_precis.py
"""

from repro import PrecisEngine, WeightThreshold
from repro.nlg import Translator, generic_spec
from repro.relational import database_summary
from repro.semistructured import shred

DOCUMENTS = [
    {
        "title": "Match Point",
        "year": 2005,
        "director": {"name": "Woody Allen", "born": "Brooklyn"},
        "genres": ["Drama", "Thriller"],
        "cast": [
            {"actor": "Scarlett Johansson", "role": "Nola Rice"},
            {"actor": "Jonathan Rhys Meyers", "role": "Chris Wilton"},
        ],
    },
    {
        "title": "Lost in Translation",
        "year": 2003,
        "director": {"name": "Sofia Coppola", "born": "New York"},
        "genres": ["Drama"],
        "cast": [
            {"actor": "Scarlett Johansson", "role": "Charlotte"},
            {"actor": "Bill Murray", "role": "Bob Harris"},
        ],
    },
    {
        "title": "Melinda and Melinda",
        "year": 2004,
        "director": {"name": "Woody Allen", "born": "Brooklyn"},
        "genres": ["Comedy", "Drama"],
        "cast": [{"actor": "Will Ferrell", "role": "Hobie"}],
    },
]


def main():
    result = shred(DOCUMENTS, root_name="MOVIE")
    print("inferred relational shape:")
    print(database_summary(result.database))
    print()

    engine = PrecisEngine(
        result.database,
        graph=result.graph,
        translator=Translator(generic_spec(result.graph, result.headings)),
    )

    for query in ('"Scarlett Johansson"', '"Woody Allen"', "Drama"):
        answer = engine.ask(query, degree=WeightThreshold(0.8))
        print(f"=== {query} ===")
        print("relations:", ", ".join(answer.result_schema.relations))
        for relation in answer.result_schema.relations:
            for row in answer.rows_of(relation)[:3]:
                print(f"  {relation}: {row}")
        if answer.narrative:
            first = answer.narrative.split("\n\n")[0]
            print("narrative:", first[:160])
        print()


if __name__ == "__main__":
    main()
