#!/usr/bin/env python
"""Précis vs DISCOVER-style vs BANKS-style keyword search (paper §2).

Runs the same tokens through three systems sharing one inverted index
and one schema graph, and prints each system's answer so the difference
in *answer model* is visible:

* DISCOVER/DBXplorer: flattened joined rows, ranked by number of joins
  — the same director repeats once per joining combination;
* BANKS: rooted tuple trees over the data graph;
* précis: one multi-relation sub-database plus a narrative.

Run::

    python examples/keyword_search_comparison.py
"""

from repro import MaxTuplesPerRelation, PrecisEngine, WeightThreshold
from repro.baselines import BanksSearch, DiscoverSearch
from repro.datasets import (
    movies_graph,
    movies_translation_spec,
    paper_instance,
)
from repro.nlg import Translator


def main():
    db = paper_instance()
    graph = movies_graph()
    engine = PrecisEngine(
        db, graph=graph, translator=Translator(movies_translation_spec())
    )
    tokens = ["woody", "comedy"]
    print(f"keywords: {tokens}\n")

    print("=== DISCOVER/DBXplorer-style: flattened rows ===")
    discover = DiscoverSearch(db, graph, engine.index)
    for result in discover.search(tokens, limit=6):
        cells = {
            key: value
            for key, value in result.flat().items()
            if key.endswith((".DNAME", ".TITLE", ".GENRE", ".ANAME"))
        }
        print(f"  [{result.network.joins} joins] {cells}")

    print("\n=== BANKS-style: rooted tuple trees ===")
    banks = BanksSearch(db, graph, engine.index)
    for tree in banks.search(tokens, top_k=4):
        nodes = ", ".join(
            f"{relation}#{tid}" for relation, tid in sorted(tree.nodes)
        )
        print(f"  [cost {tree.cost:.2f}] root={tree.root[0]}: {nodes}")

    print("\n=== précis: a sub-database + narrative ===")
    answer = engine.ask(
        '"woody" "comedy"',
        degree=WeightThreshold(0.9),
        cardinality=MaxTuplesPerRelation(4),
    )
    print("  cardinalities:", answer.cardinalities())
    print()
    for paragraph in (answer.narrative or "").split("\n\n")[:3]:
        print(" ", paragraph[:200])
        print()


if __name__ == "__main__":
    main()
