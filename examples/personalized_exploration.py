#!/usr/bin/env python
"""Personalized answers — the §3.1 scenario.

    "Reviewers and cinema fans have access to a movies database. The
    former may be typically interested in in-depth, detailed answers …
    Cinema fans usually prefer shorter answers."

Builds two stored profiles over a synthetic movies database and runs
the *same* précis query under each, showing how the weight sets and
default constraints reshape both the result schema and the tuples.
Also demonstrates interactive exploration: progressively lowering the
weight threshold expands the explored region of the database.

Run::

    python examples/personalized_exploration.py
"""

from repro import (
    MaxTuplesPerRelation,
    PrecisEngine,
    Profile,
    WeightThreshold,
)
from repro.datasets import generate_movies_database, movies_graph


def build_profiles(engine):
    reviewer = Profile(
        "reviewer",
        degree=WeightThreshold(0.55),
        cardinality=MaxTuplesPerRelation(8),
        description="in-depth answers exploring a large database region",
    )
    # reviewers want production context: theatres and play dates matter
    reviewer.set_join_weight("MOVIE", "PLAY", 0.9)
    reviewer.set_projection_weight("PLAY", "DATE", 0.9)
    reviewer.set_projection_weight("THEATRE", "REGION", 0.9)

    fan = Profile(
        "fan",
        degree=WeightThreshold(0.95),
        cardinality=MaxTuplesPerRelation(3),
        description="short answers containing only highly related objects",
    )
    # fans don't care who directed what
    fan.set_join_weight("MOVIE", "DIRECTOR", 0.2)

    engine.register_profile(reviewer)
    engine.register_profile(fan)


def show(answer, label):
    print(f"--- {label} ---")
    print(f"relations in answer : {', '.join(answer.result_schema.relations)}")
    print(f"projected attributes: {len(answer.result_schema.projected_attributes)}")
    print(f"tuples retrieved    : {answer.total_tuples()}")
    for relation in answer.result_schema.relations:
        rows = answer.rows_of(relation)
        if rows:
            print(f"  {relation}: e.g. {rows[0]}")
    print()


def main():
    db = generate_movies_database(n_movies=200, seed=42)
    engine = PrecisEngine(db, graph=movies_graph())
    build_profiles(engine)

    title = next(
        row["TITLE"] for row in db.relation("MOVIE").scan(["TITLE"])
    )
    query = f'"{title}"'
    print(f"query: {query}\n")

    for profile in ("reviewer", "fan"):
        show(engine.ask(query, profile=profile), f"profile: {profile}")

    print("--- interactive exploration: loosening the weight threshold ---")
    for threshold in (1.0, 0.9, 0.7, 0.5):
        answer = engine.ask(
            query,
            degree=WeightThreshold(threshold),
            cardinality=MaxTuplesPerRelation(3),
        )
        relations = ", ".join(answer.result_schema.relations) or "(nothing)"
        print(f"  w >= {threshold:<4} -> {relations}")


if __name__ == "__main__":
    main()
