#!/usr/bin/env python
"""Generate a static web page of précis answers (the §1 web scenario).

The paper motivates précis queries with "web accessible databases, which
have emerged as libraries, museums, and other organizations publish
their electronic contents on the Web", where answers should read like a
short narrative whose key values are hyperlinks to further queries.

This script renders a small HTML page: for each query, the narrative
(values linkified as follow-up précis queries) plus the answer's
relation tables, using the interactive Explorer to show three zoom
levels of the same query.

Run::

    python examples/web_precis_page.py [output.html]
"""

import sys
import tempfile
from pathlib import Path

from repro import MaxTuplesPerRelation, PrecisEngine, WeightThreshold
from repro.core import Explorer
from repro.datasets import (
    movies_graph,
    movies_translation_spec,
    paper_instance,
)
from repro.nlg import Translator, answer_to_html

_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Précis demo</title>
<style>
 body {{ font-family: Georgia, serif; max-width: 52em; margin: 2em auto; }}
 .precis {{ border-top: 1px solid #999; padding: 1em 0; }}
 .precis-narrative {{ font-size: 1.05em; line-height: 1.5; }}
 table.precis-relation {{ border-collapse: collapse; margin: .5em 0; }}
 table.precis-relation td, table.precis-relation th
   {{ border: 1px solid #ccc; padding: .2em .6em; }}
 a {{ color: #1a5276; }}
</style></head><body>
<h1>Précis: the essence of a query answer</h1>
{body}
</body></html>
"""


def main():
    engine = PrecisEngine(
        paper_instance(),
        graph=movies_graph(),
        translator=Translator(movies_translation_spec()),
    )

    sections = []
    for query in ('"Woody Allen"', '"Match Point"', "Thriller"):
        answer = engine.ask(
            query,
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(3),
        )
        sections.append(answer_to_html(answer))

    # the same query at three exploration depths
    explorer = Explorer(
        engine, '"Match Point"', cardinality=MaxTuplesPerRelation(3)
    )
    for __ in range(3):
        answer = explorer.expand()
        sections.append(
            answer_to_html(
                answer,
                title=(
                    f"Exploring “Match Point” at weight ≥ "
                    f"{explorer.threshold:.2f}"
                ),
            )
        )

    target = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(tempfile.mkdtemp(prefix="precis_web_")) / "index.html"
    )
    target.write_text(_PAGE.format(body="\n".join(sections)))
    print(f"wrote {target}")
    print("open it in a browser; every linked value is a follow-up query")


if __name__ == "__main__":
    main()
