#!/usr/bin/env python
"""Quickstart — the paper's running example, end to end.

Loads the Woody Allen micro-database (Figure 6), builds a précis engine
over the Figure 1 weighted schema graph, and runs the §5 running
example: Q = {"Woody Allen"} with degree constraint *projection weight
≥ 0.9* and cardinality constraint *up to three tuples per relation*.

Run::

    python examples/quickstart.py
"""

from repro import MaxTuplesPerRelation, PrecisEngine, WeightThreshold
from repro.datasets import (
    movies_graph,
    movies_translation_spec,
    paper_instance,
)
from repro.nlg import Translator


def main():
    db = paper_instance()
    engine = PrecisEngine(
        db,
        graph=movies_graph(),
        translator=Translator(movies_translation_spec()),
    )

    answer = engine.ask(
        '"Woody Allen"',
        degree=WeightThreshold(0.9),
        cardinality=MaxTuplesPerRelation(3),
    )

    print("précis query :", answer.query.text)
    print()
    print("Result schema (paper Figure 4):")
    print(answer.result_schema.describe())
    print()
    print("Result database (paper Figure 6):")
    for relation in answer.result_schema.relations:
        rows = answer.rows_of(relation)
        print(f"  {relation}: {len(rows)} tuple(s)")
        for row in rows:
            print("   ", row)
    print()
    print("Natural-language précis (paper §5.3):")
    print()
    for paragraph in answer.narrative.split("\n\n"):
        print(" ", paragraph)
        print()
    print(
        f"[retrieval cost: {answer.cost.tuple_reads} tuple reads, "
        f"{answer.cost.index_lookups} index probes]"
    )


if __name__ == "__main__":
    main()
