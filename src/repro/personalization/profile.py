"""User profiles: stored weight sets and default constraints (paper §3.1).

    "Multiple sets of weights corresponding to different user profiles
    may be stored in the system. Using user-specific weights allows
    generating personalized answers. [...] Similarly to weights,
    constraints may be specified at query time by the user, or be
    pre-specified by a designer, or may be stored as part of a user's
    profile."

A :class:`Profile` bundles edge-weight overrides (keyed by schema-graph
edge keys) with optional default degree/cardinality constraints. The
précis engine overlays the profile's weights on its base graph per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.constraints import CardinalityConstraint, DegreeConstraint
from ..graph.overlay import WeightOverlay
from ..graph.schema_graph import GraphError, SchemaGraph

__all__ = ["Profile", "ProfileRegistry"]

_FORMAT_VERSION = 1


@dataclass
class Profile:
    """A named personalization profile."""

    name: str
    #: edge key -> weight override; keys are ("proj", rel, attr) or
    #: ("join", src, dst) — see SchemaGraph.with_weights
    weights: dict[tuple, float] = field(default_factory=dict)
    degree: Optional[DegreeConstraint] = None
    cardinality: Optional[CardinalityConstraint] = None
    description: str = ""

    # ------------------------------------------------------------ builders

    def set_projection_weight(
        self, relation: str, attribute: str, weight: float
    ) -> "Profile":
        self.weights[("proj", relation, attribute)] = weight
        return self

    def set_join_weight(self, source: str, target: str, weight: float) -> "Profile":
        self.weights[("join", source, target)] = weight
        return self

    # ------------------------------------------------------------ applying

    def personalize(self, graph: SchemaGraph) -> SchemaGraph:
        """*graph* seen through this profile's weights.

        Historically a full graph clone; now a copy-on-write
        :class:`~repro.graph.overlay.WeightOverlay` sharing *graph* —
        O(overrides) memory instead of O(edges), so a million stored
        profiles cost a million sparse patch maps, not a million
        graphs. Reads are equivalent by the overlay oracle; the base
        graph is never touched. A profile without weights returns
        *graph* itself, as before.
        """
        if not self.weights:
            return graph
        return self.overlay(graph)

    def overlay(self, graph: SchemaGraph) -> WeightOverlay:
        """This profile's weights as an explicit overlay over *graph*
        (even when empty — useful when the caller wants a uniform
        type). Raises :class:`~repro.graph.schema_graph.GraphError` if
        any override names an edge *graph* does not have."""
        return WeightOverlay(graph, self.weights)

    def merged_with(self, other: "Profile", name: Optional[str] = None) -> "Profile":
        """A new profile: *other*'s entries override this one's.

        Useful for layering a user profile over a designer default.
        """
        return Profile(
            name=name or f"{self.name}+{other.name}",
            weights={**self.weights, **other.weights},
            degree=other.degree or self.degree,
            cardinality=other.cardinality or self.cardinality,
            description=other.description or self.description,
        )

    # ------------------------------------------------------------ serde

    def to_dict(self) -> dict:
        """JSON-compatible snapshot: edge keys become 3-element lists,
        constraints become ``{"type", "args"}`` records. Inverse of
        :meth:`from_dict`; the round trip preserves the overlay the
        profile produces (same canonical patches, same fingerprint)."""
        return {
            "version": _FORMAT_VERSION,
            "name": self.name,
            "weights": [
                [list(key), weight]
                for key, weight in sorted(self.weights.items())
            ],
            "degree": _encode_constraint(self.degree),
            "cardinality": _encode_constraint(self.cardinality),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        """Rebuild a profile serialized by :meth:`to_dict`."""
        if data.get("version") != _FORMAT_VERSION:
            raise GraphError(
                f"unsupported profile format version {data.get('version')!r}"
            )
        weights: dict[tuple, float] = {}
        for key, weight in data.get("weights", ()):
            key = tuple(key)
            if len(key) != 3 or key[0] not in ("proj", "join"):
                raise GraphError(f"bad edge key {key!r} in profile document")
            weights[key] = float(weight)
        return cls(
            name=data["name"],
            weights=weights,
            degree=_decode_constraint(data.get("degree")),
            cardinality=_decode_constraint(data.get("cardinality")),
            description=data.get("description", ""),
        )

    def __repr__(self):
        return (
            f"Profile({self.name!r}, {len(self.weights)} weight overrides)"
        )


def _encode_constraint(constraint) -> Optional[dict]:
    """Encode a degree/cardinality constraint as ``{"type", "args"}``.

    Covers every constraint whose init fields are scalars or nested
    constraint tuples (all the designer-facing ones); anything carrying
    live state (e.g. a ``DeadlineCardinality``) is rejected — deadlines
    belong to requests, not stored profiles.
    """
    import dataclasses

    from ..core.constraints import CardinalityConstraint, DegreeConstraint

    if constraint is None:
        return None
    payload: dict = {}
    for field_info in dataclasses.fields(constraint):
        if not field_info.init:
            continue
        value = getattr(constraint, field_info.name)
        if isinstance(value, (bool, int, float, str, type(None))):
            payload[field_info.name] = value
        elif isinstance(value, (tuple, list)) and all(
            isinstance(p, (DegreeConstraint, CardinalityConstraint))
            for p in value
        ):
            payload[field_info.name] = [_encode_constraint(p) for p in value]
        else:
            raise ValueError(
                f"constraint {type(constraint).__name__} is not "
                f"serializable: field {field_info.name!r} holds "
                f"{type(value).__name__}"
            )
    return {"type": type(constraint).__name__, "args": payload}


def _decode_constraint(data: Optional[dict]):
    """Inverse of :func:`_encode_constraint`."""
    from ..core import constraints as constraint_module

    if data is None:
        return None
    cls = getattr(constraint_module, data["type"], None)
    if not isinstance(cls, type):
        raise GraphError(f"unknown constraint type {data.get('type')!r}")
    args = {}
    for name, value in data.get("args", {}).items():
        if isinstance(value, list) and value and isinstance(value[0], dict):
            args[name] = tuple(_decode_constraint(p) for p in value)
        else:
            args[name] = value
    try:
        return cls(**args)
    except TypeError:
        # composites take their parts as *varargs*, not a keyword tuple
        if len(args) == 1:
            (value,) = args.values()
            if isinstance(value, tuple):
                return cls(*value)
        raise


class ProfileRegistry:
    """In-memory store of named profiles (the paper's "multiple sets of

    weights … stored in the system")."""

    def __init__(self):
        self._profiles: dict[str, Profile] = {}

    def register(self, profile: Profile) -> None:
        if profile.name in self._profiles:
            raise KeyError(f"profile {profile.name!r} already registered")
        self._profiles[profile.name] = profile

    def get(self, name: str) -> Profile:
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(f"no profile {name!r} registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def names(self) -> tuple[str, ...]:
        return tuple(self._profiles)

    def __len__(self):
        return len(self._profiles)
