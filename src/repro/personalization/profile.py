"""User profiles: stored weight sets and default constraints (paper §3.1).

    "Multiple sets of weights corresponding to different user profiles
    may be stored in the system. Using user-specific weights allows
    generating personalized answers. [...] Similarly to weights,
    constraints may be specified at query time by the user, or be
    pre-specified by a designer, or may be stored as part of a user's
    profile."

A :class:`Profile` bundles edge-weight overrides (keyed by schema-graph
edge keys) with optional default degree/cardinality constraints. The
précis engine overlays the profile's weights on its base graph per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.constraints import CardinalityConstraint, DegreeConstraint
from ..graph.schema_graph import SchemaGraph

__all__ = ["Profile", "ProfileRegistry"]


@dataclass
class Profile:
    """A named personalization profile."""

    name: str
    #: edge key -> weight override; keys are ("proj", rel, attr) or
    #: ("join", src, dst) — see SchemaGraph.with_weights
    weights: dict[tuple, float] = field(default_factory=dict)
    degree: Optional[DegreeConstraint] = None
    cardinality: Optional[CardinalityConstraint] = None
    description: str = ""

    # ------------------------------------------------------------ builders

    def set_projection_weight(
        self, relation: str, attribute: str, weight: float
    ) -> "Profile":
        self.weights[("proj", relation, attribute)] = weight
        return self

    def set_join_weight(self, source: str, target: str, weight: float) -> "Profile":
        self.weights[("join", source, target)] = weight
        return self

    # ------------------------------------------------------------ applying

    def personalize(self, graph: SchemaGraph) -> SchemaGraph:
        """A copy of *graph* with this profile's weights applied."""
        if not self.weights:
            return graph
        return graph.with_weights(self.weights)

    def merged_with(self, other: "Profile", name: Optional[str] = None) -> "Profile":
        """A new profile: *other*'s entries override this one's.

        Useful for layering a user profile over a designer default.
        """
        return Profile(
            name=name or f"{self.name}+{other.name}",
            weights={**self.weights, **other.weights},
            degree=other.degree or self.degree,
            cardinality=other.cardinality or self.cardinality,
            description=other.description or self.description,
        )

    def __repr__(self):
        return (
            f"Profile({self.name!r}, {len(self.weights)} weight overrides)"
        )


class ProfileRegistry:
    """In-memory store of named profiles (the paper's "multiple sets of

    weights … stored in the system")."""

    def __init__(self):
        self._profiles: dict[str, Profile] = {}

    def register(self, profile: Profile) -> None:
        if profile.name in self._profiles:
            raise KeyError(f"profile {profile.name!r} already registered")
        self._profiles[profile.name] = profile

    def get(self, name: str) -> Profile:
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(f"no profile {name!r} registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def names(self) -> tuple[str, ...]:
        return tuple(self._profiles)

    def __len__(self):
        return len(self._profiles)
