"""Personalization: user-specific weight sets and default constraints."""

from .profile import Profile, ProfileRegistry

__all__ = ["Profile", "ProfileRegistry"]
