"""repro.service — the concurrent serving layer.

Turns the single-threaded :class:`~repro.core.engine.PrecisEngine` into
a servable component: a thread pool behind a bounded admission queue
(:class:`PrecisService`), per-request deadlines that degrade answers
cooperatively instead of raising
(:class:`~repro.core.deadline.Deadline`, re-exported here), load
shedding under overload and staleness, retry-with-backoff over the
storage layer's transient/permanent fault classification, and service
metrics sharing the :mod:`repro.obs` registry. ``repro serve-bench``
(:mod:`repro.service.bench`) measures the whole stack closed-loop.

See ``docs/service.md``.
"""

from ..core.deadline import NO_DEADLINE, Deadline
from .bench import (
    measure_trace_overhead,
    movies_workload,
    percentile,
    run_serve_bench,
)
from .errors import (
    QueueFull,
    RetryExhausted,
    ServiceClosed,
    ServiceError,
    StaleRequest,
    TenantQuotaExceeded,
)
from .retry import RetryPolicy, call_with_retry
from .service import PrecisService, ServiceConfig

__all__ = [
    "Deadline",
    "NO_DEADLINE",
    "PrecisService",
    "ServiceConfig",
    "RetryPolicy",
    "call_with_retry",
    "ServiceError",
    "ServiceClosed",
    "QueueFull",
    "StaleRequest",
    "TenantQuotaExceeded",
    "RetryExhausted",
    "run_serve_bench",
    "movies_workload",
    "percentile",
    "measure_trace_overhead",
]
