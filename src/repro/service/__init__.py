"""repro.service — the concurrent serving layer.

Turns the single-threaded :class:`~repro.core.engine.PrecisEngine` into
a servable component: a thread pool behind a bounded admission queue
(:class:`PrecisService`), per-request deadlines that degrade answers
cooperatively instead of raising
(:class:`~repro.core.deadline.Deadline`, re-exported here), load
shedding under overload and staleness, retry-with-backoff over the
storage layer's transient/permanent fault classification, and service
metrics sharing the :mod:`repro.obs` registry. ``repro serve-bench``
(:mod:`repro.service.bench`) measures the whole stack closed-loop.

On top of the thread pool sits the asyncio front door
(:mod:`repro.service.frontdoor`): request coalescing keyed by the
answer-cache signature (weight fingerprint included), interactive/batch
priority classes with earliest-deadline-first dispatch, and batch
preemption under overload — served over the wire by the stdlib HTTP
endpoint (:mod:`repro.service.http`, ``repro serve``) and driven to
saturation by the open-loop Poisson generator
(:mod:`repro.service.loadgen`, ``repro serve-bench --arrival-rate``).

See ``docs/service.md``.
"""

from ..core.deadline import NO_DEADLINE, Deadline
from .bench import (
    measure_trace_overhead,
    movies_workload,
    percentile,
    run_serve_bench,
)
from .errors import (
    QueueFull,
    RetryExhausted,
    ServiceClosed,
    ServiceError,
    StaleRequest,
    TenantQuotaExceeded,
)
from .frontdoor import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    AsyncFrontDoor,
    FrontDoorConfig,
)
from .http import FrontDoorHTTP
from .loadgen import OpenLoopConfig, run_frontdoor_bench, run_open_loop
from .retry import RetryPolicy, call_with_retry
from .service import PrecisService, ServiceConfig

__all__ = [
    "Deadline",
    "NO_DEADLINE",
    "PrecisService",
    "ServiceConfig",
    "AsyncFrontDoor",
    "FrontDoorConfig",
    "FrontDoorHTTP",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_BATCH",
    "OpenLoopConfig",
    "run_open_loop",
    "run_frontdoor_bench",
    "RetryPolicy",
    "call_with_retry",
    "ServiceError",
    "ServiceClosed",
    "QueueFull",
    "StaleRequest",
    "TenantQuotaExceeded",
    "RetryExhausted",
    "run_serve_bench",
    "movies_workload",
    "percentile",
    "measure_trace_overhead",
]
