"""Retry-with-backoff for transient storage failures.

The storage layer classifies its failures
(:class:`~repro.storage.TransientStorageError` vs.
:class:`~repro.storage.PermanentStorageError`); this module supplies the
policy that acts on the classification. Only transient errors are
retried — a permanent error or any non-storage exception propagates on
the first throw.

The sleep function is injectable so tests (and the fault-injection
harness) run deterministically without real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from ..storage import TransientStorageError
from .errors import RetryExhausted

__all__ = ["RetryPolicy", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: try *attempts* times, sleeping
    ``base_delay_s * multiplier**i`` between try *i* and try *i+1*."""

    attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_before(self, attempt: int) -> float:
        """Sleep before retry number *attempt* (1-based)."""
        return self.base_delay_s * self.multiplier ** (attempt - 1)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call *fn*, retrying :class:`TransientStorageError` with backoff.

    *on_retry* is invoked once per retry (attempt number, error) —
    the service layer hangs its retry counter there. When every attempt
    fails transiently, raises :class:`RetryExhausted` with the last
    error as ``__cause__``.
    """
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn()
        except TransientStorageError as exc:
            last = exc
            if attempt < policy.attempts:
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(policy.delay_before(attempt))
    raise RetryExhausted(policy.attempts, last) from last
