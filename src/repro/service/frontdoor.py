"""The asyncio front door: request coalescing + priority admission.

:class:`AsyncFrontDoor` wraps a :class:`~repro.service.PrecisService`
(the thread-pooled serving layer) with the three things a request-per-
user web front end needs that a FIFO thread pool cannot give:

* **Request coalescing** — keyword traffic is dominated by identical
  popular asks. Two submissions with the same *ask signature* — the
  answer-cache key: query tokens, resolved constraints, strategy, the
  canonical weight fingerprint of the effective graph (the tenant
  dimension), and the translate/path_scoped flags
  (:meth:`~repro.core.engine.PrecisEngine.ask_signature`) — produce
  byte-identical answers over an unmutated database, so while one is
  *in flight* the second never reaches an engine: it joins the first
  as a **follower** and the one execution's outcome (answer, degraded
  answer, or failure) is fanned out to every waiter. Signatures with
  different weight fingerprints never share a flight, so tenants with
  different effective weights cannot leak answers to each other; an
  uncacheable signature (opaque tuple weigher, unhashable constraint)
  is never coalesced at all.
* **Priority classes** — ``"interactive"`` requests are dispatched
  strictly before ``"batch"``; within a class the earliest deadline
  goes first (EDF), so a near-expiry interactive request is served
  next or — once expired — shed at dispatch instead of executing for
  nothing. A batch-classified flight joined by an interactive follower
  is *upgraded*: the most urgent waiter sets the flight's class. When
  the pending queue is full, an arriving interactive request preempts
  the least-urgent pending batch flight (``preempt_batch``) rather
  than being shed behind it.
* **Deadline discipline** — a request already expired at submit is
  shed immediately (:class:`~repro.service.errors.StaleRequest`)
  without executing or coalescing; a pending flight that expires
  before dispatch is shed at dispatch; and a coalesced follower with a
  *tighter* deadline than its leader still honours its own — it is
  never handed an answer past its deadline, even though the leader's
  execution continues for the remaining waiters.

Dispatch runs one in-flight request per service worker by default, so
the FIFO queue inside :class:`PrecisService` stays empty and ordering
decisions live entirely in the front door's priority queue.

Tracing composes: when the wrapped service carries a
:class:`~repro.obs.context.TraceBuffer`, the front door mints each
waiter's :class:`~repro.obs.context.TraceContext` at *its own* submit
time. The leader's context rides into the service (``submit(context=)``)
so its trace spans front-door queueing plus the full engine subtree;
every follower gets its own ``request`` span with a ``coalesced`` child
and :attr:`~repro.obs.context.RequestTrace.coalesced_into` naming the
leader's trace id. Metrics land in
:class:`~repro.obs.metrics.FrontDoorMetrics` on the wrapped service's
registry — one scrape shows the whole stack.

Everything here runs on one event loop: submissions, admission,
coalescing bookkeeping and dispatch are loop-confined (no locks), and
only the engine execution crosses into the service's worker threads.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time
from dataclasses import dataclass
from typing import Any, Optional

from ..core.deadline import NO_DEADLINE, Deadline
from ..obs.context import RequestTrace, TraceContext, synthetic_span
from ..obs.metrics import FrontDoorMetrics
from .errors import (
    QueueFull,
    ServiceClosed,
    ServiceError,
    StaleRequest,
    TenantQuotaExceeded,
)
from .service import PrecisService

__all__ = [
    "PRIORITY_INTERACTIVE",
    "PRIORITY_BATCH",
    "FrontDoorConfig",
    "AsyncFrontDoor",
]

PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"

#: dispatch order: lower rank first; within a rank, earliest deadline
_RANK = {PRIORITY_INTERACTIVE: 0, PRIORITY_BATCH: 1}


class _FollowerStale(Exception):
    """Internal: a coalesced follower outlived its own deadline while
    waiting on the leader (converted to StaleRequest at the boundary)."""

    def __init__(self, waited_s: float):
        super().__init__(waited_s)
        self.waited_s = waited_s


@dataclass(frozen=True)
class FrontDoorConfig:
    """Tuning knobs of one :class:`AsyncFrontDoor`."""

    #: bound on *pending* (admitted, undispatched) flights
    max_pending: int = 256
    #: concurrent dispatches into the wrapped service; default = one
    #: per service worker, which keeps the service's FIFO queue empty
    dispatch_concurrency: Optional[int] = None
    #: merge identical in-flight asks into one engine execution
    coalesce: bool = True
    #: shed expired requests at submit and at dispatch (StaleRequest)
    shed_stale: bool = True
    #: when the pending queue is full, an interactive arrival evicts
    #: the least-urgent pending batch flight instead of being shed
    preempt_batch: bool = True
    #: deadline for requests that carry none (seconds; None falls back
    #: to the wrapped service's default_timeout_s)
    default_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if (
            self.dispatch_concurrency is not None
            and self.dispatch_concurrency < 1
        ):
            raise ValueError("dispatch_concurrency must be at least 1")


class _Flight:
    """One logical engine execution and the waiters coalesced onto it."""

    __slots__ = (
        "key", "query", "ask_kwargs", "deadline", "tenant", "priority",
        "context", "future", "state", "dispatched", "waiters", "seq",
        "expiry_key", "admitted_mono",
    )

    def __init__(self, key, query, ask_kwargs, deadline, tenant, priority,
                 context, future):
        self.key = key
        self.query = query
        self.ask_kwargs = ask_kwargs
        self.deadline = deadline
        self.tenant = tenant
        self.priority = priority
        self.context = context
        self.future = future
        #: "pending" (queued) -> "dispatched" (executing) -> "done"
        self.state = "pending"
        #: whether service.submit was attempted (the service then owns
        #: the leader's trace, including synchronous shed traces)
        self.dispatched = False
        self.waiters = 1
        self.seq = 0
        self.expiry_key = math.inf
        self.admitted_mono = 0.0

    @property
    def rank(self) -> int:
        return _RANK[self.priority]

    @property
    def leader_trace_id(self) -> Optional[str]:
        return self.context.trace_id if self.context is not None else None


class AsyncFrontDoor:
    """Coalescing, priority-scheduling asyncio façade over one
    :class:`~repro.service.PrecisService`.

    All coroutine methods must run on one event loop (state is
    loop-confined by design). The front door does not own the wrapped
    service: closing the front door drains its own queue but leaves the
    service running unless ``close(close_service=True)``.
    """

    def __init__(
        self,
        service: PrecisService,
        config: Optional[FrontDoorConfig] = None,
    ):
        self.service = service
        self.config = config if config is not None else FrontDoorConfig()
        self.metrics = FrontDoorMetrics(service.metrics.registry)
        self._flights: dict[Any, _Flight] = {}
        self._heap: list[tuple[int, float, int, _Flight]] = []
        self._seq = 0
        self._pending_count = 0
        self._closed = False
        self._started = False
        self._work: Optional[asyncio.Event] = None
        self._dispatchers: list[asyncio.Task] = []

    # ------------------------------------------------------------- submit

    async def submit(
        self,
        query,
        deadline: Optional[Deadline] = None,
        timeout_s: Optional[float] = None,
        tenant: Optional[str] = None,
        priority: str = PRIORITY_INTERACTIVE,
        **ask_kwargs: Any,
    ):
        """Answer one ask through the front door; returns the
        :class:`~repro.core.answer.PrecisAnswer` (or raises the shed /
        failure exception the execution produced).

        Deadline resolution: explicit *deadline* > *timeout_s* >
        ``FrontDoorConfig.default_timeout_s`` > the wrapped service's
        ``default_timeout_s`` > none. *priority* must be
        ``"interactive"`` or ``"batch"``. Remaining keyword arguments
        go to :meth:`~repro.core.engine.PrecisEngine.ask` and take part
        in the coalescing signature (an argument the signature cannot
        canonicalize — e.g. a *tuple_weigher* — disables coalescing for
        that request only).
        """
        if priority not in _RANK:
            raise ValueError(
                f"priority must be one of {sorted(_RANK)}, got {priority!r}"
            )
        self._ensure_started()
        start = time.monotonic()
        context: Optional[TraceContext] = None
        if self.service.traces is not None:
            context = TraceContext.mint(
                query=getattr(query, "text", None) or str(query),
                tenant=tenant,
                priority=priority,
            )
        if self._closed:
            self.metrics.shed("closed", priority)
            self._record_trace(context, "shed_closed")
            raise ServiceClosed("front door is closed")
        deadline = self._resolve_deadline(deadline, timeout_s)
        if context is not None and deadline.expires():
            context.deadline_s = deadline.remaining()
        self.metrics.admitted(priority)
        # Shed-on-stale at submit: an already-expired request neither
        # executes nor joins a flight — running it could only produce
        # an empty degraded shell, and coalescing it would hand it an
        # answer past its deadline anyway.
        if (
            self.config.shed_stale
            and deadline.expires()
            and deadline.expired()
        ):
            self.metrics.shed("stale", priority)
            self._record_trace(context, "shed_stale")
            raise StaleRequest(0.0)

        key = self._coalesce_key(query, ask_kwargs) if self.config.coalesce else None
        flight = self._flights.get(key) if key is not None else None
        if flight is not None and flight.state != "done":
            # -------- follower: identical ask already in flight
            self.metrics.coalesced(priority)
            flight.waiters += 1
            self._maybe_upgrade(flight, priority)
            return await self._join(
                flight, deadline, priority, context, start, follower=True
            )
        # ------------ leader: admit a fresh flight
        flight = self._admit(
            query, ask_kwargs, key, deadline, tenant, priority, context,
            start,
        )
        return await self._join(
            flight, deadline, priority, context, start, follower=False
        )

    async def ask(self, query, **kwargs: Any):
        """Alias of :meth:`submit` (symmetry with PrecisService)."""
        return await self.submit(query, **kwargs)

    def _resolve_deadline(
        self, deadline: Optional[Deadline], timeout_s: Optional[float]
    ) -> Deadline:
        if deadline is not None:
            return deadline
        seconds = (
            timeout_s
            if timeout_s is not None
            else (
                self.config.default_timeout_s
                if self.config.default_timeout_s is not None
                else self.service.config.default_timeout_s
            )
        )
        return Deadline.after(seconds) if seconds is not None else NO_DEADLINE

    def _coalesce_key(self, query, ask_kwargs) -> Optional[tuple]:
        """The flight key of one submission: the engine's canonical ask
        signature, or None when the call must not be coalesced."""
        engine = self.service.engines[0]
        try:
            return engine.ask_signature(query, **ask_kwargs)
        except TypeError:
            # an argument the signature doesn't canonicalize (tracer=,
            # unknown kwarg...): run it uncoalesced, the engine will
            # surface any real error
            return None

    # ---------------------------------------------------------- admission

    def _admit(
        self, query, ask_kwargs, key, deadline, tenant, priority, context,
        start,
    ) -> _Flight:
        if self._pending_count >= self.config.max_pending:
            if not self._preempt_for(priority):
                self.metrics.shed("full", priority)
                self._record_trace(context, "shed_full")
                raise QueueFull(self.config.max_pending)
        flight = _Flight(
            key, query, dict(ask_kwargs), deadline, tenant, priority,
            context, asyncio.get_running_loop().create_future(),
        )
        self._seq += 1
        flight.seq = self._seq
        flight.admitted_mono = start
        flight.expiry_key = (
            deadline.remaining() if deadline.expires() else math.inf
        )
        if key is not None:
            self._flights[key] = flight
        self._pending_count += 1
        self.metrics.pending.add(1)
        heapq.heappush(
            self._heap,
            (flight.rank, flight.expiry_key, flight.seq, flight),
        )
        self._work.set()
        return flight

    def _maybe_upgrade(self, flight: _Flight, priority: str) -> None:
        """An interactive follower joining a pending batch flight makes
        the flight interactive — the most urgent waiter sets the class,
        so a duplicate ask is never stuck behind the batch backlog."""
        if flight.state != "pending" or _RANK[priority] >= flight.rank:
            return
        flight.priority = priority
        heapq.heappush(
            self._heap,
            (flight.rank, flight.expiry_key, flight.seq, flight),
        )
        self._work.set()

    def _preempt_for(self, priority: str) -> bool:
        """Full queue + interactive arrival: evict the least-urgent
        pending *batch* flight (latest deadline, latest arrival) to
        make room. Counted once per evicted flight; every coalesced
        waiter of the victim sees QueueFull."""
        if not self.config.preempt_batch or priority != PRIORITY_INTERACTIVE:
            return False
        victim: Optional[_Flight] = None
        victim_order: tuple = ()
        for __, expiry, seq, flight in self._heap:
            if flight.state == "pending" and flight.rank == _RANK[PRIORITY_BATCH]:
                order = (expiry, seq)
                if victim is None or order > victim_order:
                    victim, victim_order = flight, order
        if victim is None:
            return False
        self._pending_count -= 1
        self.metrics.shed("preempted", victim.priority)
        self._resolve_flight(
            victim, error=QueueFull(self.config.max_pending)
        )
        return True

    # ---------------------------------------------------------- waiting

    async def _join(
        self,
        flight: _Flight,
        deadline: Deadline,
        priority: str,
        context: Optional[TraceContext],
        start: float,
        follower: bool,
    ):
        coalesced_into = flight.leader_trace_id if follower else None
        try:
            answer = await self._wait(flight, deadline, follower, start)
        except _FollowerStale as exc:
            # waiter-level shed: this follower's own deadline, nobody
            # else's — the leader execution continues for the rest
            self.metrics.shed("stale_follower", priority)
            self._record_trace(
                context, "shed_stale", coalesced_into=coalesced_into
            )
            raise StaleRequest(exc.waited_s) from None
        except (QueueFull, StaleRequest, ServiceClosed,
                TenantQuotaExceeded) as exc:
            # flight-level shed, already counted once per logical
            # execution; every waiter still reports its own trace
            if follower or not flight.dispatched:
                self._record_trace(
                    context,
                    _shed_outcome(exc),
                    coalesced_into=coalesced_into,
                    error=exc,
                )
            raise
        except BaseException as exc:
            self.metrics.failed(priority, type(exc).__name__)
            if follower or not flight.dispatched:
                self._record_trace(
                    context, "failed", coalesced_into=coalesced_into,
                    error=exc,
                )
            raise
        elapsed = time.monotonic() - start
        self.metrics.answered(priority, degraded=answer.degraded)
        self.metrics.latency(
            elapsed,
            priority,
            trace_id=context.trace_id if context is not None else None,
        )
        if follower:
            self._record_trace(
                context,
                "degraded" if answer.degraded else "answered",
                coalesced_into=coalesced_into,
            )
        return answer

    async def _wait(
        self, flight: _Flight, deadline: Deadline, follower: bool,
        start: float,
    ):
        """Await the flight's outcome; a follower is additionally bound
        by its *own* deadline (the leader's execution deadline may be
        looser)."""
        if not (follower and self.config.shed_stale and deadline.expires()):
            return await asyncio.shield(flight.future)
        remaining = deadline.remaining()
        try:
            answer = await asyncio.wait_for(
                asyncio.shield(flight.future), timeout=remaining
            )
        except asyncio.TimeoutError:
            raise _FollowerStale(time.monotonic() - start) from None
        if deadline.expired():
            # injectable clocks / boundary races: the wall timeout may
            # not have fired, but the follower's own deadline has — it
            # is never served past it
            raise _FollowerStale(time.monotonic() - start)
        return answer

    # ---------------------------------------------------------- dispatch

    def _ensure_started(self) -> None:
        if self._started:
            return
        loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        n = (
            self.config.dispatch_concurrency
            if self.config.dispatch_concurrency is not None
            else self.service.workers
        )
        self._dispatchers = [
            loop.create_task(self._dispatch_loop(), name=f"frontdoor-{i}")
            for i in range(n)
        ]
        self._started = True

    async def _dispatch_loop(self) -> None:
        while True:
            flight = await self._next_flight()
            if flight is None:
                return
            await self._execute(flight)

    async def _next_flight(self) -> Optional[_Flight]:
        while True:
            while self._heap:
                rank, __, __, flight = heapq.heappop(self._heap)
                if flight.state != "pending" or rank != flight.rank:
                    continue  # resolved, executing, or upgraded duplicate
                flight.state = "dispatched"
                self._pending_count -= 1
                return flight
            if self._closed:
                return None
            self._work.clear()
            await self._work.wait()

    async def _execute(self, flight: _Flight) -> None:
        # stale at dispatch: the flight's deadline ran out while queued
        if (
            self.config.shed_stale
            and flight.deadline.expires()
            and flight.deadline.expired()
        ):
            self.metrics.shed("stale", flight.priority)
            self._resolve_flight(
                flight,
                error=StaleRequest(
                    time.monotonic() - flight.admitted_mono
                ),
            )
            return
        flight.dispatched = True
        try:
            future = self.service.submit(
                flight.query,
                deadline=flight.deadline,
                tenant=flight.tenant,
                priority=flight.priority,
                context=flight.context,
                **flight.ask_kwargs,
            )
        except ServiceError as exc:
            # synchronous admission shed (queue full / tenant quota /
            # closed): the service counted and traced it once; mirror
            # one front-door shed per logical execution
            self.metrics.shed(_shed_reason(exc), flight.priority)
            self._resolve_flight(flight, error=exc)
            return
        except BaseException as exc:  # pragma: no cover — defensive
            self._resolve_flight(flight, error=exc)
            return
        self.metrics.executed()
        try:
            answer = await asyncio.wrap_future(future)
        except StaleRequest as exc:
            # expired inside the service queue (only possible when
            # dispatch_concurrency exceeds the worker count)
            self.metrics.shed("stale", flight.priority)
            self._resolve_flight(flight, error=exc)
            return
        except BaseException as exc:
            self._resolve_flight(flight, error=exc)
            return
        self._resolve_flight(flight, result=answer)

    def _resolve_flight(self, flight: _Flight, result=None, error=None):
        """Fan one outcome out to every waiter, exactly once."""
        if flight.state == "done":
            return
        flight.state = "done"
        if (
            flight.key is not None
            and self._flights.get(flight.key) is flight
        ):
            del self._flights[flight.key]
        self.metrics.pending.add(-1)
        if error is not None:
            flight.future.set_exception(error)
        else:
            flight.future.set_result(result)

    # ---------------------------------------------------------- tracing

    def _record_trace(
        self,
        context: Optional[TraceContext],
        outcome: str,
        coalesced_into: Optional[str] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """One waiter's front-door-side trace: a synthetic ``request``
        root with a ``coalesced`` (follower) or ``frontdoor`` (own
        queueing) child. Leader outcomes that reached the service are
        traced by the service itself and not repeated here."""
        buffer = self.service.traces
        if buffer is None or context is None:
            return
        duration = max(time.perf_counter() - context.submitted_mono, 0.0)
        root = synthetic_span("request", context.submitted_wall, duration)
        child = "coalesced" if coalesced_into is not None else "frontdoor"
        root.children.append(
            synthetic_span(child, context.submitted_wall, duration)
        )
        buffer.offer(
            RequestTrace(
                context=context,
                root=root,
                outcome=outcome,
                duration_s=duration,
                queue_wait_s=duration if outcome.startswith("shed") else 0.0,
                error=type(error).__name__ if error is not None else None,
                worker="frontdoor",
                coalesced_into=coalesced_into,
            )
        )

    # ---------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Flights admitted but not yet resolved (pending + executing)."""
        return int(self.metrics.pending.value)

    async def close(self, close_service: bool = False) -> None:
        """Stop admitting, drain pending flights, stop the dispatchers.

        Flights already admitted are executed (or shed stale) to
        completion, so no waiter is ever stranded. Idempotent. Pass
        ``close_service=True`` to also close the wrapped
        :class:`PrecisService` afterwards."""
        self._closed = True
        if self._started:
            self._work.set()
            await asyncio.gather(*self._dispatchers)
        if close_service:
            self.service.close()

    async def __aenter__(self) -> "AsyncFrontDoor":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self):
        return (
            f"AsyncFrontDoor({self.service!r}, pending={self.pending()}, "
            f"coalesce={self.config.coalesce}"
            f"{', closed' if self._closed else ''})"
        )


def _shed_reason(exc: BaseException) -> str:
    if isinstance(exc, QueueFull):
        return "full"
    if isinstance(exc, TenantQuotaExceeded):
        return "tenant_quota"
    if isinstance(exc, StaleRequest):
        return "stale"
    return "closed"


def _shed_outcome(exc: BaseException) -> str:
    return f"shed_{_shed_reason(exc)}"
