"""Closed-loop serving benchmark (the ``repro serve-bench`` CLI).

Drives a :class:`~repro.service.PrecisService` with N client threads,
each issuing M synchronous asks back-to-back (closed loop: a client
never has more than one request in flight, so offered load adapts to
service capacity). Reports throughput, client-observed latency
percentiles, and the shed/degraded/timeout picture from the service
metrics — the payload that lands in ``BENCH_precis.json`` under
``serve``.

With a deadline configured, client-observed p99 of *answered* requests
stays bounded near the deadline: queue time counts against it (stale
requests are shed at dequeue) and engine time degrades cooperatively at
the next iteration boundary once it expires.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from ..core.engine import PrecisEngine
from ..obs.context import TraceBuffer
from ..obs.profile import StackSampler
from ..obs.slo import SLOTracker
from .errors import QueueFull, ServiceError, StaleRequest
from .service import PrecisService, ServiceConfig

__all__ = [
    "percentile",
    "run_serve_bench",
    "movies_workload",
    "measure_trace_overhead",
]


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The *q*-th percentile by linear interpolation (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def movies_workload(
    n_movies: int = 300, backend: Optional[str] = None
) -> tuple[PrecisEngine, list[str]]:
    """A deterministic mid-size workload: synthetic movies database +
    a query mix that exercises single-token, multi-relation and
    phrase matching."""
    from ..datasets import generate_movies_database, movies_graph

    db = generate_movies_database(n_movies=n_movies, seed=11, backend=backend)
    engine = PrecisEngine(db, graph=movies_graph())
    queries = [
        "midnight",
        "drama",
        "garcia",
        "thriller",
        "comedy",
        "crimson harbor",
    ]
    return engine, queries


def run_serve_bench(
    engine: PrecisEngine,
    queries: Sequence[str],
    client_threads: int = 8,
    requests_per_client: int = 25,
    workers: int = 2,
    queue_depth: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    traces: Optional[TraceBuffer] = None,
    profile: bool = False,
    **ask_kwargs,
) -> dict:
    """Run one closed-loop benchmark; returns the ``serve`` payload.

    *traces* switches on end-to-end request tracing for the run (the
    buffer keeps sheds/degradeds/slow requests plus a head sample —
    export it afterwards). *profile* runs the statistical profiler
    (:class:`~repro.obs.profile.StackSampler`) across the timed section
    and adds a per-stage self-time breakdown under ``"profile"``. The
    payload always carries the SLO snapshot under ``"slo"``.
    """
    depth = (
        queue_depth if queue_depth is not None else max(2 * client_threads, 16)
    )
    config = ServiceConfig(
        workers=workers,
        queue_depth=depth,
        default_timeout_s=(
            deadline_ms / 1000.0 if deadline_ms is not None else None
        ),
    )
    service = PrecisService(engine, config=config, traces=traces)

    latencies_ms: list[float] = []
    outcomes = {
        "answered": 0,
        "degraded": 0,
        "shed_full": 0,
        "shed_stale": 0,
        "failed": 0,
    }
    lock = threading.Lock()
    barrier = threading.Barrier(client_threads + 1)

    def client(offset: int) -> None:
        local_lat: list[float] = []
        local_out = dict.fromkeys(outcomes, 0)
        barrier.wait()
        for i in range(requests_per_client):
            query = queries[(offset + i) % len(queries)]
            start = time.monotonic()
            try:
                answer = service.ask(query, **ask_kwargs)
            except QueueFull:
                local_out["shed_full"] += 1
                continue
            except StaleRequest:
                local_out["shed_stale"] += 1
                continue
            except ServiceError:
                local_out["failed"] += 1
                continue
            elapsed_ms = (time.monotonic() - start) * 1000.0
            local_lat.append(elapsed_ms)
            local_out["answered"] += 1
            if answer.degraded:
                local_out["degraded"] += 1
        with lock:
            latencies_ms.extend(local_lat)
            for key, value in local_out.items():
                outcomes[key] += value

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(client_threads)
    ]
    for thread in threads:
        thread.start()
    sampler = StackSampler() if profile else None
    if sampler is not None:
        sampler.start()
    barrier.wait()
    bench_start = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed_s = time.monotonic() - bench_start
    profile_report = sampler.stop() if sampler is not None else None
    service.close()

    total = client_threads * requests_per_client
    snapshot = service.metrics.snapshot()
    slo = SLOTracker(service.metrics.registry).snapshot()
    payload = {
        "client_threads": client_threads,
        "requests_per_client": requests_per_client,
        "workers": workers,
        "queue_depth": depth,
        "deadline_ms": deadline_ms,
        "requests": total,
        "outcomes": outcomes,
        "elapsed_s": elapsed_s,
        "throughput_rps": (
            outcomes["answered"] / elapsed_s if elapsed_s > 0 else 0.0
        ),
        "latency_ms": {
            "p50": percentile(latencies_ms, 50),
            "p95": percentile(latencies_ms, 95),
            "p99": percentile(latencies_ms, 99),
            "max": max(latencies_ms) if latencies_ms else None,
        },
        "queue_depth_after": service.queue_depth(),
        "counters": snapshot["counters"],
        "slo": slo,
    }
    if profile_report is not None:
        payload["profile"] = profile_report
    if traces is not None:
        payload["traces"] = traces.stats()
    return payload


def measure_trace_overhead(
    engine: PrecisEngine,
    queries: Sequence[str],
    client_threads: int = 1,
    requests_per_client: int = 60,
    workers: int = 1,
    sample_rate: float = 0.1,
    rounds: int = 3,
    budget_pct: float = 5.0,
    **bench_kwargs,
) -> dict:
    """Throughput cost of tracing: sampling on vs off, best of *rounds*.

    "Off" is a run with no :class:`~repro.obs.context.TraceBuffer` —
    the service mints no contexts and builds no spans, the true
    untraced baseline. "On" traces every request (capture is always on
    when a buffer is present; *sample_rate* governs buffer admission).

    The defaults run *serial* (one client, one worker): that isolates
    the cost of the tracing code path itself. A multi-worker closed
    loop on a shared or single-core runner measures scheduler noise —
    an A/A control there swings by ±10%, an order of magnitude above
    tracing's real cost — so the concurrent configuration is available
    but not what the budget gate should run. Rounds alternate which
    side goes first and keep the best of each, cancelling slow drift;
    the result is gated at *budget_pct* by ``benchmarks/`` and
    recorded — with a warning, not a failure — by ``serve-bench``.
    """
    if rounds < 1:
        raise ValueError("rounds must be at least 1")

    def run_once(traces: Optional[TraceBuffer]) -> float:
        payload = run_serve_bench(
            engine,
            queries,
            client_threads=client_threads,
            requests_per_client=requests_per_client,
            workers=workers,
            traces=traces,
            **bench_kwargs,
        )
        return payload["throughput_rps"]

    def traced_buffer() -> TraceBuffer:
        return TraceBuffer(capacity=256, sample_rate=sample_rate)

    run_once(None)  # warm-up: caches, lazy imports, branch predictors
    baseline_rps = 0.0
    traced_rps = 0.0
    for index in range(rounds):
        if index % 2 == 0:
            baseline_rps = max(baseline_rps, run_once(None))
            traced_rps = max(traced_rps, run_once(traced_buffer()))
        else:
            traced_rps = max(traced_rps, run_once(traced_buffer()))
            baseline_rps = max(baseline_rps, run_once(None))
    overhead_pct = (
        (baseline_rps - traced_rps) / baseline_rps * 100.0
        if baseline_rps > 0
        else 0.0
    )
    return {
        "sample_rate": sample_rate,
        "rounds": rounds,
        "baseline_rps": baseline_rps,
        "traced_rps": traced_rps,
        "overhead_pct": overhead_pct,
        "budget_pct": budget_pct,
        "passed": overhead_pct <= budget_pct,
    }
