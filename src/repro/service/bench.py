"""Closed-loop serving benchmark (the ``repro serve-bench`` CLI).

Drives a :class:`~repro.service.PrecisService` with N client threads,
each issuing M synchronous asks back-to-back (closed loop: a client
never has more than one request in flight, so offered load adapts to
service capacity). Reports throughput, client-observed latency
percentiles, and the shed/degraded/timeout picture from the service
metrics — the payload that lands in ``BENCH_precis.json`` under
``serve``.

With a deadline configured, client-observed p99 of *answered* requests
stays bounded near the deadline: queue time counts against it (stale
requests are shed at dequeue) and engine time degrades cooperatively at
the next iteration boundary once it expires.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from ..core.engine import PrecisEngine
from .errors import QueueFull, ServiceError, StaleRequest
from .service import PrecisService, ServiceConfig

__all__ = ["percentile", "run_serve_bench", "movies_workload"]


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The *q*-th percentile by linear interpolation (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def movies_workload(
    n_movies: int = 300, backend: Optional[str] = None
) -> tuple[PrecisEngine, list[str]]:
    """A deterministic mid-size workload: synthetic movies database +
    a query mix that exercises single-token, multi-relation and
    phrase matching."""
    from ..datasets import generate_movies_database, movies_graph

    db = generate_movies_database(n_movies=n_movies, seed=11, backend=backend)
    engine = PrecisEngine(db, graph=movies_graph())
    queries = [
        "midnight",
        "drama",
        "garcia",
        "thriller",
        "comedy",
        "crimson harbor",
    ]
    return engine, queries


def run_serve_bench(
    engine: PrecisEngine,
    queries: Sequence[str],
    client_threads: int = 8,
    requests_per_client: int = 25,
    workers: int = 2,
    queue_depth: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    **ask_kwargs,
) -> dict:
    """Run one closed-loop benchmark; returns the ``serve`` payload."""
    depth = (
        queue_depth if queue_depth is not None else max(2 * client_threads, 16)
    )
    config = ServiceConfig(
        workers=workers,
        queue_depth=depth,
        default_timeout_s=(
            deadline_ms / 1000.0 if deadline_ms is not None else None
        ),
    )
    service = PrecisService(engine, config=config)

    latencies_ms: list[float] = []
    outcomes = {
        "answered": 0,
        "degraded": 0,
        "shed_full": 0,
        "shed_stale": 0,
        "failed": 0,
    }
    lock = threading.Lock()
    barrier = threading.Barrier(client_threads + 1)

    def client(offset: int) -> None:
        local_lat: list[float] = []
        local_out = dict.fromkeys(outcomes, 0)
        barrier.wait()
        for i in range(requests_per_client):
            query = queries[(offset + i) % len(queries)]
            start = time.monotonic()
            try:
                answer = service.ask(query, **ask_kwargs)
            except QueueFull:
                local_out["shed_full"] += 1
                continue
            except StaleRequest:
                local_out["shed_stale"] += 1
                continue
            except ServiceError:
                local_out["failed"] += 1
                continue
            elapsed_ms = (time.monotonic() - start) * 1000.0
            local_lat.append(elapsed_ms)
            local_out["answered"] += 1
            if answer.degraded:
                local_out["degraded"] += 1
        with lock:
            latencies_ms.extend(local_lat)
            for key, value in local_out.items():
                outcomes[key] += value

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(client_threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    bench_start = time.monotonic()
    for thread in threads:
        thread.join()
    elapsed_s = time.monotonic() - bench_start
    service.close()

    total = client_threads * requests_per_client
    snapshot = service.metrics.snapshot()
    return {
        "client_threads": client_threads,
        "requests_per_client": requests_per_client,
        "workers": workers,
        "queue_depth": depth,
        "deadline_ms": deadline_ms,
        "requests": total,
        "outcomes": outcomes,
        "elapsed_s": elapsed_s,
        "throughput_rps": (
            outcomes["answered"] / elapsed_s if elapsed_s > 0 else 0.0
        ),
        "latency_ms": {
            "p50": percentile(latencies_ms, 50),
            "p95": percentile(latencies_ms, 95),
            "p99": percentile(latencies_ms, 99),
            "max": max(latencies_ms) if latencies_ms else None,
        },
        "queue_depth_after": service.queue_depth(),
        "counters": snapshot["counters"],
    }
