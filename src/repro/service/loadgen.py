"""Open-loop arrival generator for the async front door.

The closed-loop harness (:func:`repro.service.bench.run_serve_bench`)
measures *capacity*: N clients issue the next request only after the
previous answer, so offered load self-throttles to whatever the stack
sustains and overload never really happens. Real keyword-search traffic
is **open-loop**: users arrive by their own clock, independent of how
the backlog is doing, and a system at 2x its capacity must shed — the
interesting regime for coalescing and priorities is exactly the one a
closed loop cannot reach (Schroeder et al.'s closed/open distinction).

:func:`run_open_loop` therefore precomputes a Poisson arrival schedule
(seeded, exponential inter-arrivals at ``arrival_rate``) and fires each
request at its scheduled instant whether or not earlier ones resolved.
Each arrival draws a priority class (``batch_fraction``) and a query:
with probability ``duplicate_fraction`` the *hot* query (the coalescing
target), otherwise one of the rest — so the duplicate share of the
offered stream is directly configurable. The payload reports goodput
(non-degraded answers per second of makespan), shed rate, the
coalescing hit rate (followers / offered, read from the front door's
own counters) and per-class latency percentiles.

:func:`run_frontdoor_bench` packages the A/B experiment the benchmark
gate wants: the same schedule replayed against a fresh service twice —
coalescing on, then off — reporting both payloads and the goodput
ratio.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.engine import PrecisEngine
from ..obs.context import TraceBuffer
from .bench import percentile
from .errors import (
    QueueFull,
    ServiceClosed,
    StaleRequest,
    TenantQuotaExceeded,
)
from .frontdoor import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    AsyncFrontDoor,
    FrontDoorConfig,
)
from .service import PrecisService, ServiceConfig

__all__ = ["OpenLoopConfig", "run_open_loop", "run_frontdoor_bench"]


@dataclass(frozen=True)
class OpenLoopConfig:
    """One open-loop run: the offered stream, not the system under it."""

    #: mean offered load, requests/second (Poisson arrivals)
    arrival_rate: float
    #: length of the arrival schedule, seconds (the run itself lasts
    #: until the last outstanding request resolves)
    duration_s: float = 2.0
    #: share of arrivals aimed at the hot query — the coalescable mass
    duplicate_fraction: float = 0.5
    #: share of arrivals classed ``batch`` (the rest ``interactive``)
    batch_fraction: float = 0.0
    #: per-request deadline (None = none); expired requests shed or
    #: degrade instead of queueing forever
    deadline_ms: Optional[float] = None
    #: RNG seed — the schedule is fully deterministic given the config
    seed: int = 0

    def __post_init__(self):
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        for name in ("duplicate_fraction", "batch_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


def _schedule(
    config: OpenLoopConfig, n_queries: int
) -> list[tuple[float, int, str]]:
    """The precomputed arrival list: (offset_s, query_index, priority).

    Query index 0 is the hot (duplicate) target; the rest of the
    catalog is drawn uniformly. Precomputing keeps the stream identical
    across the coalescing-on and coalescing-off arms of an A/B run."""
    rng = random.Random(config.seed)
    arrivals: list[tuple[float, int, str]] = []
    t = rng.expovariate(config.arrival_rate)
    while t < config.duration_s:
        if n_queries > 1 and rng.random() >= config.duplicate_fraction:
            index = rng.randrange(1, n_queries)
        else:
            index = 0
        priority = (
            PRIORITY_BATCH
            if rng.random() < config.batch_fraction
            else PRIORITY_INTERACTIVE
        )
        arrivals.append((t, index, priority))
        t += rng.expovariate(config.arrival_rate)
    return arrivals


def _counter_total(registry, name: str) -> float:
    """Sum of one counter family across label sets."""
    total = 0.0
    for key, value in registry.snapshot()["counters"].items():
        if key == name or key.startswith(name + "{"):
            total += value
    return total


async def run_open_loop(
    frontdoor: AsyncFrontDoor,
    queries: Sequence[str],
    config: OpenLoopConfig,
) -> dict:
    """Offer the configured Poisson stream to *frontdoor*; returns the
    results payload once every arrival has resolved."""
    if not queries:
        raise ValueError("run_open_loop needs at least one query")
    loop = asyncio.get_running_loop()
    arrivals = _schedule(config, len(queries))
    registry = frontdoor.metrics.registry
    coalesced_before = _counter_total(
        registry, "precis_frontdoor_coalesced_total"
    )

    records: list[tuple[str, str, float]] = []  # (priority, outcome, s)

    async def one(query: str, priority: str) -> None:
        t0 = loop.time()
        try:
            answer = await frontdoor.submit(
                query,
                timeout_s=(
                    config.deadline_ms / 1000.0
                    if config.deadline_ms is not None
                    else None
                ),
                priority=priority,
            )
        except StaleRequest:
            records.append((priority, "shed_stale", loop.time() - t0))
        except QueueFull:
            records.append((priority, "shed_full", loop.time() - t0))
        except TenantQuotaExceeded:
            records.append((priority, "shed_tenant_quota", loop.time() - t0))
        except ServiceClosed:
            records.append((priority, "shed_closed", loop.time() - t0))
        except Exception:  # noqa: BLE001 — tallied, not propagated
            records.append((priority, "failed", loop.time() - t0))
        else:
            records.append(
                (
                    priority,
                    "degraded" if answer.degraded else "answered",
                    loop.time() - t0,
                )
            )

    start = loop.time()
    tasks: list[asyncio.Task] = []
    for offset, index, priority in arrivals:
        delay = (start + offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        # fire and move on: an open loop never waits for completions
        tasks.append(
            loop.create_task(one(queries[index], priority))
        )
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = max(loop.time() - start, 1e-9)

    followers = (
        _counter_total(registry, "precis_frontdoor_coalesced_total")
        - coalesced_before
    )
    offered = len(arrivals)
    outcomes = {
        key: 0
        for key in (
            "answered",
            "degraded",
            "shed_stale",
            "shed_full",
            "shed_tenant_quota",
            "shed_closed",
            "failed",
        )
    }
    per_class: dict[str, dict] = {}
    latencies: dict[str, list[float]] = {}
    for priority, outcome, seconds in records:
        outcomes[outcome] += 1
        bucket = per_class.setdefault(
            priority,
            {"offered": 0, "answered": 0, "degraded": 0, "shed": 0,
             "failed": 0},
        )
        bucket["offered"] += 1
        if outcome in ("answered", "degraded"):
            bucket["answered"] += 1
            if outcome == "degraded":
                bucket["degraded"] += 1
            latencies.setdefault(priority, []).append(seconds)
        elif outcome == "failed":
            bucket["failed"] += 1
        else:
            bucket["shed"] += 1
    for priority, values in latencies.items():
        per_class[priority]["latency_ms"] = {
            "p50": percentile(values, 50) * 1e3,
            "p95": percentile(values, 95) * 1e3,
            "p99": percentile(values, 99) * 1e3,
            "max": max(values) * 1e3,
        }
    shed = sum(v for k, v in outcomes.items() if k.startswith("shed_"))
    return {
        "arrival_rate": config.arrival_rate,
        "duration_s": config.duration_s,
        "duplicate_fraction": config.duplicate_fraction,
        "batch_fraction": config.batch_fraction,
        "deadline_ms": config.deadline_ms,
        "seed": config.seed,
        "offered": offered,
        "elapsed_s": elapsed,
        "coalesce": frontdoor.config.coalesce,
        "outcomes": outcomes,
        # user-visible answers per second of makespan, partials excluded
        "goodput_rps": outcomes["answered"] / elapsed,
        "shed_rate": shed / offered if offered else 0.0,
        "coalesce_hit_rate": followers / offered if offered else 0.0,
        "classes": per_class,
    }


def run_frontdoor_bench(
    engine: PrecisEngine,
    queries: Sequence[str],
    config: OpenLoopConfig,
    workers: int = 2,
    queue_depth: Optional[int] = None,
    max_pending: int = 256,
    compare_coalescing: bool = True,
    traces: Optional[TraceBuffer] = None,
) -> dict:
    """The front-door experiment: one open-loop run with coalescing on
    and (optionally) an identical run against a fresh stack with
    coalescing off, so the gate can assert the goodput ratio. The
    arrival schedule is identical in both arms (same seed)."""

    def arm(coalesce: bool) -> dict:
        service = PrecisService(
            engine,
            config=ServiceConfig(
                workers=workers,
                queue_depth=queue_depth if queue_depth is not None else 64,
            ),
            traces=traces if coalesce else None,
        )

        async def run() -> dict:
            frontdoor = AsyncFrontDoor(
                service,
                FrontDoorConfig(max_pending=max_pending, coalesce=coalesce),
            )
            try:
                return await run_open_loop(frontdoor, queries, config)
            finally:
                await frontdoor.close()

        try:
            return asyncio.run(run())
        finally:
            service.close()

    started = time.perf_counter()
    payload: dict = {"workers": workers, "max_pending": max_pending}
    payload["coalesced"] = arm(coalesce=True)
    if compare_coalescing:
        payload["uncoalesced"] = arm(coalesce=False)
        baseline = payload["uncoalesced"]["goodput_rps"]
        payload["goodput_ratio"] = (
            payload["coalesced"]["goodput_rps"] / baseline
            if baseline > 0
            else float("inf")
        )
    payload["total_seconds"] = time.perf_counter() - started
    return payload
