"""The serving layer's exception vocabulary.

Admission-control refusals (:class:`QueueFull`, :class:`StaleRequest`,
:class:`ServiceClosed`) are *load-shedding signals*: the request never
ran, the caller may retry elsewhere or give up. :class:`RetryExhausted`
is different — the request ran, hit transient storage failures
(:class:`~repro.storage.TransientStorageError`), and the retry budget
ran out; the last underlying error rides along as ``__cause__`` and
:attr:`RetryExhausted.last_error`.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ServiceError",
    "ServiceClosed",
    "QueueFull",
    "StaleRequest",
    "TenantQuotaExceeded",
    "RetryExhausted",
]


class ServiceError(Exception):
    """Base class for every serving-layer failure."""


class ServiceClosed(ServiceError):
    """The service was shut down before (or while) the request was
    submitted; nothing ran."""


class QueueFull(ServiceError):
    """Shed on admission: the bounded queue was full (overload)."""

    def __init__(self, depth: int):
        super().__init__(f"admission queue full ({depth} waiting)")
        self.depth = depth


class StaleRequest(ServiceError):
    """Shed at dequeue: the request's deadline expired while it sat in
    the queue, so running it could only produce an empty degraded
    answer — cheaper to refuse outright."""

    def __init__(self, waited_s: float):
        super().__init__(
            f"deadline expired after {waited_s * 1000:.1f} ms in queue"
        )
        self.waited_s = waited_s


class TenantQuotaExceeded(ServiceError):
    """Shed on admission: this tenant already holds its fair share of
    in-flight requests (``ServiceConfig.tenant_slots``); other tenants'
    capacity is untouched. A per-tenant signal — the queue itself may
    be nearly empty."""

    def __init__(self, tenant: str, slots: int):
        super().__init__(
            f"tenant {tenant!r} already has {slots} request(s) in flight"
        )
        self.tenant = tenant
        self.slots = slots


class RetryExhausted(ServiceError):
    """Transient storage failures persisted past the retry budget."""

    def __init__(self, attempts: int, last_error: Optional[BaseException]):
        super().__init__(
            f"storage still failing after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error
