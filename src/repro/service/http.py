"""A minimal HTTP endpoint over the async front door.

Pure-stdlib asyncio (``asyncio.start_server`` + hand-rolled HTTP/1.1
parsing) so the repository serves over the wire without any web
framework; when :mod:`aiohttp` is available nothing here changes — the
front door is the integration surface, this module is just the thinnest
possible wire adapter over :meth:`AsyncFrontDoor.submit`.

Routes (all GET; responses are JSON unless noted):

``/ask``
    Answer one précis query. Parameters: ``q`` (required, the query
    text), ``priority`` (``interactive``/``batch``), ``tenant``,
    ``deadline_ms``, ``degree_weight``, ``degree_top``,
    ``degree_length``, ``per_relation``, ``total``, ``strategy``,
    ``translate`` (0/1). Shed outcomes map onto status codes: 408 for
    a stale (deadline-expired) request, 429 for queue-full and
    tenant-quota sheds, 503 once closed, 400 for malformed parameters,
    500 for execution failures — each with a JSON body naming the
    error class.
``/metrics``
    Prometheus text exposition of the shared registry (front door +
    serving layer + engines in one scrape).
``/healthz``
    Liveness: pending flight count and closed flag.
``/shutdown``
    Resolves :meth:`FrontDoorHTTP.serve_until_shutdown` — how tests
    and the ``repro serve`` CLI stop a server without signals.

One request per connection (``Connection: close``): the endpoint
exists for integration tests, the open-loop bench and manual poking,
not as a production web server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional
from urllib.parse import parse_qs, unquote, urlsplit

from ..core import (
    CompositeDegree,
    MaxPathLength,
    MaxTotalTuples,
    MaxTuplesPerRelation,
    CompositeCardinality,
    TopRProjections,
    WeightThreshold,
)
from ..core.deadline import Deadline
from .errors import (
    QueueFull,
    ServiceClosed,
    StaleRequest,
    TenantQuotaExceeded,
)
from .frontdoor import PRIORITY_BATCH, PRIORITY_INTERACTIVE, AsyncFrontDoor

__all__ = ["FrontDoorHTTP"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: shed exception -> HTTP status (failures not listed here are 500s)
_SHED_STATUS = {
    StaleRequest: 408,
    QueueFull: 429,
    TenantQuotaExceeded: 429,
    ServiceClosed: 503,
}


class _BadRequest(Exception):
    """A parameter the endpoint could not parse (maps to 400)."""


def _param(params: dict, name: str, cast, default=None):
    values = params.get(name)
    if not values:
        return default
    try:
        return cast(values[-1])
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"bad {name!r}: {values[-1]!r}") from exc


def _ask_kwargs(params: dict) -> dict[str, Any]:
    """Translate /ask query parameters into submit() keyword arguments
    (mirrors the CLI's --degree-*/--per-relation/--total flags)."""
    kwargs: dict[str, Any] = {}
    degree = []
    weight = _param(params, "degree_weight", float)
    if weight is not None:
        degree.append(WeightThreshold(weight))
    top = _param(params, "degree_top", int)
    if top is not None:
        degree.append(TopRProjections(top))
    length = _param(params, "degree_length", int)
    if length is not None:
        degree.append(MaxPathLength(length))
    if degree:
        kwargs["degree"] = (
            degree[0] if len(degree) == 1 else CompositeDegree(*degree)
        )
    cardinality = []
    per_relation = _param(params, "per_relation", int)
    if per_relation is not None:
        cardinality.append(MaxTuplesPerRelation(per_relation))
    total = _param(params, "total", int)
    if total is not None:
        cardinality.append(MaxTotalTuples(total))
    if cardinality:
        kwargs["cardinality"] = (
            cardinality[0]
            if len(cardinality) == 1
            else CompositeCardinality(*cardinality)
        )
    strategy = _param(params, "strategy", str)
    if strategy is not None:
        kwargs["strategy"] = strategy
    translate = _param(params, "translate", int)
    if translate is not None:
        kwargs["translate"] = bool(translate)
    return kwargs


class FrontDoorHTTP:
    """Serve one :class:`AsyncFrontDoor` over HTTP.

    >>> http = FrontDoorHTTP(frontdoor, host="127.0.0.1", port=0)
    >>> await http.start()          # port 0 -> an ephemeral port
    >>> http.port                   # the bound port
    >>> await http.serve_until_shutdown()   # returns after /shutdown
    >>> await http.stop()

    Must run on the front door's event loop.
    """

    def __init__(
        self,
        frontdoor: AsyncFrontDoor,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.frontdoor = frontdoor
        self.host = host
        self.port = port
        self._server: Optional[asyncio.Server] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Block until a ``/shutdown`` request arrives (or
        :meth:`stop` is called)."""
        await self._shutdown.wait()

    async def stop(self) -> None:
        """Stop accepting and wake :meth:`serve_until_shutdown`.
        Does not close the front door — the owner does that."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FrontDoorHTTP":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ---------------------------------------------------------- plumbing

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, target, _version = (
                    request_line.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                await self._respond(
                    writer, 400, {"error": "malformed request line"}
                )
                return
            # drain headers (unused: no bodies, no keep-alive)
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if method not in ("GET", "POST"):
                await self._respond(
                    writer, 405, {"error": f"method {method} not allowed"}
                )
                return
            status, body, content_type = await self._route(target)
            await self._respond(writer, status, body, content_type)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, target: str):
        """Dispatch one request target; returns (status, body, type)."""
        parts = urlsplit(target)
        path = unquote(parts.path)
        params = parse_qs(parts.query)
        if path == "/healthz":
            return (
                200,
                {
                    "status": "ok",
                    "pending": self.frontdoor.pending(),
                    "closed": self.frontdoor.closed,
                },
                "application/json",
            )
        if path == "/metrics":
            return 200, self.frontdoor.metrics.prometheus(), "text/plain"
        if path == "/shutdown":
            self._shutdown.set()
            return 200, {"status": "shutting down"}, "application/json"
        if path == "/ask":
            return await self._ask(params)
        return 404, {"error": f"no route {path!r}"}, "application/json"

    async def _ask(self, params: dict):
        query = _param(params, "q", str)
        if query is None:
            return 400, {"error": "missing required parameter 'q'"}, (
                "application/json"
            )
        try:
            priority = _param(params, "priority", str, PRIORITY_INTERACTIVE)
            if priority not in (PRIORITY_INTERACTIVE, PRIORITY_BATCH):
                raise _BadRequest(f"bad 'priority': {priority!r}")
            tenant = _param(params, "tenant", str)
            deadline_ms = _param(params, "deadline_ms", float)
            kwargs = _ask_kwargs(params)
        except _BadRequest as exc:
            return 400, {"error": str(exc)}, "application/json"
        deadline = (
            Deadline.after(deadline_ms / 1000.0)
            if deadline_ms is not None
            else None
        )
        try:
            answer = await self.frontdoor.submit(
                query,
                deadline=deadline,
                tenant=tenant,
                priority=priority,
                **kwargs,
            )
        except tuple(_SHED_STATUS) as exc:
            status = next(
                code
                for cls, code in _SHED_STATUS.items()
                if isinstance(exc, cls)
            )
            return (
                status,
                {"error": type(exc).__name__, "detail": str(exc)},
                "application/json",
            )
        except (TypeError, ValueError) as exc:
            # bad ask arguments surface from the engine as TypeError /
            # ValueError — the caller's fault, not the server's
            return (
                400,
                {"error": type(exc).__name__, "detail": str(exc)},
                "application/json",
            )
        except Exception as exc:  # noqa: BLE001 — wire boundary
            return (
                500,
                {"error": type(exc).__name__, "detail": str(exc)},
                "application/json",
            )
        return 200, answer.to_dict(), "application/json"

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(body, (dict, list)):
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
        elif isinstance(body, str):
            payload = body.encode("utf-8")
        else:
            payload = bytes(body)
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    def __repr__(self):
        bound = f"{self.host}:{self.port}" if self._server else "unbound"
        return f"FrontDoorHTTP({bound})"
