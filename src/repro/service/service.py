"""The concurrent serving layer: a thread pool around précis engines.

:class:`PrecisService` fronts one or more :class:`~repro.core.engine.
PrecisEngine` instances (typically replicas over the same database, or
shards) with a bounded admission queue and a fixed worker pool:

* **Admission control** — requests enter a ``queue.Queue`` of
  configurable depth. When the queue is full the request is *shed*
  immediately (:class:`~repro.service.errors.QueueFull`) rather than
  piling latency onto everyone behind it; set
  ``ServiceConfig(shed_on_full=False)`` to block instead.
* **Deadlines** — each request carries a
  :class:`~repro.core.deadline.Deadline` (explicit, per-call
  ``timeout_s``, or the config default). The deadline is threaded into
  :meth:`~repro.core.engine.PrecisEngine.ask`, which degrades
  cooperatively (partial answer flagged ``degraded``) instead of
  raising. A request whose deadline expires while still *queued* is
  shed at dequeue (:class:`~repro.service.errors.StaleRequest`) when
  ``shed_stale`` is on — running it could only return an empty shell.
* **Retry** — transient storage failures
  (:class:`~repro.storage.TransientStorageError`) retry with
  exponential backoff per :class:`~repro.service.retry.RetryPolicy`;
  exhaustion surfaces as
  :class:`~repro.service.errors.RetryExhausted`.
* **Metrics** — queue-depth gauge, shed/timeout/degraded counters and
  queue-wait/service-time histograms via
  :class:`~repro.obs.metrics.ServiceMetrics`; pass a shared
  :class:`~repro.obs.MetricsRegistry` to co-export with the engines'
  own series.

Responses are :class:`concurrent.futures.Future` objects — callers may
block (:meth:`PrecisService.ask`), poll, or fan out.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..core.deadline import NO_DEADLINE, Deadline
from ..core.engine import PrecisEngine
from ..obs.metrics import MetricsRegistry, ServiceMetrics
from ..storage import PermanentStorageError
from .errors import (
    QueueFull,
    RetryExhausted,
    ServiceClosed,
    StaleRequest,
    TenantQuotaExceeded,
)
from .retry import RetryPolicy, call_with_retry

__all__ = ["ServiceConfig", "PrecisService"]

#: queue sentinel telling one worker to exit
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`PrecisService`."""

    #: worker threads; default one per engine
    workers: Optional[int] = None
    #: bounded admission-queue depth
    queue_depth: int = 64
    #: deadline given to requests that carry none (seconds; None = no
    #: default deadline)
    default_timeout_s: Optional[float] = None
    #: shed (QueueFull) rather than block when the queue is full
    shed_on_full: bool = True
    #: shed (StaleRequest) requests whose deadline expired while queued
    shed_stale: bool = True
    #: backoff policy for transient storage failures
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: fair-share admission: max in-flight (queued + executing) requests
    #: per tenant; None disables per-tenant quotas. Requests submitted
    #: without a tenant are never quota-limited.
    tenant_slots: Optional[int] = None

    def __post_init__(self):
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.tenant_slots is not None and self.tenant_slots < 1:
            raise ValueError("tenant_slots must be at least 1")


class _Request:
    __slots__ = (
        "query", "kwargs", "deadline", "future", "enqueued_at", "tenant"
    )

    def __init__(self, query, kwargs, deadline, future, enqueued_at, tenant):
        self.query = query
        self.kwargs = kwargs
        self.deadline = deadline
        self.future = future
        self.enqueued_at = enqueued_at
        self.tenant = tenant


class PrecisService:
    """A thread-pooled, deadline-aware front end over précis engines."""

    def __init__(
        self,
        engines: Union[PrecisEngine, Sequence[PrecisEngine]],
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if isinstance(engines, PrecisEngine):
            engines = [engines]
        if not engines:
            raise ValueError("PrecisService needs at least one engine")
        self.engines = list(engines)
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics(registry)
        self._queue: queue.Queue = queue.Queue(self.config.queue_depth)
        self._closed = False
        self._close_lock = threading.Lock()
        self._tenant_lock = threading.Lock()
        self._tenant_inflight: dict[str, int] = {}
        n_workers = self.config.workers or len(self.engines)
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(self.engines[i % len(self.engines)],),
                name=f"precis-worker-{i}",
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------- submit

    def submit(
        self,
        query,
        deadline: Optional[Deadline] = None,
        timeout_s: Optional[float] = None,
        tenant: Optional[str] = None,
        **ask_kwargs: Any,
    ) -> "Future":
        """Enqueue one ask; returns the :class:`Future` of its answer.

        Deadline resolution: explicit *deadline* > *timeout_s* >
        ``config.default_timeout_s`` > none. Extra keyword arguments go
        straight to :meth:`~repro.core.engine.PrecisEngine.ask`
        (constraints, strategy, profile, ...).

        *tenant* labels the request for per-tenant metrics and, when
        ``config.tenant_slots`` is set, counts against that tenant's
        fair-share in-flight quota
        (:class:`~repro.service.errors.TenantQuotaExceeded`).

        Raises :class:`ServiceClosed` after :meth:`close`, and
        :class:`QueueFull` when the admission queue is full under the
        shed-on-full policy.
        """
        if self._closed:
            self.metrics.shed("closed", tenant=tenant)
            raise ServiceClosed("service is closed")
        if deadline is None:
            seconds = (
                timeout_s
                if timeout_s is not None
                else self.config.default_timeout_s
            )
            deadline = (
                Deadline.after(seconds) if seconds is not None else NO_DEADLINE
            )
        self._acquire_tenant_slot(tenant)
        future: Future = Future()
        request = _Request(
            query, ask_kwargs, deadline, future, time.monotonic(), tenant
        )
        if self.config.shed_on_full:
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self._release_tenant_slot(tenant)
                self.metrics.shed("full", tenant=tenant)
                raise QueueFull(self.config.queue_depth) from None
        else:
            self._queue.put(request)
        self.metrics.admitted(tenant=tenant)
        return future

    def _acquire_tenant_slot(self, tenant: Optional[str]) -> None:
        if tenant is None or self.config.tenant_slots is None:
            return
        with self._tenant_lock:
            held = self._tenant_inflight.get(tenant, 0)
            if held >= self.config.tenant_slots:
                self.metrics.shed("tenant_quota", tenant=tenant)
                raise TenantQuotaExceeded(tenant, held)
            self._tenant_inflight[tenant] = held + 1

    def _release_tenant_slot(self, tenant: Optional[str]) -> None:
        if tenant is None or self.config.tenant_slots is None:
            return
        with self._tenant_lock:
            held = self._tenant_inflight.get(tenant, 0)
            if held <= 1:
                self._tenant_inflight.pop(tenant, None)
            else:
                self._tenant_inflight[tenant] = held - 1

    def tenant_inflight(self, tenant: str) -> int:
        """In-flight (queued + executing) request count of one tenant."""
        with self._tenant_lock:
            return self._tenant_inflight.get(tenant, 0)

    def ask(self, query, **kwargs: Any):
        """Synchronous :meth:`submit` — blocks for the answer."""
        return self.submit(query, **kwargs).result()

    # ------------------------------------------------------------- workers

    def _worker(self, engine: PrecisEngine) -> None:
        while True:
            request = self._queue.get()
            if request is _SHUTDOWN:
                return
            self._serve(engine, request)

    def _serve(self, engine: PrecisEngine, request: _Request) -> None:
        metrics = self.metrics
        waited = time.monotonic() - request.enqueued_at
        try:
            metrics.queue_wait(waited)
            if not request.future.set_running_or_notify_cancel():
                return  # cancelled while queued
            if (
                self.config.shed_stale
                and request.deadline.expires()
                and request.deadline.expired()
            ):
                metrics.shed("stale", tenant=request.tenant)
                metrics.timeout()
                request.future.set_exception(StaleRequest(waited))
                return
            try:
                answer = call_with_retry(
                    lambda: engine.ask(
                        request.query,
                        deadline=request.deadline,
                        **request.kwargs,
                    ),
                    self.config.retry,
                    on_retry=lambda attempt, exc: metrics.retried(),
                )
            except RetryExhausted as exc:
                metrics.retries_exhausted()
                metrics.failed("transient")
                request.future.set_exception(exc)
            except PermanentStorageError as exc:
                metrics.failed("permanent")
                request.future.set_exception(exc)
            except BaseException as exc:  # noqa: BLE001 — futures carry it
                metrics.failed(type(exc).__name__)
                request.future.set_exception(exc)
            else:
                if answer.degraded:
                    metrics.degraded(
                        answer.degraded_stage or "unknown",
                        tenant=request.tenant,
                    )
                    metrics.timeout()
                metrics.service_time(
                    time.monotonic() - request.enqueued_at,
                    tenant=request.tenant,
                )
                request.future.set_result(answer)
        finally:
            self._release_tenant_slot(request.tenant)
            metrics.finished()

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def queue_depth(self) -> float:
        """Current value of the queue-depth gauge (admitted, unanswered)."""
        return self.metrics.queue_depth.value

    def close(self, wait: bool = True) -> None:
        """Stop admitting; drain queued requests; join the workers.

        Requests already admitted are served to completion (their
        futures resolve normally). Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()
            # a submit racing close may have landed behind a sentinel:
            # fail it rather than strand its future
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                if request is _SHUTDOWN:
                    continue
                self._release_tenant_slot(request.tenant)
                self.metrics.shed("closed", tenant=request.tenant)
                self.metrics.finished()
                request.future.set_exception(
                    ServiceClosed("service closed before the request ran")
                )

    def __enter__(self) -> "PrecisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self):
        return (
            f"PrecisService({len(self.engines)} engine(s), "
            f"{len(self._threads)} worker(s), "
            f"depth={self.config.queue_depth}"
            f"{', closed' if self._closed else ''})"
        )
