"""The concurrent serving layer: a thread pool around précis engines.

:class:`PrecisService` fronts one or more :class:`~repro.core.engine.
PrecisEngine` instances (typically replicas over the same database, or
shards) with a bounded admission queue and a fixed worker pool:

* **Admission control** — requests enter a ``queue.Queue`` of
  configurable depth. When the queue is full the request is *shed*
  immediately (:class:`~repro.service.errors.QueueFull`) rather than
  piling latency onto everyone behind it; set
  ``ServiceConfig(shed_on_full=False)`` to block instead.
* **Deadlines** — each request carries a
  :class:`~repro.core.deadline.Deadline` (explicit, per-call
  ``timeout_s``, or the config default). The deadline is threaded into
  :meth:`~repro.core.engine.PrecisEngine.ask`, which degrades
  cooperatively (partial answer flagged ``degraded``) instead of
  raising. A request whose deadline expires while still *queued* is
  shed at dequeue (:class:`~repro.service.errors.StaleRequest`) when
  ``shed_stale`` is on — running it could only return an empty shell.
* **Retry** — transient storage failures
  (:class:`~repro.storage.TransientStorageError`) retry with
  exponential backoff per :class:`~repro.service.retry.RetryPolicy`;
  exhaustion surfaces as
  :class:`~repro.service.errors.RetryExhausted`.
* **Metrics** — queue-depth gauge, shed/timeout/degraded counters and
  queue-wait/service-time histograms via
  :class:`~repro.obs.metrics.ServiceMetrics`; pass a shared
  :class:`~repro.obs.MetricsRegistry` to co-export with the engines'
  own series.
* **Tracing** — pass a :class:`~repro.obs.context.TraceBuffer` as
  ``traces=`` and every request is traced end to end:
  :meth:`PrecisService.submit` mints a
  :class:`~repro.obs.context.TraceContext` (trace id, tenant, priority,
  deadline budget) that rides the queued request into the worker
  thread, where it is activated into the ambient context
  (:func:`repro.obs.context.activate`) so the engine, the metrics
  exemplars and the slow-query log all see the same id. The worker
  builds one span tree per request — ``request`` → ``queue`` → retry
  attempts → the engine's ``ask`` tree down to storage — and offers it
  to the buffer *before* resolving the future, so a caller that holds
  the answer can already find its trace. Shed requests (queue full,
  stale, quota, closed) get synthetic traces and, like degraded,
  failed and retried ones, bypass sampling — tail-biased capture.
  Without ``traces=`` none of this machinery runs.

Responses are :class:`concurrent.futures.Future` objects — callers may
block (:meth:`PrecisService.ask`), poll, or fan out.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..core.deadline import NO_DEADLINE, Deadline
from ..core.engine import PrecisEngine
from ..obs.context import (
    RequestTrace,
    TraceBuffer,
    TraceContext,
    activate,
    deactivate,
    synthetic_span,
)
from ..obs.metrics import MetricsRegistry, ServiceMetrics
from ..obs.tracer import Tracer
from ..storage import PermanentStorageError
from .errors import (
    QueueFull,
    RetryExhausted,
    ServiceClosed,
    StaleRequest,
    TenantQuotaExceeded,
)
from .retry import RetryPolicy, call_with_retry

__all__ = ["ServiceConfig", "PrecisService"]

#: queue sentinel telling one worker to exit
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`PrecisService`."""

    #: worker threads; default one per engine
    workers: Optional[int] = None
    #: bounded admission-queue depth
    queue_depth: int = 64
    #: deadline given to requests that carry none (seconds; None = no
    #: default deadline)
    default_timeout_s: Optional[float] = None
    #: shed (QueueFull) rather than block when the queue is full
    shed_on_full: bool = True
    #: shed (StaleRequest) requests whose deadline expired while queued
    shed_stale: bool = True
    #: backoff policy for transient storage failures
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: fair-share admission: max in-flight (queued + executing) requests
    #: per tenant; None disables per-tenant quotas. Requests submitted
    #: without a tenant are never quota-limited.
    tenant_slots: Optional[int] = None

    def __post_init__(self):
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.tenant_slots is not None and self.tenant_slots < 1:
            raise ValueError("tenant_slots must be at least 1")


class _Request:
    __slots__ = (
        "query", "kwargs", "deadline", "future", "enqueued_at", "tenant",
        "context",
    )

    def __init__(
        self, query, kwargs, deadline, future, enqueued_at, tenant,
        context=None,
    ):
        self.query = query
        self.kwargs = kwargs
        self.deadline = deadline
        self.future = future
        self.enqueued_at = enqueued_at
        self.tenant = tenant
        #: TraceContext when the service carries a TraceBuffer, else None
        self.context = context


class PrecisService:
    """A thread-pooled, deadline-aware front end over précis engines."""

    def __init__(
        self,
        engines: Union[PrecisEngine, Sequence[PrecisEngine]],
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        traces: Optional[TraceBuffer] = None,
    ):
        if isinstance(engines, PrecisEngine):
            engines = [engines]
        if not engines:
            raise ValueError("PrecisService needs at least one engine")
        self.engines = list(engines)
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics(registry)
        #: request-trace capture (repro.obs.context); None = untraced
        self.traces = traces
        self._queue: queue.Queue = queue.Queue(self.config.queue_depth)
        self._closed = False
        self._close_lock = threading.Lock()
        self._tenant_lock = threading.Lock()
        self._tenant_inflight: dict[str, int] = {}
        n_workers = self.config.workers or len(self.engines)
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(self.engines[i % len(self.engines)],),
                name=f"precis-worker-{i}",
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------- submit

    def submit(
        self,
        query,
        deadline: Optional[Deadline] = None,
        timeout_s: Optional[float] = None,
        tenant: Optional[str] = None,
        priority: str = "interactive",
        context: Optional[TraceContext] = None,
        **ask_kwargs: Any,
    ) -> "Future":
        """Enqueue one ask; returns the :class:`Future` of its answer.

        Deadline resolution: explicit *deadline* > *timeout_s* >
        ``config.default_timeout_s`` > none. Extra keyword arguments go
        straight to :meth:`~repro.core.engine.PrecisEngine.ask`
        (constraints, strategy, profile, ...).

        *tenant* labels the request for per-tenant metrics and, when
        ``config.tenant_slots`` is set, counts against that tenant's
        fair-share in-flight quota
        (:class:`~repro.service.errors.TenantQuotaExceeded`).

        *priority* is a label carried on the request's trace context
        (``"interactive"`` / ``"batch"``). This layer's FIFO admission
        does not act on it — priority scheduling lives in the async
        front door (:mod:`repro.service.frontdoor`), which orders its
        own queue and dispatches here one request per idle worker.

        *context* is a pre-minted :class:`~repro.obs.context.
        TraceContext` to adopt instead of minting one — the front door
        passes the context it created at its own admission time, so
        the request's trace spans the full journey (front-door queue
        included) under one id.

        When the service carries a :class:`~repro.obs.context.
        TraceBuffer`, this call mints the request's
        :class:`~repro.obs.context.TraceContext` — every outcome,
        including every shed path below, leaves a trace.

        Raises :class:`ServiceClosed` after :meth:`close`, and
        :class:`QueueFull` when the admission queue is full under the
        shed-on-full policy.
        """
        if self.traces is None:
            context = None
        elif context is None:
            context = TraceContext.mint(
                query=getattr(query, "text", None) or str(query),
                tenant=tenant,
                priority=priority,
            )
        if self._closed:
            self.metrics.shed("closed", tenant=tenant)
            self._record_shed(context, "closed")
            raise ServiceClosed("service is closed")
        if deadline is None:
            seconds = (
                timeout_s
                if timeout_s is not None
                else self.config.default_timeout_s
            )
            deadline = (
                Deadline.after(seconds) if seconds is not None else NO_DEADLINE
            )
        if context is not None and deadline.expires():
            context.deadline_s = deadline.remaining()
        try:
            self._acquire_tenant_slot(tenant)
        except TenantQuotaExceeded:
            self._record_shed(context, "tenant_quota")
            raise
        future: Future = Future()
        request = _Request(
            query, ask_kwargs, deadline, future, time.monotonic(), tenant,
            context,
        )
        if self.config.shed_on_full:
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                self._release_tenant_slot(tenant)
                self.metrics.shed("full", tenant=tenant)
                self._record_shed(context, "full")
                raise QueueFull(self.config.queue_depth) from None
        else:
            self._queue.put(request)
        self.metrics.admitted(tenant=tenant)
        return future

    def _acquire_tenant_slot(self, tenant: Optional[str]) -> None:
        if tenant is None or self.config.tenant_slots is None:
            return
        with self._tenant_lock:
            held = self._tenant_inflight.get(tenant, 0)
            if held >= self.config.tenant_slots:
                self.metrics.shed("tenant_quota", tenant=tenant)
                raise TenantQuotaExceeded(tenant, held)
            self._tenant_inflight[tenant] = held + 1

    def _release_tenant_slot(self, tenant: Optional[str]) -> None:
        if tenant is None or self.config.tenant_slots is None:
            return
        with self._tenant_lock:
            held = self._tenant_inflight.get(tenant, 0)
            if held <= 1:
                self._tenant_inflight.pop(tenant, None)
            else:
                self._tenant_inflight[tenant] = held - 1

    def tenant_inflight(self, tenant: str) -> int:
        """In-flight (queued + executing) request count of one tenant."""
        with self._tenant_lock:
            return self._tenant_inflight.get(tenant, 0)

    def ask(self, query, **kwargs: Any):
        """Synchronous :meth:`submit` — blocks for the answer."""
        return self.submit(query, **kwargs).result()

    # ------------------------------------------------------------- tracing

    def _record_shed(
        self,
        context: Optional[TraceContext],
        reason: str,
        waited: Optional[float] = None,
    ) -> None:
        """A synthetic trace for a request refused without running —
        shed outcomes always trigger buffer admission, so under
        overload the buffer fills with exactly the requests that were
        turned away."""
        if context is None or self.traces is None:
            return
        duration = max(time.perf_counter() - context.submitted_mono, 0.0)
        root = synthetic_span("request", context.submitted_wall, duration)
        if waited is not None:
            # the request spent its whole life queued before the shed
            root.children.append(
                synthetic_span(
                    "queue", context.submitted_wall, min(waited, duration)
                )
            )
        root.children.append(
            synthetic_span(
                "shed",
                context.submitted_wall + duration,
                0.0,
                mono_start=duration,
            )
        )
        self.traces.offer(
            RequestTrace(
                context=context,
                root=root,
                outcome=f"shed_{reason}",
                duration_s=duration,
                queue_wait_s=waited if waited is not None else 0.0,
                worker=threading.current_thread().name,
            )
        )

    # ------------------------------------------------------------- workers

    def _worker(self, engine: PrecisEngine) -> None:
        # One sinkless tracer for the whole worker lifetime: its span
        # stack is thread-local and empties between requests, and a
        # fresh Tracer per request would allocate a threading.local
        # each time — cyclic garbage whose collection costs real
        # throughput on the hot path.
        tracer = Tracer() if self.traces is not None else None
        while True:
            request = self._queue.get()
            if request is _SHUTDOWN:
                return
            self._serve(engine, request, tracer)

    def _serve(
        self,
        engine: PrecisEngine,
        request: _Request,
        tracer: Optional[Tracer] = None,
    ) -> None:
        metrics = self.metrics
        context = request.context
        waited = time.monotonic() - request.enqueued_at
        # Activate the request context for the whole serve: the engine,
        # the metrics exemplars and the slow-query log read the trace
        # id from the ambient contextvar — no per-call plumbing.
        token = activate(context) if context is not None else None
        # The worker's sinkless tracer: we hold the root span directly,
        # and the engine's ask tree nests under it via the thread-local
        # span stack when we pass the tracer down.
        if context is None:
            tracer = None
        try:
            metrics.queue_wait(waited)
            if not request.future.set_running_or_notify_cancel():
                return  # cancelled while queued
            if (
                self.config.shed_stale
                and request.deadline.expires()
                and request.deadline.expired()
            ):
                metrics.shed("stale", tenant=request.tenant)
                metrics.timeout()
                self._record_shed(context, "stale", waited=waited)
                request.future.set_exception(StaleRequest(waited))
                return

            retries = 0

            def on_retry(attempt: int, exc: BaseException) -> None:
                nonlocal retries
                retries += 1
                metrics.retried()
                if tracer is not None:
                    # a zero-width event span between attempts: the
                    # trace shows ask (failed) → retry → ask (again)
                    with tracer.span("retry") as span:
                        span.counters["attempt"] = attempt
                        span.counters[type(exc).__name__] = 1

            ask_kwargs = dict(request.kwargs)
            if tracer is not None and "tracer" not in ask_kwargs:
                ask_kwargs["tracer"] = tracer

            answer = None
            failure: Optional[BaseException] = None
            span_cm = (
                tracer.span("request") if tracer is not None else None
            )
            root = span_cm.__enter__() if span_cm is not None else None
            try:
                answer = call_with_retry(
                    lambda: engine.ask(
                        request.query,
                        deadline=request.deadline,
                        **ask_kwargs,
                    ),
                    self.config.retry,
                    on_retry=on_retry,
                )
            except RetryExhausted as exc:
                metrics.retries_exhausted()
                metrics.failed("transient")
                failure = exc
            except PermanentStorageError as exc:
                metrics.failed("permanent")
                failure = exc
            except BaseException as exc:  # noqa: BLE001 — futures carry it
                metrics.failed(type(exc).__name__)
                failure = exc
            finally:
                if span_cm is not None:
                    span_cm.__exit__(None, None, None)

            if failure is None:
                if answer.degraded:
                    metrics.degraded(
                        answer.degraded_stage or "unknown",
                        tenant=request.tenant,
                    )
                    metrics.timeout()
                metrics.service_time(
                    time.monotonic() - request.enqueued_at,
                    tenant=request.tenant,
                )

            if context is not None:
                self._offer_trace(
                    context, root, waited, retries, answer, failure
                )
            if failure is not None:
                request.future.set_exception(failure)
            else:
                request.future.set_result(answer)
        finally:
            if token is not None:
                deactivate(token)
            self._release_tenant_slot(request.tenant)
            metrics.finished()

    def _offer_trace(
        self,
        context: TraceContext,
        root,
        waited: float,
        retries: int,
        answer,
        failure: Optional[BaseException],
    ) -> None:
        """Finish the request's span tree and offer it to the buffer.

        The ``request`` root opened post-dequeue is retro-extended to
        the submit instant and given a synthetic ``queue`` child, so
        the exported trace spans submit → queue → retries → engine →
        storage. Runs *before* the future resolves: a caller holding
        the answer can already find the trace."""
        if root is not None:
            executed_start = root._mono_start
            root.wall_start = context.submitted_wall
            root._mono_start = executed_start - waited
            queue_span = synthetic_span(
                "queue",
                context.submitted_wall,
                waited,
                mono_start=root._mono_start,
            )
            root.children.insert(0, queue_span)
        if failure is not None:
            outcome = "failed"
            degraded_stage = None
            error = type(failure).__name__
        elif answer is not None and answer.degraded:
            outcome = "degraded"
            degraded_stage = answer.degraded_stage
            error = None
        else:
            outcome = "answered"
            degraded_stage = None
            error = None
        self.traces.offer(
            RequestTrace(
                context=context,
                root=root,
                outcome=outcome,
                duration_s=root.duration_s if root is not None else 0.0,
                queue_wait_s=waited,
                retries=retries,
                degraded_stage=degraded_stage,
                error=error,
                worker=threading.current_thread().name,
            )
        )

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def workers(self) -> int:
        """Size of the worker pool (the front door's default dispatch
        concurrency: one in-flight request per worker keeps priority
        ordering in the front door's queue, not this FIFO one)."""
        return len(self._threads)

    def queue_depth(self) -> float:
        """Current value of the queue-depth gauge (admitted, unanswered)."""
        return self.metrics.queue_depth.value

    def close(self, wait: bool = True) -> None:
        """Stop admitting; drain queued requests; join the workers.

        Requests already admitted are served to completion (their
        futures resolve normally). Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()
            # a submit racing close may have landed behind a sentinel:
            # fail it rather than strand its future
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                if request is _SHUTDOWN:
                    continue
                self._release_tenant_slot(request.tenant)
                self.metrics.shed("closed", tenant=request.tenant)
                self.metrics.finished()
                self._record_shed(
                    request.context,
                    "closed",
                    waited=time.monotonic() - request.enqueued_at,
                )
                request.future.set_exception(
                    ServiceClosed("service closed before the request ran")
                )

    def __enter__(self) -> "PrecisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self):
        return (
            f"PrecisService({len(self.engines)} engine(s), "
            f"{len(self._threads)} worker(s), "
            f"depth={self.config.queue_depth}"
            f"{', closed' if self._closed else ''})"
        )
