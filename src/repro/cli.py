"""Command-line interface: précis queries over CSV-backed databases.

Usage (after ``python setup.py develop``)::

    python -m repro init-demo ./demo          # the paper's movies DB
    python -m repro schema ./demo             # DDL + statistics
    python -m repro query ./demo '"Woody Allen"' --degree-weight 0.9 \
        --per-relation 3 --narrative
    python -m repro explain ./demo '"Woody Allen"' --degree-weight 0.9
    python -m repro query ./demo Allen --explain \
        --metrics-out metrics.json --slow-query-ms 0

A database directory is what ``repro.relational.csvio`` writes: one CSV
per relation plus ``_schema.json``, and optionally ``_graph.json`` (a
weighted schema graph with heading attributes, written by
``init-demo`` or :func:`repro.graph.serialization.save_graph`). Without
``_graph.json`` the graph is derived from the foreign keys at uniform
weights.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core import (
    CompositeCardinality,
    CompositeDegree,
    MaxPathLength,
    MaxTotalTuples,
    MaxTuplesPerRelation,
    PrecisEngine,
    TopRProjections,
    WeightThreshold,
    answer_ddl,
    emitted_queries,
    render_plan,
    render_stats,
)
from .core.explain import render_explanation
from .graph import graph_from_schema, result_schema_to_dot
from .graph.serialization import load_graph, save_graph
from .nlg import Translator, generic_spec
from .obs import InMemorySink, Tracer, format_span_table, write_metrics
from .cache import CacheConfig
from .relational import create_schema_sql, database_summary
from .relational.csvio import load_database, save_database
from .storage import BACKEND_NAMES, resolve_backend

__all__ = ["main", "build_parser"]

_GRAPH_FILE = "_graph.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Précis queries over relational databases (ICDE 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "init-demo", help="write the paper's movies database to a directory"
    )
    demo.add_argument("directory")
    demo.add_argument(
        "--movies",
        type=int,
        default=0,
        help="generate a synthetic instance of N movies instead of the "
        "paper's micro-instance",
    )
    demo.add_argument("--seed", type=int, default=0)

    schema = sub.add_parser(
        "schema", help="print DDL and statistics of a database directory"
    )
    schema.add_argument("directory")

    for name, help_text in (
        ("query", "answer a précis query"),
        ("explain", "show the plan and SQL for a précis query"),
        ("estimate", "predict the answer size before generating it"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("directory")
        cmd.add_argument("query", help='free-form tokens, e.g. \'"Woody Allen"\'')
        cmd.add_argument(
            "--degree-weight",
            type=float,
            help="keep projections with path weight >= W",
        )
        cmd.add_argument(
            "--degree-top", type=int, help="keep at most R projected attributes"
        )
        cmd.add_argument(
            "--degree-length", type=int, help="keep paths of length <= L"
        )
        cmd.add_argument(
            "--per-relation", type=int, help="at most N tuples per relation"
        )
        cmd.add_argument("--total", type=int, help="at most N tuples overall")
        cmd.add_argument(
            "--strategy",
            choices=["auto", "naive", "round_robin"],
            default="auto",
        )
        cmd.add_argument(
            "--stats",
            action="store_true",
            help="print the per-stage timing + counter table "
            "(repro.obs tracing)",
        )
        cmd.add_argument(
            "--cache",
            action="store_true",
            help="enable the versioned plan + answer caches (repro.cache); "
            "entries are invalidated automatically when the database, "
            "index or graph changes",
        )
        cmd.add_argument(
            "--cache-size",
            type=int,
            metavar="N",
            help="max entries per cache layer (implies --cache)",
        )
        cmd.add_argument(
            "--backend",
            choices=list(BACKEND_NAMES),
            default="memory",
            help="storage backend for the loaded database",
        )
        cmd.add_argument(
            "--db-path",
            metavar="FILE",
            help="SQLite database file (implies --backend sqlite); "
            "tables are rebuilt from the CSV directory on each run "
            "and left on disk for inspection",
        )
        cmd.add_argument(
            "--metrics-out",
            metavar="FILE",
            help="enable service metrics (repro.obs.metrics) and write "
            "a snapshot to FILE after the command ('-' for stdout)",
        )
        cmd.add_argument(
            "--metrics-format",
            choices=["json", "prometheus"],
            default="json",
            help="exporter for --metrics-out: JSON snapshot or "
            "Prometheus text exposition",
        )
        cmd.add_argument(
            "--slow-query-ms",
            type=float,
            metavar="N",
            help="keep asks slower than N ms in the slow-query log "
            "(part of the JSON metrics snapshot; implies metrics)",
        )
        cmd.add_argument(
            "--deadline-ms",
            type=float,
            metavar="N",
            help="cooperative time budget for the ask (repro.core."
            "deadline): on expiry the pipeline stops at the next "
            "iteration boundary and returns a valid partial answer "
            "flagged degraded (visible under --explain)",
        )
        if name == "estimate":
            cmd.add_argument(
                "--target-total",
                type=int,
                help="also suggest a per-relation cap for this total",
            )
        if name == "query":
            cmd.add_argument(
                "--narrative",
                action="store_true",
                help="print the natural-language synthesis",
            )
            cmd.add_argument(
                "--explain",
                action="store_true",
                help="print the provenance view: why each relation and "
                "tuple batch is in the précis and which constraint "
                "bounded it",
            )
            cmd.add_argument(
                "--dot",
                action="store_true",
                help="print the result schema as Graphviz DOT",
            )
            cmd.add_argument(
                "--save", metavar="DIR", help="export the answer database"
            )

    bench = sub.add_parser(
        "serve-bench",
        help="closed-loop concurrency benchmark of the serving layer "
        "(repro.service): N client threads over a thread-pooled "
        "PrecisService, reporting throughput, latency percentiles and "
        "shed/degraded counts",
    )
    bench.add_argument(
        "--movies",
        type=int,
        default=300,
        help="size of the synthetic movies workload database",
    )
    bench.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="memory",
        help="storage backend for the workload database",
    )
    bench.add_argument(
        "--clients", type=int, default=8, help="client threads (closed loop)"
    )
    bench.add_argument(
        "--requests", type=int, default=25, help="requests per client"
    )
    bench.add_argument(
        "--workers", type=int, default=2, help="service worker threads"
    )
    bench.add_argument(
        "--queue-depth", type=int, default=None, help="admission-queue bound"
    )
    bench.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline; expired requests degrade or are shed",
    )
    bench.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="switch to the OPEN-loop harness: Poisson arrivals at RPS "
        "offered through the async front door (repro.service.loadgen), "
        "reporting goodput, shed rate, coalescing hit rate and "
        "per-class latency; results merge under 'frontdoor' instead "
        "of 'serve'",
    )
    bench.add_argument(
        "--duration",
        type=float,
        default=2.0,
        metavar="S",
        help="open loop: length of the arrival schedule in seconds "
        "(default 2)",
    )
    bench.add_argument(
        "--duplicate-fraction",
        type=float,
        default=0.5,
        metavar="F",
        help="open loop: share of arrivals aimed at the hot query — "
        "the coalescable mass (default 0.5)",
    )
    bench.add_argument(
        "--batch-fraction",
        type=float,
        default=0.0,
        metavar="F",
        help="open loop: share of arrivals classed 'batch' (default 0)",
    )
    bench.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="open loop: front-door pending-flight bound (default 256)",
    )
    bench.add_argument(
        "--seed",
        type=int,
        default=0,
        help="open loop: arrival-schedule RNG seed (default 0)",
    )
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="open loop: skip the coalescing-off comparison arm",
    )
    bench.add_argument(
        "--json-out",
        default="BENCH_precis.json",
        metavar="FILE",
        help="merge the results into FILE under the 'serve' key "
        "('frontdoor' in open-loop mode; default: BENCH_precis.json; "
        "'-' disables)",
    )
    bench.add_argument(
        "--trace-out",
        metavar="FILE",
        help="capture per-request traces (repro.obs.context) and write "
        "them to FILE as JSON lines; render with 'repro trace export'",
    )
    bench.add_argument(
        "--trace-sample",
        type=float,
        default=0.1,
        metavar="RATE",
        help="head-sampling rate for normal traces (degraded/shed/"
        "retried/failed requests are always kept; default 0.1)",
    )
    bench.add_argument(
        "--trace-capacity",
        type=int,
        default=256,
        metavar="N",
        help="trace ring-buffer capacity (default 256)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="run the statistical profiler (repro.obs.profile) across "
        "the bench and record the per-stage self-time breakdown",
    )
    bench.add_argument(
        "--trace-overhead",
        action="store_true",
        help="also measure tracing's throughput cost (sampling on vs "
        "off) and record it under 'trace_overhead'; warns above the "
        "5%% budget",
    )

    serve = sub.add_parser(
        "serve",
        help="serve précis queries over HTTP: the asyncio front door "
        "(request coalescing + priority classes, repro.service."
        "frontdoor) over a thread-pooled PrecisService, on the stdlib "
        "endpoint (GET /ask, /metrics, /healthz, /shutdown)",
    )
    serve.add_argument("directory")
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default lo)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (0 = ephemeral; default 8765)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="service worker threads"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, help="admission-queue bound"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="front-door pending-flight bound (default 256)",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="default per-request deadline for requests carrying none",
    )
    serve.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="memory",
        help="storage backend for the loaded database",
    )
    serve.add_argument(
        "--db-path",
        metavar="FILE",
        help="SQLite database file (implies --backend sqlite)",
    )
    serve.add_argument(
        "--cache",
        action="store_true",
        help="enable the versioned plan + answer caches",
    )
    serve.add_argument(
        "--cache-size", type=int, metavar="N", help="implies --cache"
    )
    serve.add_argument(
        "--trace-out",
        metavar="FILE",
        help="capture request traces and write them as JSON lines on "
        "shutdown",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.1,
        metavar="RATE",
        help="head-sampling rate for normal traces (default 0.1)",
    )
    serve.add_argument(
        "--trace-capacity",
        type=int,
        default=256,
        metavar="N",
        help="trace ring-buffer capacity (default 256)",
    )

    trace = sub.add_parser(
        "trace",
        help="work with captured request traces (repro.obs.context)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="render a JSONL trace capture (serve-bench --trace-out) as "
        "Chrome trace-event JSON for chrome://tracing / Perfetto",
    )
    export.add_argument("input", help="JSONL trace file to read")
    export.add_argument(
        "-o",
        "--out",
        default="-",
        metavar="FILE",
        help="output file ('-' for stdout, the default)",
    )
    export.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="output format (default: chrome trace-event JSON)",
    )
    export.add_argument(
        "--validate",
        action="store_true",
        help="validate the Chrome document structure after rendering "
        "(sorted ts, matched B/E pairs, pid/tid present) and fail on "
        "problems",
    )
    return parser


def _degree(args):
    parts = []
    if args.degree_weight is not None:
        parts.append(WeightThreshold(args.degree_weight))
    if args.degree_top is not None:
        parts.append(TopRProjections(args.degree_top))
    if args.degree_length is not None:
        parts.append(MaxPathLength(args.degree_length))
    if not parts:
        return WeightThreshold(0.9)
    return parts[0] if len(parts) == 1 else CompositeDegree(*parts)


def _cardinality(args):
    parts = []
    if args.per_relation is not None:
        parts.append(MaxTuplesPerRelation(args.per_relation))
    if args.total is not None:
        parts.append(MaxTotalTuples(args.total))
    if not parts:
        return None
    return parts[0] if len(parts) == 1 else CompositeCardinality(*parts)


def _deadline(args):
    """Resolve --deadline-ms into a Deadline (or None)."""
    ms = getattr(args, "deadline_ms", None)
    if ms is None:
        return None
    from .core import Deadline

    return Deadline.after(ms / 1000.0)


def _backend_for(args):
    """Resolve --backend/--db-path into a StorageBackend (or None)."""
    backend = getattr(args, "backend", None)
    db_path = getattr(args, "db_path", None)
    if db_path is not None and backend in (None, "memory"):
        backend = "sqlite"
    if backend in (None, "memory") and db_path is None:
        return None
    return resolve_backend(backend, path=db_path)


def _cache_for(args) -> Optional[CacheConfig]:
    """Resolve --cache/--cache-size into a CacheConfig (or None)."""
    size = getattr(args, "cache_size", None)
    if not getattr(args, "cache", False) and size is None:
        return None
    if size is None:
        return CacheConfig(plans=True, answers=True)
    return CacheConfig(
        plans=True, answers=True, plan_entries=size, answer_entries=size
    )


def _load_engine(
    directory: str,
    tracer: Optional[Tracer] = None,
    backend=None,
    cache: Optional[CacheConfig] = None,
    metrics: bool = False,
    slow_query_ms: Optional[float] = None,
) -> PrecisEngine:
    path = Path(directory)
    db = load_database(path, enforce_foreign_keys=False, backend=backend)
    graph_path = path / _GRAPH_FILE
    translator = None
    if graph_path.exists():
        graph, headings = load_graph(graph_path)
        if headings:
            translator = Translator(generic_spec(graph, headings))
    else:
        graph = graph_from_schema(db.schema)
    return PrecisEngine(
        db,
        graph=graph,
        translator=translator,
        cache=cache,
        tracer=tracer,
        metrics=metrics or None,
        slow_query_ms=slow_query_ms,
    )


def _tracer_for(args) -> tuple[Optional[Tracer], Optional[InMemorySink]]:
    """A tracer + capture sink when ``--stats`` was passed, else Nones."""
    if not getattr(args, "stats", False):
        return None, None
    sink = InMemorySink()
    return Tracer([sink]), sink


def _metrics_requested(args) -> bool:
    return (
        getattr(args, "metrics_out", None) is not None
        or getattr(args, "slow_query_ms", None) is not None
    )


def _write_metrics(args, engine, out) -> None:
    """The ``--metrics-out`` epilogue (no-op when metrics are off)."""
    target = getattr(args, "metrics_out", None)
    if target is None or engine.metrics is None:
        return
    write_metrics(
        engine.metrics,
        out if target == "-" else target,
        format=args.metrics_format,
    )
    if target != "-":
        print(
            f"metrics written to {target} ({args.metrics_format})", file=out
        )


def _print_stats(answer, sink: InMemorySink, out, engine=None) -> None:
    """The ``--stats`` epilogue: index-build time + per-stage table,
    plus per-layer cache counters when caching is enabled."""
    print("", file=out)
    build = sink.find("build_index")
    if build is not None:
        print(
            f"index build: {build.duration_s * 1e3:.3f} ms "
            f"({build.counter('values_indexed')} values, "
            f"{build.counter('attributes_indexed')} attributes)",
            file=out,
        )
    print(render_stats(answer), file=out)
    if engine is not None and engine.cache is not None:
        for layer, counters in engine.cache_stats().items():
            body = " ".join(f"{k}={v}" for k, v in counters.items())
            print(f"cache[{layer}]: {body}", file=out)


def _cmd_init_demo(args, out) -> int:
    from .datasets import (
        generate_movies_database,
        movies_graph,
        paper_instance,
    )

    if args.movies > 0:
        db = generate_movies_database(n_movies=args.movies, seed=args.seed)
    else:
        db = paper_instance()
    path = save_database(db, args.directory)
    headings = {
        "THEATRE": "NAME",
        "MOVIE": "TITLE",
        "GENRE": "GENRE",
        "ACTOR": "ANAME",
        "DIRECTOR": "DNAME",
    }
    save_graph(movies_graph(), path / _GRAPH_FILE, headings)
    print(f"wrote {db.total_tuples()} tuples to {path}", file=out)
    return 0


def _cmd_schema(args, out) -> int:
    db = load_database(args.directory, enforce_foreign_keys=False)
    print(create_schema_sql(db.schema), file=out)
    print("", file=out)
    print(database_summary(db), file=out)
    return 0


def _cmd_query(args, out) -> int:
    tracer, sink = _tracer_for(args)
    engine = _load_engine(
        args.directory,
        tracer,
        backend=_backend_for(args),
        cache=_cache_for(args),
        metrics=_metrics_requested(args),
        slow_query_ms=args.slow_query_ms,
    )
    answer = engine.ask(
        args.query,
        degree=_degree(args),
        cardinality=_cardinality(args),
        strategy=args.strategy,
        deadline=_deadline(args),
    )
    if answer.degraded:
        print(
            f"(degraded: deadline expired during {answer.degraded_stage} — "
            f"partial answer)",
            file=out,
        )
    if not answer.found:
        print(f"no match for {args.query!r}", file=out)
        if sink is not None:
            _print_stats(answer, sink, out, engine)
        _write_metrics(args, engine, out)
        return 1
    if args.dot:
        print(result_schema_to_dot(answer.result_schema), file=out)
        return 0
    print(answer.describe(), file=out)
    if args.explain:
        print("", file=out)
        print(render_explanation(answer), file=out)
    if args.narrative and answer.narrative:
        print("", file=out)
        print(answer.narrative, file=out)
    if args.save:
        save_database(answer.database, args.save)
        print(f"\nanswer database exported to {args.save}", file=out)
    if sink is not None:
        _print_stats(answer, sink, out, engine)
    _write_metrics(args, engine, out)
    return 0


def _cmd_explain(args, out) -> int:
    tracer, sink = _tracer_for(args)
    engine = _load_engine(
        args.directory,
        tracer,
        backend=_backend_for(args),
        cache=_cache_for(args),
        metrics=_metrics_requested(args),
        slow_query_ms=args.slow_query_ms,
    )
    answer = engine.ask(
        args.query,
        degree=_degree(args),
        cardinality=_cardinality(args),
        strategy=args.strategy,
        translate=False,
        deadline=_deadline(args),
    )
    print(render_explanation(answer), file=out)
    print("", file=out)
    print(render_plan(answer), file=out)
    print("", file=out)
    print("-- result database DDL", file=out)
    print(answer_ddl(answer), file=out)
    print("", file=out)
    print("-- retrieval queries", file=out)
    for query in emitted_queries(answer):
        print(query + ";", file=out)
    if sink is not None:
        _print_stats(answer, sink, out, engine)
    _write_metrics(args, engine, out)
    return 0


def _cmd_estimate(args, out) -> int:
    from .core import estimate_cardinalities, suggest_cardinality

    tracer, sink = _tracer_for(args)
    engine = _load_engine(
        args.directory,
        tracer,
        backend=_backend_for(args),
        cache=_cache_for(args),
        metrics=_metrics_requested(args),
        slow_query_ms=args.slow_query_ms,
    )
    schema, matches, __ = engine.plan(args.query, _degree(args))
    if schema.is_empty():
        print(f"no match for {args.query!r}", file=out)
        return 1
    seed_counts: dict[str, int] = {}
    for match in matches:
        for occ in match.occurrences:
            seed_counts[occ.relation] = seed_counts.get(occ.relation, 0) + len(
                occ.tids
            )
    estimated = estimate_cardinalities(engine.db, schema, seed_counts)
    print("estimated answer size (unconstrained):", file=out)
    for relation, expected in estimated.items():
        print(f"  {relation}: ~{expected:.1f} tuple(s)", file=out)
    print(f"  total: ~{sum(estimated.values()):.1f}", file=out)
    if args.target_total is not None:
        constraint = suggest_cardinality(
            engine.db, schema, seed_counts, args.target_total
        )
        print(
            f"suggested constraint for <= {args.target_total} tuples: "
            f"--per-relation {constraint.c0}",
            file=out,
        )
    if sink is not None:
        # plan() emits "match" and "schema" as separate roots (there is
        # no enclosing ask); print each captured span tree
        print("", file=out)
        for root in sink.spans:
            print(format_span_table(root), file=out)
        if engine.cache is not None:
            for layer, counters in engine.cache_stats().items():
                body = " ".join(f"{k}={v}" for k, v in counters.items())
                print(f"cache[{layer}]: {body}", file=out)
    _write_metrics(args, engine, out)
    return 0


def _merge_bench_json(args, out, key: str, payload: dict) -> None:
    """Merge *payload* into --json-out under *key* ('-' disables)."""
    import json

    if args.json_out == "-":
        return
    target = Path(args.json_out)
    document = {}
    if target.exists():
        try:
            document = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {}
    document[key] = payload
    with open(target, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(f"(results merged into {target} under {key!r})", file=out)


def _serve_bench_open_loop(args, out) -> int:
    """The --arrival-rate branch of serve-bench: Poisson arrivals
    through the async front door, coalescing A/B, 'frontdoor' payload."""
    from .obs import TraceBuffer
    from .service import (
        OpenLoopConfig,
        movies_workload,
        run_frontdoor_bench,
    )

    engine, queries = movies_workload(
        n_movies=args.movies,
        backend=args.backend if args.backend != "memory" else None,
    )
    traces = (
        TraceBuffer(
            capacity=args.trace_capacity, sample_rate=args.trace_sample
        )
        if args.trace_out is not None
        else None
    )
    config = OpenLoopConfig(
        arrival_rate=args.arrival_rate,
        duration_s=args.duration,
        duplicate_fraction=args.duplicate_fraction,
        batch_fraction=args.batch_fraction,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
    )
    payload = run_frontdoor_bench(
        engine,
        queries,
        config,
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_pending=args.max_pending,
        compare_coalescing=not args.no_baseline,
        traces=traces,
    )
    payload["backend"] = args.backend
    on = payload["coalesced"]
    print(
        f"serve-bench (open loop): {args.arrival_rate:g} req/s offered "
        f"for {args.duration:g}s, {on['offered']} arrivals "
        f"({args.duplicate_fraction:.0%} duplicates, "
        f"{args.batch_fraction:.0%} batch), {args.workers} workers, "
        f"deadline "
        + (f"{args.deadline_ms:g} ms" if args.deadline_ms else "none"),
        file=out,
    )

    def describe(label: str, arm: dict) -> None:
        outcomes = arm["outcomes"]
        print(
            f"  {label}: goodput {arm['goodput_rps']:.1f} rps, "
            f"coalesce hit rate {arm['coalesce_hit_rate']:.0%}, "
            f"shed {arm['shed_rate']:.0%} "
            f"({outcomes['degraded']} degraded, {outcomes['failed']} "
            "failed)",
            file=out,
        )
        for priority, stats in sorted(arm["classes"].items()):
            latency = stats.get("latency_ms")
            if latency is None:
                tail = "no answers"
            else:
                tail = (
                    f"latency ms p50={latency['p50']:.2f} "
                    f"p95={latency['p95']:.2f} p99={latency['p99']:.2f}"
                )
            print(
                f"    {priority}: {stats['answered']}/{stats['offered']} "
                f"answered, {tail}",
                file=out,
            )

    describe("coalesced", on)
    if "uncoalesced" in payload:
        describe("uncoalesced", payload["uncoalesced"])
        print(
            f"  goodput ratio (coalesced/uncoalesced): "
            f"{payload['goodput_ratio']:.2f}x",
            file=out,
        )
    if traces is not None:
        kept = traces.export_jsonl(args.trace_out)
        stats = traces.stats()
        print(
            f"  traces: {kept} kept ({stats['kept_triggered']} triggered, "
            f"{stats['kept_sampled']} sampled of {stats['offered']} "
            f"offered) -> {args.trace_out}",
            file=out,
        )
    _merge_bench_json(args, out, "frontdoor", payload)
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from .obs import TraceBuffer
    from .service import (
        AsyncFrontDoor,
        FrontDoorConfig,
        FrontDoorHTTP,
        PrecisService,
        ServiceConfig,
    )

    engine = _load_engine(
        args.directory,
        backend=_backend_for(args),
        cache=_cache_for(args),
    )
    traces = (
        TraceBuffer(
            capacity=args.trace_capacity, sample_rate=args.trace_sample
        )
        if args.trace_out is not None
        else None
    )
    service = PrecisService(
        engine,
        config=ServiceConfig(
            workers=args.workers,
            queue_depth=(
                args.queue_depth if args.queue_depth is not None else 64
            ),
            default_timeout_s=(
                args.timeout_ms / 1000.0
                if args.timeout_ms is not None
                else None
            ),
        ),
        traces=traces,
    )

    async def run() -> None:
        frontdoor = AsyncFrontDoor(
            service, FrontDoorConfig(max_pending=args.max_pending)
        )
        http = FrontDoorHTTP(frontdoor, host=args.host, port=args.port)
        host, port = await http.start()
        print(
            f"precis front door listening on http://{host}:{port}",
            file=out,
        )
        print(
            "routes: GET /ask?q=... | /metrics | /healthz | /shutdown",
            file=out,
        )
        try:
            await http.serve_until_shutdown()
        finally:
            await http.stop()
            await frontdoor.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted", file=out)
    finally:
        service.close()
        if traces is not None:
            kept = traces.export_jsonl(args.trace_out)
            print(f"{kept} trace(s) -> {args.trace_out}", file=out)
    print("server stopped", file=out)
    return 0


def _cmd_serve_bench(args, out) -> int:
    from .obs import TraceBuffer
    from .service import (
        measure_trace_overhead,
        movies_workload,
        run_serve_bench,
    )

    if args.arrival_rate is not None:
        return _serve_bench_open_loop(args, out)

    engine, queries = movies_workload(
        n_movies=args.movies,
        backend=args.backend if args.backend != "memory" else None,
    )
    traces = (
        TraceBuffer(
            capacity=args.trace_capacity, sample_rate=args.trace_sample
        )
        if args.trace_out is not None
        else None
    )
    payload = run_serve_bench(
        engine,
        queries,
        client_threads=args.clients,
        requests_per_client=args.requests,
        workers=args.workers,
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
        traces=traces,
        profile=args.profile,
    )
    payload["backend"] = args.backend
    outcomes = payload["outcomes"]
    latency = payload["latency_ms"]

    def fmt(value):
        return "-" if value is None else f"{value:.2f}"

    print(
        f"serve-bench: {args.clients} clients x {args.requests} requests, "
        f"{args.workers} workers, queue depth {payload['queue_depth']}, "
        f"deadline "
        + (f"{args.deadline_ms:g} ms" if args.deadline_ms else "none"),
        file=out,
    )
    print(
        f"  answered {outcomes['answered']}/{payload['requests']} "
        f"({outcomes['degraded']} degraded, "
        f"{outcomes['shed_full']} shed full, "
        f"{outcomes['shed_stale']} shed stale, "
        f"{outcomes['failed']} failed)",
        file=out,
    )
    print(
        f"  throughput {payload['throughput_rps']:.1f} req/s; latency ms "
        f"p50={fmt(latency['p50'])} p95={fmt(latency['p95'])} "
        f"p99={fmt(latency['p99'])} max={fmt(latency['max'])}",
        file=out,
    )
    if traces is not None:
        kept = traces.export_jsonl(args.trace_out)
        stats = traces.stats()
        print(
            f"  traces: {kept} kept ({stats['kept_triggered']} triggered, "
            f"{stats['kept_sampled']} sampled of {stats['offered']} "
            f"offered) -> {args.trace_out}",
            file=out,
        )
    if args.profile and "profile" in payload:
        profile = payload["profile"]
        stages = ", ".join(
            f"{stage}={fraction:.0%}"
            for stage, fraction in sorted(
                profile["fractions"].items(), key=lambda kv: -kv[1]
            )[:5]
        )
        print(
            f"  profile: {profile['samples']} samples, "
            f"{profile['attributed_fraction']:.0%} in pipeline stages "
            f"({stages})",
            file=out,
        )
    if args.trace_overhead:
        # serial defaults on purpose: the budget gate isolates the
        # tracing code path; a concurrent closed loop would measure
        # scheduler noise (see measure_trace_overhead)
        overhead = measure_trace_overhead(
            engine,
            queries,
            sample_rate=args.trace_sample,
        )
        payload["trace_overhead"] = overhead
        verdict = "ok" if overhead["passed"] else "OVER BUDGET"
        print(
            f"  trace overhead: {overhead['overhead_pct']:.1f}% at "
            f"{overhead['sample_rate']:.0%} sampling "
            f"(budget {overhead['budget_pct']:g}%, {verdict})",
            file=out,
        )
        if not overhead["passed"]:
            print(
                "  warning: tracing costs more than its budget on this "
                "run; see benchmarks/test_trace_overhead.py for the "
                "gated measurement",
                file=out,
            )
    _merge_bench_json(args, out, "serve", payload)
    return 0


def _cmd_trace(args, out) -> int:
    import json

    from .obs.context import (
        chrome_trace_events,
        load_jsonl,
        validate_chrome_trace,
    )

    traces = load_jsonl(args.input)
    if args.format == "jsonl":
        lines = [
            json.dumps(trace.to_dict(), sort_keys=True) for trace in traces
        ]
        body = "\n".join(lines) + ("\n" if lines else "")
    else:
        document = chrome_trace_events(traces)
        if args.validate:
            problems = validate_chrome_trace(document)
            if problems:
                for problem in problems:
                    print(f"invalid: {problem}", file=out)
                return 1
        body = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        out.write(body)
    else:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(body)
        print(
            f"{len(traces)} trace(s) exported to {args.out} "
            f"({args.format})",
            file=out,
        )
    return 0


_COMMANDS = {
    "init-demo": _cmd_init_demo,
    "schema": _cmd_schema,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "estimate": _cmd_estimate,
    "serve": _cmd_serve,
    "serve-bench": _cmd_serve_bench,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
