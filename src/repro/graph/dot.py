"""Graphviz DOT export for schema graphs and result schemas.

The paper's §7 envisions "a graphical tool intended for use by a domain
expert" for inspecting and tuning the weighted schema graph; DOT output
is the text-based foundation for that: render with ``dot -Tsvg``.

Relation nodes are boxes, attribute nodes are ellipses hanging off
them with their projection weight on the edge; join edges are directed
arrows labelled ``attr (w)``. Result schemas highlight the token
relations and show in-degrees.
"""

from __future__ import annotations

from ..core.result_schema import ResultSchema
from .schema_graph import SchemaGraph

__all__ = ["graph_to_dot", "result_schema_to_dot"]


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def graph_to_dot(graph: SchemaGraph, name: str = "schema_graph") -> str:
    """Render a weighted schema graph as DOT."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for relation in graph.relations:
        lines.append(
            f"  {_quote(relation)} [shape=box, style=bold];"
        )
        for edge in graph.projection_edges_of(relation):
            node = f"{relation}.{edge.attribute}"
            lines.append(
                f"  {_quote(node)} [shape=ellipse, "
                f"label={_quote(edge.attribute)}];"
            )
            lines.append(
                f"  {_quote(node)} -> {_quote(relation)} "
                f"[label={_quote(f'{edge.weight:g}')}, style=dashed, "
                f"arrowhead=none];"
            )
    for edge in graph.all_join_edges():
        label = f"{edge.source_attribute} ({edge.weight:g})"
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def result_schema_to_dot(
    schema: ResultSchema, name: str = "result_schema"
) -> str:
    """Render a result schema ``G'`` as DOT (token relations shaded)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for relation in schema.relations:
        attrs = ", ".join(schema.attributes_of(relation)) or "—"
        label = f"{relation}|{attrs}|in-degree {schema.in_degree(relation)}"
        style = (
            "filled, bold" if relation in schema.origin_relations else "bold"
        )
        lines.append(
            f"  {_quote(relation)} [shape=record, style={_quote(style)}, "
            f"label={_quote(label)}];"
        )
    for edge in schema.join_edges():
        label = (
            f"{edge.source_attribute}→{edge.target_attribute} "
            f"({edge.weight:g})"
        )
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)
