"""Weight assignment utilities.

Supports the two weight-provisioning modes the paper describes (§3.1):
designer/user-specified weight sets (see
:mod:`repro.personalization.profile`) and the *randomly generated weight
sets* used throughout the §6 experiments ("we used 20 randomly generated
sets of weights for the edges of the database schema graph").
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from .schema_graph import SchemaGraph

__all__ = [
    "random_weight_assignment",
    "random_weight_assignments",
    "assign_uniform_weights",
    "edge_weight_map",
]


def edge_weight_map(graph: SchemaGraph) -> dict[tuple, float]:
    """Snapshot of all edge weights keyed by edge key."""
    out: dict[tuple, float] = {}
    for edge in graph.all_projection_edges():
        out[edge.key] = edge.weight
    for edge in graph.all_join_edges():
        out[edge.key] = edge.weight
    return out


def random_weight_assignment(
    graph: SchemaGraph,
    rng: random.Random,
    low: float = 0.1,
    high: float = 1.0,
) -> dict[tuple, float]:
    """One random weight per edge, uniform in [low, high].

    The lower bound defaults above zero so that random graphs stay
    connected for traversal purposes (a zero-weight edge is never taken:
    every path through it has weight 0).
    """
    weights: dict[tuple, float] = {}
    for key in edge_weight_map(graph):
        weights[key] = rng.uniform(low, high)
    return weights


def random_weight_assignments(
    graph: SchemaGraph,
    count: int,
    seed: int = 0,
    low: float = 0.1,
    high: float = 1.0,
) -> list[dict[tuple, float]]:
    """The §6 harness: *count* independent random weight sets.

    Deterministic given *seed*; set ``count=20`` for the paper's setup.
    """
    rng = random.Random(seed)
    return [
        random_weight_assignment(graph, rng, low, high) for __ in range(count)
    ]


def assign_uniform_weights(
    graph: SchemaGraph,
    projection_weight: Optional[float] = None,
    join_weight: Optional[float] = None,
) -> SchemaGraph:
    """A copy of *graph* with all projection and/or join weights set flat."""
    weights: dict[tuple, float] = {}
    if projection_weight is not None:
        for edge in graph.all_projection_edges():
            weights[edge.key] = projection_weight
    if join_weight is not None:
        for edge in graph.all_join_edges():
            weights[edge.key] = join_weight
    return graph.with_weights(weights)
