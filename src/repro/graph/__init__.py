"""Weighted database schema graph (paper §3.1–3.2)."""

from .dot import graph_to_dot, result_schema_to_dot
from .overlay import WeightOverlay, overlay_graph, weight_fingerprint
from .validation import GraphSchemaMismatch, check_graph, validate_graph
from .paths import Path, multiply_weights
from .schema_graph import (
    GraphError,
    JoinEdge,
    ProjectionEdge,
    SchemaGraph,
    graph_from_schema,
)
from .weights import (
    assign_uniform_weights,
    edge_weight_map,
    random_weight_assignment,
    random_weight_assignments,
)

__all__ = [
    "SchemaGraph",
    "GraphError",
    "JoinEdge",
    "ProjectionEdge",
    "graph_from_schema",
    "WeightOverlay",
    "overlay_graph",
    "weight_fingerprint",
    "Path",
    "multiply_weights",
    "edge_weight_map",
    "random_weight_assignment",
    "random_weight_assignments",
    "assign_uniform_weights",
    "graph_to_dot",
    "result_schema_to_dot",
    "validate_graph",
    "check_graph",
    "GraphSchemaMismatch",
]
