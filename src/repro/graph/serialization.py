"""JSON (de)serialization of weighted schema graphs.

Lets a designer keep the weighted graph — the paper's personalization
surface — as a versioned artifact next to the data. The optional
``headings`` block stores the heading attributes of §5.3 so a generic
translator can be bootstrapped from the same file (used by the CLI).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .schema_graph import GraphError, SchemaGraph

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def graph_to_dict(
    graph: SchemaGraph, headings: Optional[dict[str, str]] = None
) -> dict:
    """Serialize graph structure + weights (+ optional headings)."""
    return {
        "version": _FORMAT_VERSION,
        "relations": [
            {
                "name": relation,
                "attributes": [
                    {
                        "name": edge.attribute,
                        "weight": edge.weight,
                    }
                    for edge in graph.projection_edges_of(relation)
                ],
            }
            for relation in graph.relations
        ],
        "joins": [
            {
                "source": edge.source,
                "target": edge.target,
                "source_attribute": edge.source_attribute,
                "target_attribute": edge.target_attribute,
                "weight": edge.weight,
            }
            for edge in graph.all_join_edges()
        ],
        "headings": dict(headings or {}),
    }


def graph_from_dict(data: dict) -> tuple[SchemaGraph, dict[str, str]]:
    """Inverse of :func:`graph_to_dict`; returns (graph, headings)."""
    if data.get("version") != _FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format version {data.get('version')!r}"
        )
    graph = SchemaGraph()
    try:
        for relation in data["relations"]:
            graph.add_relation(relation["name"])
            for attribute in relation["attributes"]:
                graph.add_attribute(
                    relation["name"], attribute["name"], attribute["weight"]
                )
        for join in data.get("joins", []):
            graph.add_join(
                join["source"],
                join["target"],
                join["source_attribute"],
                join["target_attribute"],
                join["weight"],
            )
    except KeyError as exc:
        raise GraphError(f"malformed graph document: missing {exc}") from exc
    return graph, dict(data.get("headings", {}))


def save_graph(
    graph: SchemaGraph,
    path: Union[str, Path],
    headings: Optional[dict[str, str]] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(graph_to_dict(graph, headings), indent=2))
    return path


def load_graph(path: Union[str, Path]) -> tuple[SchemaGraph, dict[str, str]]:
    return graph_from_dict(json.loads(Path(path).read_text()))
