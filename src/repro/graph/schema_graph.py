"""The weighted database schema graph of paper §3.1.

    "We consider the database schema graph G(V,E) as a directed graph
    corresponding to a database schema D. There are two types of nodes:
    relation nodes and attribute nodes. Edges are projection edges (an
    attribute node to its container relation node) and join edges (a
    relation node to another relation node). A weight w ∈ [0,1] is
    assigned to each edge showing the significance of the bond."

Join edges are *directed*: the edge ``R_i -> R_j`` expresses how strongly
an answer that already contains ``R_i`` should pull in ``R_j``; the two
directions may carry different weights (the paper's MOVIE/GENRE example:
GENRE→MOVIE has weight 1, MOVIE→GENRE has weight 0.9). At most one join
edge exists per (source, destination) pair — the paper's simplifying
assumption, enforced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..relational.schema import DatabaseSchema

__all__ = ["ProjectionEdge", "JoinEdge", "SchemaGraph", "GraphError"]


class GraphError(ValueError):
    """The schema graph was built or queried inconsistently."""


def _check_weight(weight: float) -> float:
    if not 0.0 <= weight <= 1.0:
        raise GraphError(f"weight must be in [0,1], got {weight!r}")
    return float(weight)


@dataclass(frozen=True)
class ProjectionEdge:
    """Attribute node ↔ its container relation node.

    The paper draws the edge from the attribute to the relation; for the
    traversal it only matters that the edge is *attached to* the relation,
    so we store (relation, attribute, weight).
    """

    relation: str
    attribute: str
    weight: float

    @property
    def key(self) -> tuple:
        return ("proj", self.relation, self.attribute)

    def __repr__(self):
        return f"π({self.relation}.{self.attribute}, w={self.weight:g})"


@dataclass(frozen=True)
class JoinEdge:
    """Directed join edge between two relation nodes.

    ``source_attribute`` / ``target_attribute`` name the joining columns
    (the paper tags the common attribute name on the edge; we allow the
    two sides to differ, which subsumes the paper's convention).
    """

    source: str
    target: str
    source_attribute: str
    target_attribute: str
    weight: float

    @property
    def key(self) -> tuple:
        return ("join", self.source, self.target)

    def __repr__(self):
        return (
            f"⋈({self.source}.{self.source_attribute} → "
            f"{self.target}.{self.target_attribute}, w={self.weight:g})"
        )


class SchemaGraph:
    """Mutable weighted schema graph over a set of relations."""

    def __init__(self):
        self._relations: dict[str, list[str]] = {}
        self._projections: dict[tuple[str, str], ProjectionEdge] = {}
        self._joins: dict[tuple[str, str], JoinEdge] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter — the graph's cache-validity token.

        Bumped by every structural addition and every weight change, so
        two reads returning the same version saw an identical graph.
        ``copy()``/``with_weights()`` produce *new* graph objects whose
        counters restart; versions are only comparable on one object.
        """
        return self._version

    # --------------------------------------------------------------- building

    def add_relation(self, name: str, attributes: Iterable[str] = ()) -> None:
        if name in self._relations:
            raise GraphError(f"relation {name} already in graph")
        self._version += 1
        self._relations[name] = []
        for attribute in attributes:
            self.add_attribute(name, attribute)

    def add_attribute(
        self, relation: str, attribute: str, weight: float = 0.0
    ) -> None:
        """Add an attribute node and its projection edge."""
        self._require_relation(relation)
        if attribute in self._relations[relation]:
            raise GraphError(f"attribute {relation}.{attribute} already in graph")
        self._version += 1
        self._relations[relation].append(attribute)
        self._projections[(relation, attribute)] = ProjectionEdge(
            relation, attribute, _check_weight(weight)
        )

    def set_projection_weight(
        self, relation: str, attribute: str, weight: float
    ) -> None:
        edge = self.projection_edge(relation, attribute)
        self._version += 1
        self._projections[(relation, attribute)] = ProjectionEdge(
            edge.relation, edge.attribute, _check_weight(weight)
        )

    def add_join(
        self,
        source: str,
        target: str,
        source_attribute: str,
        target_attribute: Optional[str] = None,
        weight: float = 0.0,
    ) -> None:
        """Add a directed join edge; the reverse direction is a separate

        edge with its own weight (add it explicitly or via
        :meth:`add_join_pair`)."""
        self._require_relation(source)
        self._require_relation(target)
        if target_attribute is None:
            target_attribute = source_attribute
        if source_attribute not in self._relations[source]:
            raise GraphError(f"no attribute {source}.{source_attribute}")
        if target_attribute not in self._relations[target]:
            raise GraphError(f"no attribute {target}.{target_attribute}")
        key = (source, target)
        if key in self._joins:
            raise GraphError(f"join edge {source} → {target} already exists")
        self._version += 1
        self._joins[key] = JoinEdge(
            source, target, source_attribute, target_attribute, _check_weight(weight)
        )

    def add_join_pair(
        self,
        left: str,
        right: str,
        left_attribute: str,
        right_attribute: Optional[str] = None,
        weight_left_to_right: float = 0.0,
        weight_right_to_left: float = 0.0,
    ) -> None:
        """Add both directions of a join in one call."""
        self.add_join(
            left, right, left_attribute, right_attribute, weight_left_to_right
        )
        self.add_join(
            right,
            left,
            right_attribute if right_attribute is not None else left_attribute,
            left_attribute,
            weight_right_to_left,
        )

    def set_join_weight(self, source: str, target: str, weight: float) -> None:
        edge = self.join_edge(source, target)
        self._version += 1
        self._joins[(source, target)] = JoinEdge(
            edge.source,
            edge.target,
            edge.source_attribute,
            edge.target_attribute,
            _check_weight(weight),
        )

    # --------------------------------------------------------------- lookups

    def _require_relation(self, name: str) -> None:
        if name not in self._relations:
            raise GraphError(f"no relation {name} in graph")

    @property
    def relations(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def attributes_of(self, relation: str) -> tuple[str, ...]:
        self._require_relation(relation)
        return tuple(self._relations[relation])

    def projection_edge(self, relation: str, attribute: str) -> ProjectionEdge:
        try:
            return self._projections[(relation, attribute)]
        except KeyError:
            raise GraphError(
                f"no projection edge {relation}.{attribute}"
            ) from None

    def join_edge(self, source: str, target: str) -> JoinEdge:
        try:
            return self._joins[(source, target)]
        except KeyError:
            raise GraphError(f"no join edge {source} → {target}") from None

    def has_join(self, source: str, target: str) -> bool:
        return (source, target) in self._joins

    def projection_edges_of(self, relation: str) -> list[ProjectionEdge]:
        self._require_relation(relation)
        return [
            self._projections[(relation, attribute)]
            for attribute in self._relations[relation]
        ]

    def join_edges_from(self, relation: str) -> list[JoinEdge]:
        self._require_relation(relation)
        return [e for (s, __), e in self._joins.items() if s == relation]

    def join_edges_into(self, relation: str) -> list[JoinEdge]:
        self._require_relation(relation)
        return [e for (__, t), e in self._joins.items() if t == relation]

    def edges_attached_to(
        self, relation: str
    ) -> list[ProjectionEdge | JoinEdge]:
        """All edges "attached to" a relation node in the sense of the

        Result Schema Algorithm's initialization (Figure 3, step 1):
        the relation's projection edges plus its outgoing join edges."""
        return [*self.projection_edges_of(relation), *self.join_edges_from(relation)]

    def all_projection_edges(self) -> Iterator[ProjectionEdge]:
        return iter(self._projections.values())

    def all_join_edges(self) -> Iterator[JoinEdge]:
        return iter(self._joins.values())

    def edge_count(self) -> int:
        return len(self._projections) + len(self._joins)

    # --------------------------------------------------------------- copies

    def copy(self) -> "SchemaGraph":
        clone = SchemaGraph()
        clone._relations = {r: list(a) for r, a in self._relations.items()}
        clone._projections = dict(self._projections)
        clone._joins = dict(self._joins)
        return clone

    def with_weights(self, weights: dict[tuple, float]) -> "SchemaGraph":
        """A copy with selected edge weights overridden.

        *weights* maps edge keys (``("proj", rel, attr)`` or
        ``("join", src, dst)``) to new weights — the mechanism behind
        user profiles and the §6 random-weight experiments.
        """
        clone = self.copy()
        for key, weight in weights.items():
            if key[0] == "proj":
                clone.set_projection_weight(key[1], key[2], weight)
            elif key[0] == "join":
                clone.set_join_weight(key[1], key[2], weight)
            else:
                raise GraphError(f"bad edge key {key!r}")
        return clone

    def __repr__(self):
        return (
            f"SchemaGraph({len(self._relations)} relations, "
            f"{len(self._projections)} projection edges, "
            f"{len(self._joins)} join edges)"
        )


def graph_from_schema(
    schema: DatabaseSchema,
    default_projection_weight: float = 0.5,
    default_join_weight: float = 0.5,
) -> SchemaGraph:
    """Bootstrap a schema graph from relational metadata.

    Every attribute gets a projection edge and every foreign key yields a
    join edge in *both* directions, all at the given default weights — a
    starting point for a designer (or a random assigner) to refine.
    """
    graph = SchemaGraph()
    for rs in schema:
        graph.add_relation(rs.name)
        for col in rs.columns:
            graph.add_attribute(rs.name, col.name, default_projection_weight)
    for fk in schema.foreign_keys:
        if not graph.has_join(fk.source, fk.target):
            graph.add_join(
                fk.source, fk.target, fk.column, fk.target_column,
                default_join_weight,
            )
        if not graph.has_join(fk.target, fk.source):
            graph.add_join(
                fk.target, fk.source, fk.target_column, fk.column,
                default_join_weight,
            )
    return graph
