"""Transitive join and projection paths over the schema graph (§3.2).

    "A directed path p between two relation nodes, comprising adjacent
    join edges, represents the implicit join between these relations. A
    directed path between a relation node and an attribute node,
    comprising a set of adjacent join edges and a projection edge,
    represents the implicit projection of the attribute on this relation.
    The weight of a path is a function of the weight of constituent
    edges, and should decrease as the length of the path increases. In
    our implementation, we have chosen multiplication as this function."

A :class:`Path` is immutable; extension returns a new path. Paths are
ordered by *decreasing weight*, ties broken by *increasing length* — the
priority used by the Result Schema Generator's queue ("shorter paths are
favoured among paths of equal weight based on the intuition that these
may connect more closely related entities").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Optional

from .schema_graph import GraphError, JoinEdge, ProjectionEdge

__all__ = ["Path", "multiply_weights"]


def multiply_weights(weights) -> float:
    """The paper's weight-transfer function: plain multiplication."""
    out = 1.0
    for weight in weights:
        out *= weight
    return out


@total_ordering
@dataclass(frozen=True)
class Path:
    """A (transitive) join or projection path rooted at *origin*.

    ``joins`` is the sequence of adjacent join edges; ``projection`` (if
    set) is the terminal projection edge, making this a projection path.
    """

    origin: str
    joins: tuple[JoinEdge, ...] = ()
    projection: Optional[ProjectionEdge] = None

    # ------------------------------------------------------------- factory

    @classmethod
    def seed(cls, edge: ProjectionEdge | JoinEdge) -> "Path":
        """A length-1 path out of a single edge attached to its relation."""
        if isinstance(edge, ProjectionEdge):
            return cls(edge.relation, (), edge)
        return cls(edge.source, (edge,), None)

    # ------------------------------------------------------------- shape

    @property
    def is_projection_path(self) -> bool:
        return self.projection is not None

    @property
    def is_join_path(self) -> bool:
        return self.projection is None

    @property
    def length(self) -> int:
        """Number of constituent edges."""
        return len(self.joins) + (1 if self.projection is not None else 0)

    @property
    def terminal_relation(self) -> str:
        """The relation node the path currently ends at (for projection

        paths: the relation *containing* the projected attribute)."""
        if self.joins:
            return self.joins[-1].target
        return self.origin

    @property
    def terminal_attribute(self) -> Optional[tuple[str, str]]:
        """(relation, attribute) of the projection, if any."""
        if self.projection is None:
            return None
        return (self.projection.relation, self.projection.attribute)

    def relations(self) -> tuple[str, ...]:
        """Relation nodes visited, in order (origin first)."""
        out = [self.origin]
        for edge in self.joins:
            out.append(edge.target)
        return tuple(out)

    def visits(self, relation: str) -> bool:
        return relation in self.relations()

    # ------------------------------------------------------------- weight

    @property
    def weight(self) -> float:
        return multiply_weights(
            [edge.weight for edge in self.joins]
            + ([self.projection.weight] if self.projection else [])
        )

    # ------------------------------------------------------------- extension

    def extend(self, edge: ProjectionEdge | JoinEdge) -> "Path":
        """Concatenate *edge* to this (join) path.

        Raises :class:`GraphError` if this path already ends in a
        projection, the edge is not adjacent, or (for join edges) the
        extension would revisit a relation node — the paper considers
        acyclic paths only.
        """
        if self.projection is not None:
            raise GraphError("cannot extend a projection path")
        if isinstance(edge, ProjectionEdge):
            if edge.relation != self.terminal_relation:
                raise GraphError(
                    f"projection edge on {edge.relation} not adjacent to "
                    f"path ending at {self.terminal_relation}"
                )
            return Path(self.origin, self.joins, edge)
        if edge.source != self.terminal_relation:
            raise GraphError(
                f"join edge from {edge.source} not adjacent to path "
                f"ending at {self.terminal_relation}"
            )
        if self.visits(edge.target):
            raise GraphError(
                f"extension to {edge.target} would create a cycle"
            )
        return Path(self.origin, self.joins + (edge,), None)

    def can_extend(self, edge: ProjectionEdge | JoinEdge) -> bool:
        """True iff :meth:`extend` would succeed."""
        if self.projection is not None:
            return False
        if isinstance(edge, ProjectionEdge):
            return edge.relation == self.terminal_relation
        return edge.source == self.terminal_relation and not self.visits(
            edge.target
        )

    # ------------------------------------------------------------- ordering

    @property
    def sort_key(self) -> tuple:
        """Queue priority: higher weight first, then shorter, then a

        deterministic lexicographic tiebreak so runs are reproducible."""
        return (-self.weight, self.length, self._lex_key())

    def _lex_key(self) -> tuple:
        return tuple(
            (e.source, e.target) for e in self.joins
        ) + ((self.terminal_attribute,) if self.projection else ())

    def __lt__(self, other: "Path"):
        if not isinstance(other, Path):
            return NotImplemented
        return self.sort_key < other.sort_key

    def __repr__(self):
        hops = [self.origin]
        for edge in self.joins:
            hops.append(edge.target)
        text = " → ".join(hops)
        if self.projection is not None:
            text += f" . {self.projection.attribute}"
        return f"Path({text}, w={self.weight:.4g})"
