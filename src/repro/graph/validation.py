"""Consistency checks between a schema graph and a database schema.

Hand-authored or JSON-loaded graphs drift: a renamed column, a dropped
relation, a join on mismatched types. The engine's generators would
surface these as confusing empty answers; :func:`validate_graph` turns
them into an explicit report instead.
"""

from __future__ import annotations

from ..relational.schema import DatabaseSchema
from .schema_graph import SchemaGraph

__all__ = ["validate_graph", "GraphSchemaMismatch"]


class GraphSchemaMismatch(ValueError):
    """The schema graph disagrees with the relational schema."""

    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__(
            f"{len(problems)} mismatch(es); first: {problems[0]}"
        )


def validate_graph(
    graph: SchemaGraph,
    schema: DatabaseSchema,
    require_headings_cover: bool = False,
) -> list[str]:
    """Return a list of human-readable mismatches (empty = consistent).

    Checks, in order:

    * every graph relation exists in the schema;
    * every graph attribute exists on its relation;
    * every schema attribute has a projection edge (a *warning*-grade
      problem: the attribute can never appear in an answer);
    * join edges reference existing attributes of matching data types;
    * every foreign key of the schema is covered by at least one join
      edge direction (otherwise précis answers can never traverse it).
    """
    problems: list[str] = []
    for relation in graph.relations:
        if not schema.has_relation(relation):
            problems.append(f"graph relation {relation} not in schema")
            continue
        rs = schema.relation(relation)
        for attribute in graph.attributes_of(relation):
            if not rs.has_column(attribute):
                problems.append(
                    f"graph attribute {relation}.{attribute} not in schema"
                )
        for column in rs.attribute_names:
            if column not in graph.attributes_of(relation):
                problems.append(
                    f"schema attribute {relation}.{column} has no "
                    f"projection edge (can never appear in an answer)"
                )
    for relation in schema.relation_names:
        if not graph.has_relation(relation):
            problems.append(
                f"schema relation {relation} missing from graph "
                f"(unreachable by any précis)"
            )
    for edge in graph.all_join_edges():
        for relation, attribute, side in (
            (edge.source, edge.source_attribute, "source"),
            (edge.target, edge.target_attribute, "target"),
        ):
            if not schema.has_relation(relation) or not schema.relation(
                relation
            ).has_column(attribute):
                problems.append(
                    f"join edge {edge.source}→{edge.target}: {side} "
                    f"attribute {relation}.{attribute} not in schema"
                )
                break
        else:
            src_type = schema.relation(edge.source).column(
                edge.source_attribute
            ).dtype
            dst_type = schema.relation(edge.target).column(
                edge.target_attribute
            ).dtype
            if src_type != dst_type:
                problems.append(
                    f"join edge {edge.source}.{edge.source_attribute} "
                    f"({src_type.name}) → {edge.target}."
                    f"{edge.target_attribute} ({dst_type.name}): "
                    f"type mismatch"
                )
    for fk in schema.foreign_keys:
        if not graph.has_relation(fk.source) or not graph.has_relation(
            fk.target
        ):
            continue  # already reported above
        if not (
            graph.has_join(fk.source, fk.target)
            or graph.has_join(fk.target, fk.source)
        ):
            problems.append(
                f"foreign key {fk} has no join edge in either direction"
            )
    return problems


def check_graph(graph: SchemaGraph, schema: DatabaseSchema) -> None:
    """Raise :class:`GraphSchemaMismatch` if validation finds problems."""
    problems = validate_graph(graph, schema)
    if problems:
        raise GraphSchemaMismatch(problems)
