"""Per-tenant weight overlays on a shared immutable base graph.

The paper's personalization story (§3.1 — "multiple sets of weights
corresponding to different user profiles may be stored in the system")
meets the "millions of users" scaling goal here: instead of
materializing one :class:`~repro.graph.schema_graph.SchemaGraph` clone
per weight set (O(edges) memory and copy time per tenant), a
:class:`WeightOverlay` is a copy-on-write view — one shared base graph
plus a sparse ``edge key -> weight`` patch map, resolved lazily at
traversal time.

Three properties make overlays safe to serve from:

* **Read equivalence** — every read of the overlay returns exactly what
  a fresh ``base.with_weights(patches)`` graph would return (the
  differential oracle in ``tests/integration/test_overlay_oracle.py``
  pins this byte-for-byte through the whole engine).
* **Base immutability under overlay composition** — overlays are
  immutable; :meth:`WeightOverlay.with_weights` layers more patches
  into a *new* overlay and never touches the base. Mutating the base
  through its own API still works and bumps ``version``, which both the
  base and every overlay report — so the §9a cache-coherence contract
  (validity tokens) holds unchanged for overlay-served plans.
* **Canonical fingerprints** — :meth:`WeightOverlay.fingerprint`
  digests the *effective* patches (sorted, no-op patches that equal the
  base weight dropped, weights bit-exact as IEEE doubles). Two tenants
  whose overlays coincide — whatever insertion order or no-op noise
  produced them — share one fingerprint and therefore one plan-cache /
  answer-cache entry; an ε-different weight yields a different
  fingerprint and a disjoint entry.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterator, Mapping, Optional

from .schema_graph import (
    GraphError,
    JoinEdge,
    ProjectionEdge,
    SchemaGraph,
    _check_weight,
)

__all__ = ["WeightOverlay", "weight_fingerprint", "overlay_graph"]

#: edge-key kinds understood by overlays (mirrors SchemaGraph.with_weights)
_KINDS = ("proj", "join")


class WeightOverlay:
    """An immutable weighted view: one base graph + sparse weight patches.

    Presents the full :class:`SchemaGraph` *read* API (anything not
    weight-bearing delegates to the base), with patched weights applied
    lazily when edges are read. Construction validates every patch key
    against the base — exactly the errors ``with_weights`` would raise —
    so a bad profile fails fast, not mid-traversal.

    Overlays over overlays flatten: ``WeightOverlay(overlay, more)``
    shares the original base and merges the patch maps (later patches
    win), keeping lookup O(1) regardless of composition depth.
    """

    __slots__ = ("_base", "_patches", "_resolved", "_fingerprint_memo")

    def __init__(self, base: SchemaGraph, patches: Mapping[tuple, float]):
        if isinstance(base, WeightOverlay):
            patches = {**base._patches, **patches}
            base = base._base
        self._base = base
        validated: dict[tuple, float] = {}
        for key, weight in patches.items():
            if not isinstance(key, tuple) or len(key) != 3 or key[0] not in _KINDS:
                raise GraphError(f"bad edge key {key!r}")
            if key[0] == "proj":
                base.projection_edge(key[1], key[2])  # raises if absent
            else:
                base.join_edge(key[1], key[2])
            validated[key] = _check_weight(weight)
        self._patches = validated
        self._resolved: dict[tuple, ProjectionEdge | JoinEdge] = {}
        #: (base version at digest time, fingerprint) — no-op elimination
        #: reads base weights, so the memo is only valid for one version
        self._fingerprint_memo: Optional[tuple[int, Optional[str]]] = None

    # ------------------------------------------------------------ identity

    @property
    def base(self) -> SchemaGraph:
        """The shared immutable-by-convention base graph."""
        return self._base

    @property
    def patches(self) -> dict[tuple, float]:
        """A copy of the raw patch map (including no-op patches)."""
        return dict(self._patches)

    @property
    def version(self) -> int:
        """The *base* graph's mutation counter — overlays add no state
        of their own that can change, so base mutation is the only event
        that can stale a plan computed through this overlay."""
        return self._base.version

    # ------------------------------------------------------------ reading

    def _patched(self, edge: ProjectionEdge | JoinEdge):
        weight = self._patches.get(edge.key)
        if weight is None or weight == edge.weight:
            return edge
        cached = self._resolved.get(edge.key)
        if cached is not None and cached.weight == weight:
            return cached
        if isinstance(edge, ProjectionEdge):
            patched = ProjectionEdge(edge.relation, edge.attribute, weight)
        else:
            patched = JoinEdge(
                edge.source,
                edge.target,
                edge.source_attribute,
                edge.target_attribute,
                weight,
            )
        self._resolved[edge.key] = patched
        return patched

    def projection_edge(self, relation: str, attribute: str) -> ProjectionEdge:
        return self._patched(self._base.projection_edge(relation, attribute))

    def join_edge(self, source: str, target: str) -> JoinEdge:
        return self._patched(self._base.join_edge(source, target))

    def projection_edges_of(self, relation: str) -> list[ProjectionEdge]:
        return [self._patched(e) for e in self._base.projection_edges_of(relation)]

    def join_edges_from(self, relation: str) -> list[JoinEdge]:
        return [self._patched(e) for e in self._base.join_edges_from(relation)]

    def join_edges_into(self, relation: str) -> list[JoinEdge]:
        return [self._patched(e) for e in self._base.join_edges_into(relation)]

    def edges_attached_to(
        self, relation: str
    ) -> list[ProjectionEdge | JoinEdge]:
        return [self._patched(e) for e in self._base.edges_attached_to(relation)]

    def all_projection_edges(self) -> Iterator[ProjectionEdge]:
        return (self._patched(e) for e in self._base.all_projection_edges())

    def all_join_edges(self) -> Iterator[JoinEdge]:
        return (self._patched(e) for e in self._base.all_join_edges())

    def __getattr__(self, name):
        # structural reads (relations, has_relation, attributes_of,
        # has_join, edge_count, ...) are weight-free: delegate to the base.
        # Private names never delegate — that would recurse before the
        # slots are populated (e.g. during unpickling).
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "_base"), name)

    # ------------------------------------------------------------ writing

    def _immutable(self, *_args, **_kwargs):
        raise GraphError(
            "WeightOverlay is immutable — derive a new overlay with "
            "with_weights(), or mutate the base graph directly"
        )

    add_relation = _immutable
    add_attribute = _immutable
    add_join = _immutable
    add_join_pair = _immutable
    set_projection_weight = _immutable
    set_join_weight = _immutable

    # ------------------------------------------------------------ deriving

    def with_weights(self, weights: Mapping[tuple, float]) -> "WeightOverlay":
        """A new overlay over the *same* base with *weights* layered on
        top of this overlay's patches (copy-on-write composition — no
        graph is cloned)."""
        return WeightOverlay(self, weights)

    def copy(self) -> SchemaGraph:
        """A mutable materialized :class:`SchemaGraph` (same semantics
        as copying the equivalent fresh graph)."""
        return self.materialize()

    def materialize(self) -> SchemaGraph:
        """The equivalent freshly built graph: ``base.with_weights(
        patches)``. The differential oracle's reference object."""
        return self._base.with_weights(self._patches)

    # ------------------------------------------------------------ identity key

    def canonical_patches(self) -> tuple[tuple[tuple, float], ...]:
        """The *effective* patches: sorted by edge key, weights coerced
        to float, patches equal to the current base weight dropped.
        This is the overlay's semantic identity — two overlays with
        equal canonical patches answer every query identically."""
        effective = []
        for key in sorted(self._patches):
            weight = self._patches[key]
            if key[0] == "proj":
                base_weight = self._base.projection_edge(key[1], key[2]).weight
            else:
                base_weight = self._base.join_edge(key[1], key[2]).weight
            if weight != base_weight:
                effective.append((key, float(weight)))
        return tuple(effective)

    def fingerprint(self) -> Optional[str]:
        """Canonical weight fingerprint, or None for a no-op overlay.

        A SHA-256 digest over the canonical patches: edge-key parts are
        NUL-delimited UTF-8, weights are big-endian IEEE-754 doubles
        (bit-exact, so an ε-different weight — even one ULP — changes
        the digest). ``None`` means "behaves exactly like the base", so
        no-op overlays share the base graph's cache entries.

        Memoized per base-graph version: no-op elimination depends on
        base weights, so a base mutation recomputes the digest.
        """
        memo = self._fingerprint_memo
        version = self._base.version
        if memo is not None and memo[0] == version:
            return memo[1]
        effective = self.canonical_patches()
        if not effective:
            digest = None
        else:
            hasher = hashlib.sha256()
            for key, weight in effective:
                for part in key:
                    hasher.update(part.encode("utf-8"))
                    hasher.update(b"\x00")
                hasher.update(struct.pack("!d", weight))
                hasher.update(b"\x01")
            digest = hasher.hexdigest()
        self._fingerprint_memo = (version, digest)
        return digest

    def __repr__(self):
        return (
            f"WeightOverlay({len(self._patches)} patch(es) over {self._base!r})"
        )


def weight_fingerprint(graph) -> Optional[str]:
    """The canonical weight fingerprint of *graph* relative to its base:
    ``None`` for a plain :class:`SchemaGraph` (it IS the base) and for
    no-op overlays; an overlay's digest otherwise. This is the value
    mixed into plan- and answer-cache keys, so tenants whose effective
    weights coincide share cached artifacts."""
    if isinstance(graph, WeightOverlay):
        return graph.fingerprint()
    return None


def overlay_graph(
    base: SchemaGraph,
    *patch_layers: Optional[Mapping[tuple, float]],
) -> SchemaGraph:
    """Compose patch layers (later layers win) over *base* without
    cloning: returns *base* itself when every layer is empty/None,
    otherwise one flattened :class:`WeightOverlay`. The engine routes
    profile weights + query-time weight overrides through this."""
    merged: dict[tuple, float] = {}
    for layer in patch_layers:
        if layer:
            merged.update(layer)
    if not merged:
        return base
    return WeightOverlay(base, merged)
