"""Shredding semi-structured documents into précis-ready databases.

The paper closes its framework section with: "Our approach is applicable
to other types of (semi-)structured data as well. However, for
presentation reasons, we focus on relational data here." This module
substantiates that claim: it takes a collection of JSON-style documents
(nested dicts/lists of scalars), infers a relational schema —

* each nesting level becomes a relation with a synthesized ``_ID`` key
  and a ``_PARENT_ID`` foreign key,
* scalar fields become typed columns (types unified across documents),
* lists of dicts become one-to-many child relations,
* lists of scalars become a child relation with a single ``VALUE``
  column —

loads the data, and derives a weighted schema graph (parent→child edges
at 0.8, child→parent at 1.0, scalar projections at 0.5 with the first
text field per relation promoted to heading weight 1.0). The result
plugs straight into :class:`~repro.core.engine.PrecisEngine`, giving
keyword-to-sub-database answering over documents.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..graph.schema_graph import SchemaGraph
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)

__all__ = ["ShredResult", "shred", "ShredError"]


class ShredError(ValueError):
    """The documents cannot be shredded into a relational shape."""


_ID = "_ID"
_PARENT = "_PARENT_ID"
_VALUE = "VALUE"


def _sanitize(name: str) -> str:
    out = re.sub(r"[^0-9A-Za-z_]", "_", name).upper().strip("_")
    if not out or not out[0].isalpha():
        out = f"F_{out}" if out else "FIELD"
    return out


def _scalar_type(value: Any) -> Optional[DataType]:
    if isinstance(value, bool):
        return DataType.BOOL
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    return None


def _unify(types: set[DataType]) -> DataType:
    if not types:
        return DataType.TEXT
    if types == {DataType.INT}:
        return DataType.INT
    if types <= {DataType.INT, DataType.FLOAT}:
        return DataType.FLOAT
    if types == {DataType.BOOL}:
        return DataType.BOOL
    return DataType.TEXT


@dataclass
class _NodeSpec:
    """Discovered shape of one nesting level."""

    name: str
    scalars: dict[str, set[DataType]] = field(default_factory=dict)
    children: dict[str, "_NodeSpec"] = field(default_factory=dict)

    def observe(self, document: dict, names_in_use: set[str]) -> None:
        if not isinstance(document, dict):
            raise ShredError(f"expected an object, got {type(document).__name__}")
        for key, value in document.items():
            column = _sanitize(key)
            if isinstance(value, dict):
                child = self._child(key, names_in_use)
                child.observe(value, names_in_use)
            elif isinstance(value, list):
                child = self._child(key, names_in_use)
                for item in value:
                    if isinstance(item, dict):
                        child.observe(item, names_in_use)
                    elif isinstance(item, list):
                        raise ShredError(
                            f"nested lists are not supported (field {key!r})"
                        )
                    else:
                        dtype = _scalar_type(item)
                        if dtype is not None:
                            child.scalars.setdefault(_VALUE, set()).add(dtype)
            else:
                dtype = _scalar_type(value)
                if dtype is not None:
                    self.scalars.setdefault(column, set()).add(dtype)
                elif value is not None:
                    raise ShredError(
                        f"unsupported scalar {value!r} for field {key!r}"
                    )

    def _child(self, key: str, names_in_use: set[str]) -> "_NodeSpec":
        if key not in self.children:
            base = _sanitize(key)
            name = base
            suffix = 2
            while name in names_in_use:
                name = f"{base}_{suffix}"
                suffix += 1
            names_in_use.add(name)
            self.children[key] = _NodeSpec(name)
        return self.children[key]

    def walk(self) -> Iterable["_NodeSpec"]:
        yield self
        for child in self.children.values():
            yield from child.walk()


@dataclass
class ShredResult:
    """Everything shredding produced, ready for a PrecisEngine."""

    database: Database
    graph: SchemaGraph
    root_relation: str
    headings: dict[str, str]


def _build_schema(root: _NodeSpec) -> DatabaseSchema:
    relations = []
    fks = []
    for spec in root.walk():
        columns = [Column(_ID, DataType.INT, nullable=False)]
        if spec is not root:
            columns.append(Column(_PARENT, DataType.INT, nullable=False))
        for column, types in spec.scalars.items():
            columns.append(Column(column, _unify(types)))
        relations.append(RelationSchema(spec.name, columns, primary_key=_ID))
    parent_of = {}
    for spec in root.walk():
        for child in spec.children.values():
            parent_of[child.name] = spec.name
    for child, parent in parent_of.items():
        fks.append(ForeignKey(child, _PARENT, parent, _ID))
    return DatabaseSchema(relations, fks)


def _coerce_scalar(value: Any, dtype: DataType) -> Any:
    if value is None:
        return None
    if dtype is DataType.TEXT and not isinstance(value, str):
        return str(value)
    if dtype is DataType.FLOAT and isinstance(value, int):
        return float(value)
    return value


def _load(
    db: Database,
    spec: _NodeSpec,
    document: dict,
    parent_id: Optional[int],
    counters: dict[str, int],
) -> None:
    counters[spec.name] = counters.get(spec.name, 0) + 1
    row_id = counters[spec.name]
    row: dict[str, Any] = {_ID: row_id}
    if parent_id is not None:
        row[_PARENT] = parent_id
    schema = db.relation(spec.name).schema
    for key, value in document.items():
        column = _sanitize(key)
        if isinstance(value, (dict, list)):
            continue
        if schema.has_column(column):
            row[column] = _coerce_scalar(value, schema.column(column).dtype)
    db.insert(spec.name, row)
    for key, child in spec.children.items():
        value = document.get(key)
        if isinstance(value, dict):
            _load(db, child, value, row_id, counters)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, dict):
                    _load(db, child, item, row_id, counters)
                elif item is not None:
                    child_schema = db.relation(child.name).schema
                    counters[child.name] = counters.get(child.name, 0) + 1
                    db.insert(
                        child.name,
                        {
                            _ID: counters[child.name],
                            _PARENT: row_id,
                            _VALUE: _coerce_scalar(
                                item, child_schema.column(_VALUE).dtype
                            ),
                        },
                    )


def _build_graph(
    root: _NodeSpec, schema: DatabaseSchema
) -> tuple[SchemaGraph, dict[str, str]]:
    graph = SchemaGraph()
    headings: dict[str, str] = {}
    for spec in root.walk():
        rs = schema.relation(spec.name)
        graph.add_relation(spec.name)
        heading = next(
            (c.name for c in rs.columns if c.dtype is DataType.TEXT), None
        )
        for column in rs.columns:
            if column.name == heading:
                weight = 1.0
            elif column.name in (_ID, _PARENT):
                weight = 0.1
            else:
                weight = 0.5
            graph.add_attribute(spec.name, column.name, weight)
        if heading:
            headings[spec.name] = heading
    for spec in root.walk():
        for child in spec.children.values():
            graph.add_join(spec.name, child.name, _ID, _PARENT, 0.8)
            graph.add_join(child.name, spec.name, _PARENT, _ID, 1.0)
    return graph, headings


def shred(documents: Iterable[dict], root_name: str = "DOC") -> ShredResult:
    """Shred *documents* into a database + weighted schema graph.

    >>> result = shred([{"name": "Ada", "skills": ["math", "code"]}])
    >>> sorted(result.database.relation_names)
    ['DOC', 'SKILLS']
    """
    documents = list(documents)
    if not documents:
        raise ShredError("need at least one document")
    root = _NodeSpec(_sanitize(root_name))
    names_in_use = {root.name}
    for document in documents:
        root.observe(document, names_in_use)
    schema = _build_schema(root)
    db = Database(schema, enforce_foreign_keys=False)
    counters: dict[str, int] = {}
    for document in documents:
        _load(db, root, document, None, counters)
    db.create_join_indexes()
    db.check_integrity()
    graph, headings = _build_graph(root, schema)
    return ShredResult(
        database=db, graph=graph, root_relation=root.name, headings=headings
    )
