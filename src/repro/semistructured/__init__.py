"""Précis over semi-structured data: JSON-document shredding."""

from .shredder import ShredError, ShredResult, shred
from .xml_adapter import element_to_document, shred_xml

__all__ = [
    "shred",
    "ShredResult",
    "ShredError",
    "shred_xml",
    "element_to_document",
]
