"""XML → document conversion feeding the shredder.

The paper's related work (§2) covers keyword search over XML
([12, 13, 14]); this adapter closes the loop on the claim that the
précis framework applies to semi-structured data: parse XML with the
standard library, convert elements to the nested-dict shape
:func:`repro.semistructured.shredder.shred` expects, and the whole
précis pipeline runs over the result.

Conversion rules (deliberately simple and lossless enough for keyword
search):

* attributes become scalar fields;
* repeated child tags become a list of objects;
* a leaf element's text becomes a scalar (its tag the field name);
* mixed/leading text of a non-leaf element lands in ``_text``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Union

from .shredder import ShredError, ShredResult, shred

__all__ = ["element_to_document", "shred_xml"]


def _parse_scalar(text: str) -> Union[int, float, str]:
    stripped = text.strip()
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return stripped


def element_to_document(element: ET.Element) -> dict:
    """Convert one XML element into a nested dict."""
    doc: dict = {}
    for name, value in element.attrib.items():
        doc[name] = _parse_scalar(value)
    by_tag: dict[str, list[ET.Element]] = {}
    for child in element:
        by_tag.setdefault(child.tag, []).append(child)
    for tag, children in by_tag.items():
        converted = []
        for child in children:
            if len(child) == 0 and not child.attrib:
                text = child.text or ""
                converted.append(_parse_scalar(text))
            else:
                converted.append(element_to_document(child))
        doc[tag] = converted if len(converted) > 1 else converted[0]
    text = (element.text or "").strip()
    if text:
        doc["_text"] = text if len(element) > 0 else _parse_scalar(text)
    return doc


def shred_xml(source: str, root_name: str | None = None) -> ShredResult:
    """Shred an XML string: the root's children become the documents.

    ``<movies><movie>…</movie><movie>…</movie></movies>`` produces one
    document per ``<movie>`` in a relation named after the child tag
    (or *root_name* if given).
    """
    try:
        root = ET.fromstring(source)
    except ET.ParseError as exc:
        raise ShredError(f"malformed XML: {exc}") from exc
    children = list(root)
    if not children:
        raise ShredError("the XML root has no child elements to shred")
    documents = [element_to_document(child) for child in children]
    name = root_name or children[0].tag
    return shred(documents, root_name=name)
