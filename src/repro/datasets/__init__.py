"""Datasets: the paper's movies database, a university schema, and a

digital-library schema (the paper's DELOS application context)."""

from .library import (
    generate_library_database,
    library_graph,
    library_schema,
    library_translation_spec,
)
from .movies import (
    generate_movies_database,
    movies_graph,
    movies_schema,
    movies_translation_spec,
    paper_instance,
)
from .university import (
    generate_university_database,
    university_graph,
    university_schema,
)

__all__ = [
    "movies_schema",
    "movies_graph",
    "paper_instance",
    "movies_translation_spec",
    "generate_movies_database",
    "university_schema",
    "university_graph",
    "generate_university_database",
    "library_schema",
    "library_graph",
    "library_translation_spec",
    "generate_library_database",
]
