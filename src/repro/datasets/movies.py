"""The paper's movies database (Figure 1) and its running example.

Provides four things:

* :func:`movies_schema` — the seven-relation schema of Example 1::

      THEATRE(tid, name, phone, region)     PLAY(tid, mid, date)
      MOVIE(mid, title, year, did)          GENRE(mid, genre)
      CAST(mid, aid, role)                  ACTOR(aid, aname, blocation, bdate)
      DIRECTOR(did, dname, blocation, bdate)

* :func:`movies_graph` — the weighted schema graph of Figure 1. The
  published figure is only partially legible, so weights are
  *reconstructed* to satisfy every constraint the text states: heading
  attributes weigh 1; GENRE→MOVIE = 1 vs MOVIE→GENRE = 0.9; the
  projection of PHONE over THEATRE weighs 0.8 and over MOVIE
  0.7·1·0.8 = 0.56; and — decisive — the query Q = {"Woody Allen"} with
  degree constraint *weight ≥ 0.9* must yield exactly the Figure 4
  result schema (DIRECTOR{dname, bdate, blocation}, ACTOR{aname},
  CAST{}, MOVIE{title, year}, GENRE{genre}, with MOVIE at in-degree 2).

* :func:`paper_instance` — the micro-database of Figure 6 / §5.3
  (Woody Allen as director and actor, five movies, genres), enough to
  regenerate the paper's narrative verbatim.

* :func:`movies_translation_spec` — heading attributes and template
  labels reproducing the §5.3 translation, including the MOVIE_LIST
  macro.

* :func:`generate_movies_database` — a deterministic synthetic IMDB-like
  generator used by the §6 experiments (the paper used an IMDB dump;
  the substitution is documented in DESIGN.md).
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.schema_graph import SchemaGraph
from ..nlg.labels import TranslationSpec
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)

__all__ = [
    "movies_schema",
    "movies_graph",
    "paper_instance",
    "movies_translation_spec",
    "generate_movies_database",
]


def movies_schema() -> DatabaseSchema:
    """The Example 1 schema; primary keys per the paper (underlined)."""
    text = DataType.TEXT
    integer = DataType.INT
    relations = [
        RelationSchema(
            "THEATRE",
            [
                Column("TID", integer, nullable=False),
                Column("NAME", text),
                Column("PHONE", text),
                Column("REGION", text),
            ],
            primary_key="TID",
        ),
        RelationSchema(
            "PLAY",
            [
                Column("TID", integer, nullable=False),
                Column("MID", integer, nullable=False),
                Column("DATE", text),
            ],
            primary_key=("TID", "MID", "DATE"),
        ),
        RelationSchema(
            "MOVIE",
            [
                Column("MID", integer, nullable=False),
                Column("TITLE", text),
                Column("YEAR", integer),
                Column("DID", integer),
            ],
            primary_key="MID",
        ),
        RelationSchema(
            "GENRE",
            [
                Column("MID", integer, nullable=False),
                Column("GENRE", text, nullable=False),
            ],
            primary_key=("MID", "GENRE"),
        ),
        RelationSchema(
            "CAST",
            [
                Column("MID", integer, nullable=False),
                Column("AID", integer, nullable=False),
                Column("ROLE", text),
            ],
            primary_key=("MID", "AID"),
        ),
        RelationSchema(
            "ACTOR",
            [
                Column("AID", integer, nullable=False),
                Column("ANAME", text),
                Column("BLOCATION", text),
                Column("BDATE", text),
            ],
            primary_key="AID",
        ),
        RelationSchema(
            "DIRECTOR",
            [
                Column("DID", integer, nullable=False),
                Column("DNAME", text),
                Column("BLOCATION", text),
                Column("BDATE", text),
            ],
            primary_key="DID",
        ),
    ]
    fks = [
        ForeignKey("PLAY", "TID", "THEATRE", "TID"),
        ForeignKey("PLAY", "MID", "MOVIE", "MID"),
        ForeignKey("GENRE", "MID", "MOVIE", "MID"),
        ForeignKey("CAST", "MID", "MOVIE", "MID"),
        ForeignKey("CAST", "AID", "ACTOR", "AID"),
        ForeignKey("MOVIE", "DID", "DIRECTOR", "DID"),
    ]
    return DatabaseSchema(relations, fks)


#: (relation, attribute) -> projection weight; heading attributes are 1.
_PROJECTION_WEIGHTS = {
    ("THEATRE", "TID"): 0.2,
    ("THEATRE", "NAME"): 1.0,
    ("THEATRE", "PHONE"): 0.8,
    ("THEATRE", "REGION"): 0.7,
    ("PLAY", "TID"): 0.2,
    ("PLAY", "MID"): 0.2,
    ("PLAY", "DATE"): 0.6,
    ("MOVIE", "MID"): 0.2,
    ("MOVIE", "TITLE"): 1.0,
    ("MOVIE", "YEAR"): 0.9,
    ("MOVIE", "DID"): 0.2,
    ("GENRE", "MID"): 0.2,
    ("GENRE", "GENRE"): 1.0,
    ("CAST", "MID"): 0.2,
    ("CAST", "AID"): 0.2,
    ("CAST", "ROLE"): 0.3,
    ("ACTOR", "AID"): 0.2,
    ("ACTOR", "ANAME"): 1.0,
    ("ACTOR", "BLOCATION"): 0.7,
    ("ACTOR", "BDATE"): 0.6,
    ("DIRECTOR", "DID"): 0.2,
    ("DIRECTOR", "DNAME"): 1.0,
    ("DIRECTOR", "BLOCATION"): 0.9,
    ("DIRECTOR", "BDATE"): 0.9,
}

#: (source, target, source_attr, target_attr, weight)
_JOIN_WEIGHTS = [
    ("MOVIE", "GENRE", "MID", "MID", 0.9),
    ("GENRE", "MOVIE", "MID", "MID", 1.0),
    ("MOVIE", "PLAY", "MID", "MID", 0.7),
    ("PLAY", "MOVIE", "MID", "MID", 1.0),
    ("PLAY", "THEATRE", "TID", "TID", 1.0),
    ("THEATRE", "PLAY", "TID", "TID", 0.7),
    ("MOVIE", "DIRECTOR", "DID", "DID", 0.8),
    ("DIRECTOR", "MOVIE", "DID", "DID", 1.0),
    ("MOVIE", "CAST", "MID", "MID", 0.7),
    ("CAST", "MOVIE", "MID", "MID", 1.0),
    ("CAST", "ACTOR", "AID", "AID", 1.0),
    ("ACTOR", "CAST", "AID", "AID", 1.0),
]


def movies_graph() -> SchemaGraph:
    """The weighted schema graph of Figure 1 (reconstructed weights)."""
    graph = SchemaGraph()
    schema = movies_schema()
    for rs in schema:
        graph.add_relation(rs.name)
        for col in rs.columns:
            weight = _PROJECTION_WEIGHTS[(rs.name, col.name)]
            graph.add_attribute(rs.name, col.name, weight)
    for source, target, src_attr, dst_attr, weight in _JOIN_WEIGHTS:
        graph.add_join(source, target, src_attr, dst_attr, weight)
    return graph


def paper_instance(backend=None) -> Database:
    """The Woody Allen micro-database of Figure 6 / §5.3."""
    data = {
        "DIRECTOR": [
            {
                "DID": 1,
                "DNAME": "Woody Allen",
                "BLOCATION": "Brooklyn, New York, USA",
                "BDATE": "December 1, 1935",
            },
            {
                "DID": 2,
                "DNAME": "Sofia Coppola",
                "BLOCATION": "New York City, USA",
                "BDATE": "May 14, 1971",
            },
        ],
        "ACTOR": [
            {
                "AID": 1,
                "ANAME": "Woody Allen",
                "BLOCATION": "Brooklyn, New York, USA",
                "BDATE": "December 1, 1935",
            },
            {
                "AID": 2,
                "ANAME": "Scarlett Johansson",
                "BLOCATION": "New York City, USA",
                "BDATE": "November 22, 1984",
            },
        ],
        "MOVIE": [
            {"MID": 1, "TITLE": "Match Point", "YEAR": 2005, "DID": 1},
            {"MID": 2, "TITLE": "Melinda and Melinda", "YEAR": 2004, "DID": 1},
            {"MID": 3, "TITLE": "Anything Else", "YEAR": 2003, "DID": 1},
            {"MID": 4, "TITLE": "Hollywood Ending", "YEAR": 2002, "DID": 1},
            {
                "MID": 5,
                "TITLE": "The Curse of the Jade Scorpion",
                "YEAR": 2001,
                "DID": 1,
            },
            {"MID": 6, "TITLE": "Lost in Translation", "YEAR": 2003, "DID": 2},
        ],
        "GENRE": [
            {"MID": 1, "GENRE": "Drama"},
            {"MID": 1, "GENRE": "Thriller"},
            {"MID": 2, "GENRE": "Comedy"},
            {"MID": 2, "GENRE": "Drama"},
            {"MID": 3, "GENRE": "Comedy"},
            {"MID": 3, "GENRE": "Romance"},
            {"MID": 4, "GENRE": "Comedy"},
            {"MID": 5, "GENRE": "Comedy"},
            {"MID": 6, "GENRE": "Drama"},
        ],
        "CAST": [
            {"MID": 4, "AID": 1, "ROLE": "Val Waxman"},
            {"MID": 5, "AID": 1, "ROLE": "C.W. Briggs"},
            {"MID": 1, "AID": 2, "ROLE": "Nola Rice"},
            {"MID": 6, "AID": 2, "ROLE": "Charlotte"},
        ],
        "THEATRE": [
            {
                "TID": 1,
                "NAME": "Odeon",
                "PHONE": "210-555-0101",
                "REGION": "Kifissia",
            },
            {
                "TID": 2,
                "NAME": "Attikon",
                "PHONE": "210-555-0102",
                "REGION": "Syntagma",
            },
        ],
        "PLAY": [
            {"TID": 1, "MID": 1, "DATE": "2005-11-12"},
            {"TID": 1, "MID": 2, "DATE": "2005-11-13"},
            {"TID": 2, "MID": 1, "DATE": "2005-11-12"},
        ],
    }
    return Database.from_rows(movies_schema(), data, backend=backend)


def movies_translation_spec() -> TranslationSpec:
    """Heading attributes, labels and macros reproducing §5.3."""
    spec = TranslationSpec()
    spec.set_heading("THEATRE", "NAME")
    spec.set_heading("MOVIE", "TITLE")
    spec.set_heading("GENRE", "GENRE")
    spec.set_heading("ACTOR", "ANAME")
    spec.set_heading("DIRECTOR", "DNAME")

    # projection labels: heading first, remaining attributes chain into
    # one sentence ("Woody Allen was born on … in … .")
    spec.label_projection("DIRECTOR", "DNAME", "@DNAME")
    spec.label_projection("DIRECTOR", "BDATE", '" was born on "+@BDATE')
    spec.label_projection("DIRECTOR", "BLOCATION", '" in "+@BLOCATION+"."')
    spec.label_projection("ACTOR", "ANAME", "@ANAME")
    spec.label_projection("ACTOR", "BDATE", '" was born on "+@BDATE')
    spec.label_projection("ACTOR", "BLOCATION", '" in "+@BLOCATION+"."')
    spec.label_projection("MOVIE", "TITLE", "@TITLE")
    spec.label_projection("MOVIE", "YEAR", '" ("+@YEAR+")"')
    spec.label_projection("THEATRE", "NAME", "@NAME")
    spec.label_projection("THEATRE", "PHONE", '", phone "+@PHONE')
    spec.label_projection("THEATRE", "REGION", '", in "+@REGION')

    # the MOVIE_LIST macro, verbatim from the paper's §5.3
    spec.define_macro(
        "MOVIE_LIST",
        '[i<ARITYOF(@TITLE)] {@TITLE[$i$]+" ("+@YEAR[$i$]+"), "}'
        '[i=ARITYOF(@TITLE)] {@TITLE[$i$]+" ("+@YEAR[$i$]+")."}',
    )
    spec.define_macro(
        "GENRE_LIST",
        '[i<ARITYOF(@GENRE)] {@GENRE[$i$]+", "}'
        '[i=ARITYOF(@GENRE)] {@GENRE[$i$]+"."}',
    )

    # join labels: label(DIRECTOR, MOVIE) = expr_1 + expr_2 + MOVIE_LIST
    spec.label_join(
        "DIRECTOR",
        "MOVIE",
        '"As a director, "+@DNAME+"\'s work includes "+@MOVIE_LIST',
    )
    # CAST has no heading attribute: the CAST→MOVIE label "signifies the
    # relationship between the previous and subsequent relations" — the
    # actor reached through CAST and the movies beyond it.
    spec.label_join(
        "CAST",
        "MOVIE",
        '"As an actor, "+@ANAME+"\'s work includes "+@MOVIE_LIST',
    )
    spec.label_join("MOVIE", "GENRE", '@TITLE+" is "+@GENRE_LIST')
    spec.label_join(
        "MOVIE",
        "DIRECTOR",
        '@TITLE+" was directed by "+@DNAME+"."',
    )
    spec.label_join(
        "GENRE",
        "MOVIE",
        '"Movies in this genre include "+@MOVIE_LIST',
    )
    # PLAY has no heading attribute, so MOVIE→PLAY carries no label; the
    # PLAY→THEATRE label speaks about the movie inherited from two hops
    # back ("the previous relation", §5.3).
    spec.label_join(
        "PLAY",
        "THEATRE",
        '@TITLE+" plays at "+@NAME+"."',
    )
    return spec


# --------------------------------------------------------------- synthetic

_FIRST_NAMES = (
    "Ava Ben Carla Dan Elena Felix Greta Hugo Iris Jonas Kara Liam Mona "
    "Nina Oscar Petra Quentin Rosa Stefan Thea Uma Victor Wanda Xander "
    "Yara Zeno"
).split()

_LAST_NAMES = (
    "Adler Brandt Castellano Dimitriou Eriksen Fontaine Garcia Hoffmann "
    "Ivanov Jensen Kowalski Lindqvist Moreau Novak Okafor Papadopoulos "
    "Quinn Rossi Schneider Takahashi Umarov Vasquez Weber Xu Yamamoto "
    "Zimmermann"
).split()

_TITLE_HEADS = (
    "Midnight Crimson Silent Golden Broken Hidden Electric Distant "
    "Forgotten Burning Frozen Scarlet Hollow Savage Gentle Restless"
).split()

_TITLE_TAILS = (
    "Harbor River Letters Shadows Empire Garden Station Horizon Mirror "
    "Voyage Orchard Reckoning Symphony Causeway Lantern Meridian"
).split()

_GENRES = (
    "Drama Comedy Thriller Romance Action Documentary Horror Mystery "
    "Western Animation"
).split()

_REGIONS = (
    "Kifissia Syntagma Plaka Marousi Glyfada Pagrati Kolonaki Chalandri"
).split()


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _movie_title(rng: random.Random, mid: int) -> str:
    return f"{rng.choice(_TITLE_HEADS)} {rng.choice(_TITLE_TAILS)} {mid}"


def generate_movies_database(
    n_movies: int = 200,
    seed: int = 0,
    genres_per_movie: tuple[int, int] = (1, 3),
    cast_per_movie: tuple[int, int] = (2, 5),
    plays_per_movie: tuple[int, int] = (0, 3),
    enforce_foreign_keys: bool = True,
    backend=None,
) -> Database:
    """A deterministic synthetic IMDB-like instance of the movies schema.

    Cardinalities scale with *n_movies*: roughly one director per four
    movies, one actor per movie (shared across casts), one theatre per
    ten movies. All randomness flows from *seed*, so equal arguments
    produce identical databases — the benchmarks rely on this.
    """
    if n_movies < 1:
        raise ValueError("n_movies must be positive")
    rng = random.Random(seed)
    n_directors = max(1, n_movies // 4)
    n_actors = max(2, n_movies)
    n_theatres = max(1, n_movies // 10)

    directors = [
        {
            "DID": did,
            "DNAME": _person_name(rng),
            "BLOCATION": f"{rng.choice(_REGIONS)}, Greece",
            "BDATE": f"{rng.randint(1, 28)} {rng.choice(('Jan', 'Apr', 'Jul', 'Oct'))} {rng.randint(1930, 1985)}",
        }
        for did in range(1, n_directors + 1)
    ]
    actors = [
        {
            "AID": aid,
            "ANAME": _person_name(rng),
            "BLOCATION": f"{rng.choice(_REGIONS)}, Greece",
            "BDATE": f"{rng.randint(1, 28)} {rng.choice(('Feb', 'May', 'Aug', 'Nov'))} {rng.randint(1940, 1995)}",
        }
        for aid in range(1, n_actors + 1)
    ]
    theatres = [
        {
            "TID": tid,
            "NAME": f"Cinema {tid}",
            "PHONE": f"210-555-{tid:04d}",
            "REGION": rng.choice(_REGIONS),
        }
        for tid in range(1, n_theatres + 1)
    ]

    movies, genres, casts, plays = [], [], [], []
    for mid in range(1, n_movies + 1):
        movies.append(
            {
                "MID": mid,
                "TITLE": _movie_title(rng, mid),
                "YEAR": rng.randint(1960, 2005),
                "DID": rng.randint(1, n_directors),
            }
        )
        for genre in rng.sample(_GENRES, rng.randint(*genres_per_movie)):
            genres.append({"MID": mid, "GENRE": genre})
        for aid in rng.sample(
            range(1, n_actors + 1), min(n_actors, rng.randint(*cast_per_movie))
        ):
            casts.append(
                {"MID": mid, "AID": aid, "ROLE": _person_name(rng)}
            )
        n_plays = rng.randint(*plays_per_movie)
        tids = rng.sample(
            range(1, n_theatres + 1), min(n_theatres, n_plays)
        )
        for tid in tids:
            plays.append(
                {
                    "TID": tid,
                    "MID": mid,
                    "DATE": f"2005-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                }
            )

    return Database.from_rows(
        movies_schema(),
        {
            "DIRECTOR": directors,
            "ACTOR": actors,
            "THEATRE": theatres,
            "MOVIE": movies,
            "GENRE": genres,
            "CAST": casts,
            "PLAY": plays,
        },
        enforce_foreign_keys=enforce_foreign_keys,
        backend=backend,
    )
