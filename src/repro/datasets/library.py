"""A digital-library schema — the paper's own application context.

The work was "partially supported … as part of the DELOS Network of
Excellence on Digital Libraries", and §1 motivates précis queries with
"libraries, museums, and other organizations publish[ing] their
electronic contents on the Web". This dataset models that setting:

    COLLECTION(cid, cname, curator)
    ITEM(iid, title, year, medium, cid)
    CREATOR(crid, name, nationality, born)
    MADE_BY(iid, crid, role)
    SUBJECT(iid, topic)
    EXHIBITION(eid, ename, venue, opened)
    SHOWN_AT(iid, eid)

Structurally interesting vs the movies schema: two many-to-many bridges
(MADE_BY, SHOWN_AT) and a one-to-many classification (SUBJECT), so the
result-schema traversal exercises longer heading-less chains.
"""

from __future__ import annotations

import random

from ..graph.schema_graph import SchemaGraph
from ..nlg.labels import TranslationSpec
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)

__all__ = [
    "library_schema",
    "library_graph",
    "library_translation_spec",
    "generate_library_database",
]


def library_schema() -> DatabaseSchema:
    text = DataType.TEXT
    integer = DataType.INT
    relations = [
        RelationSchema(
            "COLLECTION",
            [
                Column("CID", integer, nullable=False),
                Column("CNAME", text),
                Column("CURATOR", text),
            ],
            primary_key="CID",
        ),
        RelationSchema(
            "ITEM",
            [
                Column("IID", integer, nullable=False),
                Column("TITLE", text),
                Column("YEAR", integer),
                Column("MEDIUM", text),
                Column("CID", integer),
            ],
            primary_key="IID",
        ),
        RelationSchema(
            "CREATOR",
            [
                Column("CRID", integer, nullable=False),
                Column("NAME", text),
                Column("NATIONALITY", text),
                Column("BORN", integer),
            ],
            primary_key="CRID",
        ),
        RelationSchema(
            "MADE_BY",
            [
                Column("IID", integer, nullable=False),
                Column("CRID", integer, nullable=False),
                Column("ROLE", text),
            ],
            primary_key=("IID", "CRID"),
        ),
        RelationSchema(
            "SUBJECT",
            [
                Column("IID", integer, nullable=False),
                Column("TOPIC", text, nullable=False),
            ],
            primary_key=("IID", "TOPIC"),
        ),
        RelationSchema(
            "EXHIBITION",
            [
                Column("EID", integer, nullable=False),
                Column("ENAME", text),
                Column("VENUE", text),
                Column("OPENED", integer),
            ],
            primary_key="EID",
        ),
        RelationSchema(
            "SHOWN_AT",
            [
                Column("IID", integer, nullable=False),
                Column("EID", integer, nullable=False),
            ],
            primary_key=("IID", "EID"),
        ),
    ]
    fks = [
        ForeignKey("ITEM", "CID", "COLLECTION", "CID"),
        ForeignKey("MADE_BY", "IID", "ITEM", "IID"),
        ForeignKey("MADE_BY", "CRID", "CREATOR", "CRID"),
        ForeignKey("SUBJECT", "IID", "ITEM", "IID"),
        ForeignKey("SHOWN_AT", "IID", "ITEM", "IID"),
        ForeignKey("SHOWN_AT", "EID", "EXHIBITION", "EID"),
    ]
    return DatabaseSchema(relations, fks)


def library_graph() -> SchemaGraph:
    """Designer weighting: items are central; creators bind strongly."""
    graph = SchemaGraph()
    projections = {
        ("COLLECTION", "CID"): 0.1,
        ("COLLECTION", "CNAME"): 1.0,
        ("COLLECTION", "CURATOR"): 0.6,
        ("ITEM", "IID"): 0.1,
        ("ITEM", "TITLE"): 1.0,
        ("ITEM", "YEAR"): 0.9,
        ("ITEM", "MEDIUM"): 0.8,
        ("ITEM", "CID"): 0.1,
        ("CREATOR", "CRID"): 0.1,
        ("CREATOR", "NAME"): 1.0,
        ("CREATOR", "NATIONALITY"): 0.8,
        ("CREATOR", "BORN"): 0.7,
        ("MADE_BY", "IID"): 0.1,
        ("MADE_BY", "CRID"): 0.1,
        ("MADE_BY", "ROLE"): 0.4,
        ("SUBJECT", "IID"): 0.1,
        ("SUBJECT", "TOPIC"): 1.0,
        ("EXHIBITION", "EID"): 0.1,
        ("EXHIBITION", "ENAME"): 1.0,
        ("EXHIBITION", "VENUE"): 0.8,
        ("EXHIBITION", "OPENED"): 0.6,
        ("SHOWN_AT", "IID"): 0.1,
        ("SHOWN_AT", "EID"): 0.1,
    }
    joins = [
        ("ITEM", "COLLECTION", "CID", "CID", 0.8),
        ("COLLECTION", "ITEM", "CID", "CID", 0.9),
        ("MADE_BY", "ITEM", "IID", "IID", 1.0),
        ("ITEM", "MADE_BY", "IID", "IID", 1.0),
        ("MADE_BY", "CREATOR", "CRID", "CRID", 1.0),
        ("CREATOR", "MADE_BY", "CRID", "CRID", 1.0),
        ("SUBJECT", "ITEM", "IID", "IID", 1.0),
        ("ITEM", "SUBJECT", "IID", "IID", 0.9),
        ("SHOWN_AT", "ITEM", "IID", "IID", 1.0),
        ("ITEM", "SHOWN_AT", "IID", "IID", 0.7),
        ("SHOWN_AT", "EXHIBITION", "EID", "EID", 1.0),
        ("EXHIBITION", "SHOWN_AT", "EID", "EID", 0.9),
    ]
    schema = library_schema()
    for rs in schema:
        graph.add_relation(rs.name)
        for col in rs.columns:
            graph.add_attribute(
                rs.name, col.name, projections[(rs.name, col.name)]
            )
    for source, target, src_attr, dst_attr, weight in joins:
        graph.add_join(source, target, src_attr, dst_attr, weight)
    return graph


def library_translation_spec() -> TranslationSpec:
    spec = TranslationSpec()
    spec.set_heading("COLLECTION", "CNAME")
    spec.set_heading("ITEM", "TITLE")
    spec.set_heading("CREATOR", "NAME")
    spec.set_heading("SUBJECT", "TOPIC")
    spec.set_heading("EXHIBITION", "ENAME")

    spec.label_projection("CREATOR", "NAME", "@NAME")
    spec.label_projection("CREATOR", "NATIONALITY", '", "+@NATIONALITY')
    spec.label_projection("CREATOR", "BORN", '", born "+@BORN+"."')
    spec.label_projection("ITEM", "TITLE", "@TITLE")
    spec.label_projection("ITEM", "YEAR", '" ("+@YEAR+")"')
    spec.label_projection("ITEM", "MEDIUM", '", "+@MEDIUM+"."')

    spec.define_macro(
        "WORK_LIST",
        '[i<ARITYOF(@TITLE)] {@TITLE[$i$]+" ("+@YEAR[$i$]+"), "}'
        '[i=ARITYOF(@TITLE)] {@TITLE[$i$]+" ("+@YEAR[$i$]+")."}',
    )
    # CREATOR → MADE_BY carries no label (bridge without heading); the
    # clause surfaces one hop out at MADE_BY → ITEM
    spec.label_join(
        "MADE_BY", "ITEM", '"Works by "+@NAME+" include "+@WORK_LIST'
    )
    spec.label_join(
        "ITEM", "SUBJECT",
        '@TITLE+" is catalogued under "'
        '+[i<ARITYOF(@TOPIC)] {@TOPIC[$i$]+", "}'
        '[i=ARITYOF(@TOPIC)] {@TOPIC[$i$]+"."}',
    )
    spec.label_join(
        "SHOWN_AT", "EXHIBITION",
        '@TITLE+" was shown at "+@ENAME+" ("+@VENUE+")."',
    )
    spec.label_join(
        "ITEM", "COLLECTION",
        '@TITLE+" belongs to the "+@CNAME+" collection."',
    )
    spec.label_join(
        "COLLECTION", "ITEM",
        '"The "+@CNAME+" collection holds "+@WORK_LIST',
    )
    return spec


_MEDIA = ["oil on canvas", "bronze", "manuscript", "photograph", "etching"]
_TOPICS = (
    "mythology landscape portrait maritime astronomy botany warfare "
    "architecture music daily-life"
).split()
_NATIONALITIES = ["Italian", "Dutch", "Greek", "French", "Japanese"]
_VENUES = ["Main Gallery", "East Wing", "City Museum", "Harbour Hall"]
_NAME_PARTS = (
    "Adriana Benedetto Chiara Dimitri Elena Frans Giulia Hiroshi Irene "
    "Jacopo Katerina Lorenzo".split(),
    "Albani Bruegel Castellanos Doukas Esposito Fontana Grigoriou "
    "Hokusai Iwasaki Jansen Kallergis Lombardi".split(),
)


def generate_library_database(
    n_items: int = 150, seed: int = 0, backend=None
) -> Database:
    """Deterministic synthetic library instance."""
    rng = random.Random(seed)
    n_collections = max(1, n_items // 25)
    n_creators = max(2, n_items // 3)
    n_exhibitions = max(1, n_items // 30)
    collections = [
        {
            "CID": cid,
            "CNAME": f"Collection {cid}",
            "CURATOR": f"{rng.choice(_NAME_PARTS[0])} {rng.choice(_NAME_PARTS[1])}",
        }
        for cid in range(1, n_collections + 1)
    ]
    creators = [
        {
            "CRID": crid,
            "NAME": f"{rng.choice(_NAME_PARTS[0])} {rng.choice(_NAME_PARTS[1])}",
            "NATIONALITY": rng.choice(_NATIONALITIES),
            "BORN": rng.randint(1500, 1950),
        }
        for crid in range(1, n_creators + 1)
    ]
    exhibitions = [
        {
            "EID": eid,
            "ENAME": f"Exhibition {eid}",
            "VENUE": rng.choice(_VENUES),
            "OPENED": rng.randint(1990, 2005),
        }
        for eid in range(1, n_exhibitions + 1)
    ]
    items, made_by, subjects, shown_at = [], [], [], []
    for iid in range(1, n_items + 1):
        items.append(
            {
                "IID": iid,
                "TITLE": f"{rng.choice(_TOPICS).title()} Study {iid}",
                "YEAR": rng.randint(1500, 2005),
                "MEDIUM": rng.choice(_MEDIA),
                "CID": rng.randint(1, n_collections),
            }
        )
        for crid in rng.sample(
            range(1, n_creators + 1), rng.randint(1, 2)
        ):
            made_by.append(
                {"IID": iid, "CRID": crid, "ROLE": rng.choice(
                    ["artist", "workshop", "attributed"]
                )}
            )
        for topic in rng.sample(_TOPICS, rng.randint(1, 3)):
            subjects.append({"IID": iid, "TOPIC": topic})
        for eid in rng.sample(
            range(1, n_exhibitions + 1),
            min(n_exhibitions, rng.randint(0, 2)),
        ):
            shown_at.append({"IID": iid, "EID": eid})
    return Database.from_rows(
        library_schema(),
        {
            "COLLECTION": collections,
            "CREATOR": creators,
            "EXHIBITION": exhibitions,
            "ITEM": items,
            "MADE_BY": made_by,
            "SUBJECT": subjects,
            "SHOWN_AT": shown_at,
        },
        backend=backend,
    )
