"""A second, independent schema (university) for tests and examples.

Exercises précis machinery on a topology different from the movies
schema: a chain DEPARTMENT ← INSTRUCTOR ← TEACHES → COURSE plus a
many-to-many STUDENT/ENROLLED/COURSE diamond. Useful for checking that
nothing is accidentally movies-specific, and as the substrate of the
test-database-extraction example (the §1 enterprise use case).
"""

from __future__ import annotations

import random

from ..graph.schema_graph import SchemaGraph, graph_from_schema
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)

__all__ = ["university_schema", "university_graph", "generate_university_database"]


def university_schema() -> DatabaseSchema:
    text = DataType.TEXT
    integer = DataType.INT
    relations = [
        RelationSchema(
            "DEPARTMENT",
            [
                Column("DEPTID", integer, nullable=False),
                Column("DNAME", text),
                Column("BUILDING", text),
            ],
            primary_key="DEPTID",
        ),
        RelationSchema(
            "INSTRUCTOR",
            [
                Column("IID", integer, nullable=False),
                Column("INAME", text),
                Column("DEPTID", integer),
                Column("TITLE", text),
            ],
            primary_key="IID",
        ),
        RelationSchema(
            "COURSE",
            [
                Column("CID", integer, nullable=False),
                Column("CNAME", text),
                Column("CREDITS", integer),
                Column("DEPTID", integer),
            ],
            primary_key="CID",
        ),
        RelationSchema(
            "TEACHES",
            [
                Column("IID", integer, nullable=False),
                Column("CID", integer, nullable=False),
                Column("SEMESTER", text),
            ],
            primary_key=("IID", "CID"),
        ),
        RelationSchema(
            "STUDENT",
            [
                Column("SID", integer, nullable=False),
                Column("SNAME", text),
                Column("YEAR", integer),
            ],
            primary_key="SID",
        ),
        RelationSchema(
            "ENROLLED",
            [
                Column("SID", integer, nullable=False),
                Column("CID", integer, nullable=False),
                Column("GRADE", text),
            ],
            primary_key=("SID", "CID"),
        ),
    ]
    fks = [
        ForeignKey("INSTRUCTOR", "DEPTID", "DEPARTMENT", "DEPTID"),
        ForeignKey("COURSE", "DEPTID", "DEPARTMENT", "DEPTID"),
        ForeignKey("TEACHES", "IID", "INSTRUCTOR", "IID"),
        ForeignKey("TEACHES", "CID", "COURSE", "CID"),
        ForeignKey("ENROLLED", "SID", "STUDENT", "SID"),
        ForeignKey("ENROLLED", "CID", "COURSE", "CID"),
    ]
    return DatabaseSchema(relations, fks)


def university_graph() -> SchemaGraph:
    """A designer-flavoured weighting of the university schema."""
    graph = graph_from_schema(
        university_schema(),
        default_projection_weight=0.4,
        default_join_weight=0.7,
    )
    headings = {
        "DEPARTMENT": "DNAME",
        "INSTRUCTOR": "INAME",
        "COURSE": "CNAME",
        "STUDENT": "SNAME",
    }
    for relation, attribute in headings.items():
        graph.set_projection_weight(relation, attribute, 1.0)
    graph.set_projection_weight("COURSE", "CREDITS", 0.8)
    graph.set_projection_weight("INSTRUCTOR", "TITLE", 0.8)
    graph.set_projection_weight("STUDENT", "YEAR", 0.7)
    graph.set_join_weight("COURSE", "TEACHES", 0.9)
    graph.set_join_weight("TEACHES", "INSTRUCTOR", 1.0)
    graph.set_join_weight("INSTRUCTOR", "TEACHES", 0.9)
    graph.set_join_weight("TEACHES", "COURSE", 1.0)
    graph.set_join_weight("COURSE", "DEPARTMENT", 0.8)
    graph.set_join_weight("DEPARTMENT", "COURSE", 0.9)
    graph.set_join_weight("ENROLLED", "COURSE", 1.0)
    graph.set_join_weight("COURSE", "ENROLLED", 0.4)
    graph.set_join_weight("ENROLLED", "STUDENT", 1.0)
    graph.set_join_weight("STUDENT", "ENROLLED", 0.9)
    return graph


_DEPTS = ["Informatics", "Mathematics", "Physics", "History", "Biology"]
_BUILDINGS = ["North Hall", "South Hall", "Main Building", "Annex"]
_COURSE_WORDS = (
    "Databases Algorithms Calculus Mechanics Genetics Logic Networks "
    "Statistics Compilers Topology Thermodynamics Archaeology"
).split()
_NAMES = (
    "Alice Bob Carol David Eva Frank Georgia Hans Ioanna Jan Katerina "
    "Lukas Maria Nikos Olga Pavlos Rita Stavros Tina Ulrich Vera"
).split()
_SURNAMES = (
    "Andreou Bauer Christou Dunkel Economou Fischer Galanis Huber "
    "Katsaros Lang Markou Neumann Oikonomou Petrou Richter Stavrou"
).split()


def generate_university_database(
    n_students: int = 100, n_courses: int = 20, seed: int = 0, backend=None
) -> Database:
    """Deterministic synthetic university instance."""
    rng = random.Random(seed)
    n_instructors = max(2, n_courses // 2)
    departments = [
        {
            "DEPTID": i + 1,
            "DNAME": name,
            "BUILDING": rng.choice(_BUILDINGS),
        }
        for i, name in enumerate(_DEPTS)
    ]
    instructors = [
        {
            "IID": iid,
            "INAME": f"{rng.choice(_NAMES)} {rng.choice(_SURNAMES)}",
            "DEPTID": rng.randint(1, len(_DEPTS)),
            "TITLE": rng.choice(
                ["Professor", "Associate Professor", "Lecturer"]
            ),
        }
        for iid in range(1, n_instructors + 1)
    ]
    courses = [
        {
            "CID": cid,
            "CNAME": f"{rng.choice(_COURSE_WORDS)} {_roman(cid)}",
            "CREDITS": rng.choice([3, 4, 6]),
            "DEPTID": rng.randint(1, len(_DEPTS)),
        }
        for cid in range(1, n_courses + 1)
    ]
    teaches = []
    for cid in range(1, n_courses + 1):
        for iid in rng.sample(
            range(1, n_instructors + 1), rng.randint(1, min(2, n_instructors))
        ):
            teaches.append(
                {
                    "IID": iid,
                    "CID": cid,
                    "SEMESTER": rng.choice(["Fall", "Spring"]),
                }
            )
    students = [
        {
            "SID": sid,
            "SNAME": f"{rng.choice(_NAMES)} {rng.choice(_SURNAMES)}",
            "YEAR": rng.randint(1, 5),
        }
        for sid in range(1, n_students + 1)
    ]
    enrolled = []
    for sid in range(1, n_students + 1):
        for cid in rng.sample(
            range(1, n_courses + 1), rng.randint(1, min(5, n_courses))
        ):
            enrolled.append(
                {
                    "SID": sid,
                    "CID": cid,
                    "GRADE": rng.choice(["A", "B", "C", "D"]),
                }
            )
    return Database.from_rows(
        university_schema(),
        {
            "DEPARTMENT": departments,
            "INSTRUCTOR": instructors,
            "COURSE": courses,
            "TEACHES": teaches,
            "STUDENT": students,
            "ENROLLED": enrolled,
        },
        backend=backend,
    )


def _roman(number: int) -> str:
    """Small roman numerals for course names (1..3999)."""
    numerals = [
        (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"),
        (100, "C"), (90, "XC"), (50, "L"), (40, "XL"),
        (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
    ]
    out = []
    for value, glyph in numerals:
        while number >= value:
            out.append(glyph)
            number -= value
    return "".join(out)
