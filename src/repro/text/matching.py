"""Token-matching helpers above the raw inverted index.

The paper (§5.1) notes two orthogonal complications of free-form tokens:

* **homonyms** — one value naming several real-world objects (Woody Allen
  the director *and* the actor). In the absence of extra knowledge the
  system "may return multiple answers, one for each homonym"; the précis
  engine does exactly that, and :func:`group_homonyms` is where the
  per-occurrence split is computed.
* **synonyms** — several values naming one object ("W. Allen" vs "Woody
  Allen"). The paper defers to external data-cleaning work; we provide a
  lightweight :class:`SynonymMap` that rewrites query tokens before index
  lookup, which is enough to exercise that code path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .inverted_index import InvertedIndex, Occurrence
from .tokenizer import normalize, tokenize

__all__ = ["SynonymMap", "TokenMatch", "match_tokens", "group_homonyms"]


class SynonymMap:
    """A canonicalization map applied to query tokens before lookup.

    >>> synonyms = SynonymMap()
    >>> synonyms.add_synonym("W. Allen", "Woody Allen")
    >>> synonyms.canonicalize("w allen")
    'woody allen'
    """

    def __init__(self):
        self._canonical: dict[str, str] = {}

    def add_synonym(self, variant: str, canonical: str) -> None:
        self._canonical[self._key(variant)] = self._key(canonical)

    @staticmethod
    def _key(text: str) -> str:
        return " ".join(t.text for t in tokenize(text))

    def canonicalize(self, token: str) -> str:
        key = self._key(token)
        seen = {key}
        while key in self._canonical:
            key = self._canonical[key]
            if key in seen:  # defensive: cycles in user-supplied maps
                break
            seen.add(key)
        return key

    def __len__(self):
        return len(self._canonical)


@dataclass(frozen=True)
class TokenMatch:
    """The resolved occurrences of one query token."""

    token: str
    occurrences: tuple[Occurrence, ...]

    @property
    def found(self) -> bool:
        return bool(self.occurrences)

    @property
    def relations(self) -> tuple[str, ...]:
        return tuple(sorted({occ.relation for occ in self.occurrences}))


def match_tokens(
    index: InvertedIndex,
    tokens: Iterable[str | Sequence[str]],
    synonyms: SynonymMap | None = None,
) -> list[TokenMatch]:
    """Resolve every query token against the index.

    Tokens may be strings (multi-word strings are phrase-matched) or
    pre-split word sequences. Unmatched tokens yield an empty
    :class:`TokenMatch` so the caller can report them.
    """
    out = []
    for token in tokens:
        if isinstance(token, str):
            text = token
        else:
            text = " ".join(token)
        if synonyms is not None:
            text = synonyms.canonicalize(text)
        occurrences = tuple(index.lookup_token(text))
        out.append(TokenMatch(normalize(text), occurrences))
    return out


def group_homonyms(match: TokenMatch) -> list[Occurrence]:
    """One entry per distinct occurrence of the token.

    Each (relation, attribute) occurrence is treated as a potential
    distinct real-world object — the paper's homonym policy of producing
    "one answer for each token occurrence". Ordering is deterministic
    (relation, then attribute).
    """
    return sorted(
        match.occurrences, key=lambda occ: (occ.relation, occ.attribute)
    )
