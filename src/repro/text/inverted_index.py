"""The inverted index of paper §4.

    "An inverted index associates each token that appears in the database
    with a list of occurrences of the token. Each occurrence is recorded
    as an attribute-relation pair, (R_j, A_lj). For each such pair, the
    list Tids_lj of ids of tuples from R_j in which A_lj includes the
    token, is also returned."

This implementation is positional, so multi-word query tokens (phrases
like ``"Woody Allen"``) match only tuples whose attribute value contains
the words *contiguously and in order* — matching the paper's treatment of
a person's name as a single token.

The index is maintainable (``add_value`` / ``remove_value``) and can be
(re)built from any :class:`~repro.relational.database.Database`, indexing
every TEXT column by default or an explicit attribute subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..obs import NULL_TRACER, Tracer
from ..relational.database import Database
from ..relational.datatypes import DataType, render
from .tokenizer import normalize, tokenize

__all__ = ["Occurrence", "InvertedIndex", "build_index"]


@dataclass(frozen=True)
class Occurrence:
    """All matches of one token within one (relation, attribute) pair."""

    relation: str
    attribute: str
    tids: frozenset[int]

    def __repr__(self):
        return (
            f"Occurrence({self.relation}.{self.attribute}, "
            f"{len(self.tids)} tuples)"
        )


# posting structure: word -> (relation, attribute) -> tid -> positions
_Postings = dict[str, dict[tuple[str, str], dict[int, list[int]]]]


class InvertedIndex:
    """Positional inverted index over the textual content of a database."""

    def __init__(self):
        self._postings: _Postings = {}
        self._indexed_attributes: set[tuple[str, str]] = set()
        self._documents = 0
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Monotonic maintenance counter — the index's cache-validity
        token (see :mod:`repro.cache.versions`). Bumped by every
        :meth:`add_value` / :meth:`remove_value`, including the ones a
        bulk :meth:`index_database` issues."""
        return self._epoch

    # ------------------------------------------------------------- building

    def index_database(
        self,
        db: Database,
        attributes: Optional[Iterable[tuple[str, str]]] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> "InvertedIndex":
        """Index *db* and return self.

        *attributes* is an iterable of ``(relation, attribute)`` pairs; if
        omitted, every TEXT column of every relation is indexed. Non-TEXT
        columns may be listed explicitly — their values are indexed by
        their text rendering (useful for, e.g., years).

        *tracer* (``repro.obs``, no-op by default) wraps the build in a
        ``"build_index"`` span counting ``attributes_indexed`` and
        ``values_indexed``.
        """
        if attributes is None:
            pairs = [
                (rs.name, col.name)
                for rs in db.schema
                for col in rs.columns
                if col.dtype is DataType.TEXT
            ]
        else:
            pairs = list(attributes)
        by_relation: dict[str, list[str]] = {}
        for relation, attribute in pairs:
            db.relation(relation).schema.column(attribute)  # validate
            self._indexed_attributes.add((relation, attribute))
            by_relation.setdefault(relation, []).append(attribute)
        with tracer.span("build_index"):
            values_indexed = 0
            for relation, attrs in by_relation.items():
                rel = db.relation(relation)
                positions = [(a, rel.schema.position(a)) for a in attrs]
                # one raw storage scan per relation: index building is
                # maintenance work, outside the paper's metered cost model
                for tid, stored in rel.store.scan():
                    for attribute, pos in positions:
                        value = stored[pos]
                        if value is not None:
                            self.add_value(
                                relation, attribute, tid, render(value)
                            )
                            values_indexed += 1
            tracer.count("attributes_indexed", len(pairs))
            tracer.count("values_indexed", values_indexed)
        return self

    def add_value(
        self, relation: str, attribute: str, tid: int, text: str
    ) -> None:
        """Index one attribute value."""
        self._epoch += 1
        self._indexed_attributes.add((relation, attribute))
        key = (relation, attribute)
        tokens = tokenize(text)
        if tokens:
            self._documents += 1
        for token in tokens:
            by_attr = self._postings.setdefault(token.text, {})
            by_tid = by_attr.setdefault(key, {})
            by_tid.setdefault(tid, []).append(token.position)

    def remove_value(
        self, relation: str, attribute: str, tid: int, text: str
    ) -> None:
        """Remove a previously indexed value (must pass the same text)."""
        self._epoch += 1
        key = (relation, attribute)
        tokens = tokenize(text)
        if tokens:
            self._documents = max(0, self._documents - 1)
        for token in tokens:
            by_attr = self._postings.get(token.text)
            if not by_attr:
                continue
            by_tid = by_attr.get(key)
            if not by_tid:
                continue
            by_tid.pop(tid, None)
            if not by_tid:
                del by_attr[key]
            if not by_attr:
                del self._postings[token.text]

    # ------------------------------------------------------------- lookups

    def lookup_word(self, word: str) -> list[Occurrence]:
        """Occurrences of a single word, grouped by (relation, attribute)."""
        by_attr = self._postings.get(normalize(word), {})
        return [
            Occurrence(relation, attribute, frozenset(by_tid))
            for (relation, attribute), by_tid in sorted(by_attr.items())
        ]

    def lookup_phrase(self, words: Sequence[str]) -> list[Occurrence]:
        """Occurrences where *words* appear contiguously, in order."""
        words = [normalize(w) for w in words]
        if not words:
            return []
        if len(words) == 1:
            return self.lookup_word(words[0])
        first = self._postings.get(words[0])
        if not first:
            return []
        out: list[Occurrence] = []
        for key in sorted(first):
            survivors: dict[int, set[int]] = {
                tid: set(positions) for tid, positions in first[key].items()
            }
            for offset, word in enumerate(words[1:], start=1):
                by_attr = self._postings.get(word)
                if not by_attr or key not in by_attr:
                    survivors = {}
                    break
                nxt = by_attr[key]
                survivors = {
                    tid: {
                        p
                        for p in starts
                        if tid in nxt and p + offset in nxt[tid]
                    }
                    for tid, starts in survivors.items()
                }
                survivors = {t: s for t, s in survivors.items() if s}
                if not survivors:
                    break
            if survivors:
                out.append(
                    Occurrence(key[0], key[1], frozenset(survivors))
                )
        return out

    def lookup_token(self, token: str | Sequence[str]) -> list[Occurrence]:
        """Occurrences of a précis query token (word or phrase).

        Accepts either a raw string (tokenized here; multi-word strings
        become phrases) or a pre-tokenized word sequence.
        """
        if isinstance(token, str):
            words = [t.text for t in tokenize(token)]
        else:
            words = list(token)
        return self.lookup_phrase(words)

    def contains_word(self, word: str) -> bool:
        return normalize(word) in self._postings

    # ------------------------------------------------------------- stats

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def indexed_attributes(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._indexed_attributes)

    def postings_count(self) -> int:
        """Total number of (word, attribute, tid) postings."""
        return sum(
            len(by_tid)
            for by_attr in self._postings.values()
            for by_tid in by_attr.values()
        )

    def __repr__(self):
        return (
            f"InvertedIndex({self.vocabulary_size} words, "
            f"{self.postings_count()} postings, "
            f"{len(self._indexed_attributes)} attributes)"
        )


def build_index(
    db: Database,
    attributes: Optional[Iterable[tuple[str, str]]] = None,
    tracer: Tracer = NULL_TRACER,
) -> InvertedIndex:
    """Convenience: ``InvertedIndex().index_database(db, attributes)``."""
    return InvertedIndex().index_database(db, attributes, tracer=tracer)
