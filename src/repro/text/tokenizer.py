"""Tokenization of attribute values and query strings.

The inverted index and the query front-end must agree on what a token is;
both use this module. Tokens are case-folded word sequences; punctuation
splits, apostrophes inside words are kept (``o'brien`` is one token), and
positions are preserved so the index can answer phrase queries such as
the paper's running example token ``"Woody Allen"``.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Token", "tokenize", "normalize", "query_tokens"]

_WORD_RE = re.compile(r"[0-9A-Za-z]+(?:'[0-9A-Za-z]+)*")


def normalize(word: str) -> str:
    """Case-fold and strip diacritics: ``Précis`` -> ``precis``."""
    decomposed = unicodedata.normalize("NFKD", word)
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    return stripped.casefold()


@dataclass(frozen=True)
class Token:
    """A normalized word with its ordinal position in the source text."""

    text: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split *text* into normalized, positioned tokens.

    >>> [t.text for t in tokenize("Woody Allen's 'Match Point' (2005)")]
    ['woody', "allen's", 'match', 'point', '2005']
    """
    if not text:
        return []
    return [
        Token(normalize(match.group()), position)
        for position, match in enumerate(_WORD_RE.finditer(text))
    ]


def query_tokens(query: str) -> list[tuple[str, ...]]:
    """Parse a free-form précis query string into tokens.

    The paper's query model is a set of tokens ``Q = {k1, …, km}`` where a
    token may be a multi-word value such as ``Woody Allen``. We follow the
    common convention: double-quoted segments form one (phrase) token,
    everything else splits on words.

    >>> query_tokens('"Woody Allen" comedy')
    [('woody', 'allen'), ('comedy',)]
    """
    out: list[tuple[str, ...]] = []
    pos = 0
    for match in re.finditer(r'"([^"]*)"', query):
        for token in tokenize(query[pos : match.start()]):
            out.append((token.text,))
        phrase = tuple(t.text for t in tokenize(match.group(1)))
        if phrase:
            out.append(phrase)
        pos = match.end()
    for token in tokenize(query[pos:]):
        out.append((token.text,))
    return out


def words(text: str) -> Iterator[str]:
    """Just the normalized words of *text*, no positions."""
    for token in tokenize(text):
        yield token.text
