"""A small English stopword list.

Stopword filtering is **off by default** in the inverted index: database
values are short and every word may be discriminating (a genre literally
called "The" would be findable). The query front-end may opt in to drop
stopwords from multi-word free-form queries.
"""

from __future__ import annotations

__all__ = ["ENGLISH_STOPWORDS", "is_stopword"]

ENGLISH_STOPWORDS = frozenset(
    """
    a an and are as at be but by for from had has have he her his i in is
    it its of on or she that the their them they this to was were will
    with
    """.split()
)


def is_stopword(word: str) -> bool:
    """True iff the (already normalized) word is an English stopword."""
    return word in ENGLISH_STOPWORDS
