"""IR-style relevance scoring over the inverted index.

The paper's related work (§2) notes that keyword-search systems rank
answers either by "the number of joins [8]" or by "IR-style
answer-relevance ranking [9]" (Hristidis, Gravano & Papakonstantinou,
VLDB 2003). The DISCOVER-style baseline supports both; this module
supplies the IR half: classic TF·IDF over attribute values, where each
(relation, attribute, tuple) value is one document.

* ``tf(word, doc)`` — occurrences of the word in the value (available
  directly from the positional postings);
* ``idf(word)`` — ``ln(1 + N/df)`` with ``N`` the number of indexed
  documents and ``df`` the number of documents containing the word;
* a multi-word (phrase) token scores as the sum of its words, over
  documents that contain the *phrase*.
"""

from __future__ import annotations

import math
from typing import Sequence

from .inverted_index import InvertedIndex
from .tokenizer import normalize, tokenize

__all__ = ["TfIdfScorer"]

#: a scored document: one attribute value of one tuple
DocKey = tuple[str, str, int]  # (relation, attribute, tid)


class TfIdfScorer:
    """TF·IDF scoring backed by a positional inverted index."""

    def __init__(self, index: InvertedIndex):
        self.index = index
        self._n_documents = max(1, self._count_documents())

    def _count_documents(self) -> int:
        docs: set[DocKey] = set()
        for word, by_attr in self.index._postings.items():  # noqa: SLF001
            for (relation, attribute), by_tid in by_attr.items():
                for tid in by_tid:
                    docs.add((relation, attribute, tid))
        return len(docs)

    # ----------------------------------------------------------------- parts

    def document_frequency(self, word: str) -> int:
        by_attr = self.index._postings.get(normalize(word), {})  # noqa: SLF001
        return sum(len(by_tid) for by_tid in by_attr.values())

    def idf(self, word: str) -> float:
        df = self.document_frequency(word)
        if df == 0:
            return 0.0
        return math.log(1.0 + self._n_documents / df)

    def tf(self, word: str, doc: DocKey) -> int:
        relation, attribute, tid = doc
        by_attr = self.index._postings.get(normalize(word), {})  # noqa: SLF001
        return len(by_attr.get((relation, attribute), {}).get(tid, ()))

    # ----------------------------------------------------------------- score

    def score_token(self, token: str | Sequence[str]) -> dict[DocKey, float]:
        """TF·IDF score per document containing the token.

        Multi-word tokens are phrase-matched first (only documents
        containing the contiguous phrase score at all), then each word
        contributes ``tf·idf``.
        """
        if isinstance(token, str):
            words = [t.text for t in tokenize(token)]
        else:
            words = [normalize(w) for w in token]
        if not words:
            return {}
        scores: dict[DocKey, float] = {}
        for occurrence in self.index.lookup_phrase(words):
            for tid in occurrence.tids:
                doc = (occurrence.relation, occurrence.attribute, tid)
                scores[doc] = sum(
                    self.tf(word, doc) * self.idf(word) for word in words
                )
        return scores

    def score_tuple(
        self, token: str | Sequence[str], relation: str, tid: int
    ) -> float:
        """Best score of the token over any attribute of one tuple."""
        best = 0.0
        for (rel, __, doc_tid), score in self.score_token(token).items():
            if rel == relation and doc_tid == tid:
                best = max(best, score)
        return best

    @property
    def n_documents(self) -> int:
        return self._n_documents
