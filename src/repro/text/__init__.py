"""Full-text substrate: tokenization and the paper's inverted index (§4)."""

from .inverted_index import InvertedIndex, Occurrence, build_index
from .maintenance import SynchronizedWriter
from .matching import SynonymMap, TokenMatch, group_homonyms, match_tokens
from .scoring import TfIdfScorer
from .persistence import index_from_dict, index_to_dict, load_index, save_index
from .stopwords import ENGLISH_STOPWORDS, is_stopword
from .tokenizer import Token, normalize, query_tokens, tokenize

__all__ = [
    "InvertedIndex",
    "Occurrence",
    "build_index",
    "SynonymMap",
    "TokenMatch",
    "match_tokens",
    "group_homonyms",
    "Token",
    "tokenize",
    "normalize",
    "query_tokens",
    "ENGLISH_STOPWORDS",
    "is_stopword",
    "save_index",
    "load_index",
    "index_to_dict",
    "index_from_dict",
    "SynchronizedWriter",
    "TfIdfScorer",
]
