"""Inverted-index persistence.

The paper's system keeps its inverted index alongside the database; for
a library, being able to build once and reload cheaply matters as soon
as databases get large. The format is a single JSON document mapping
words to postings; positions are preserved so phrase queries work after
a reload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .inverted_index import InvertedIndex

__all__ = ["save_index", "load_index", "index_to_dict", "index_from_dict"]

_FORMAT_VERSION = 1


def index_to_dict(index: InvertedIndex) -> dict:
    """Serialize to plain JSON-compatible data."""
    postings = {}
    for word, by_attr in index._postings.items():  # noqa: SLF001
        postings[word] = [
            {
                "relation": relation,
                "attribute": attribute,
                "tids": {
                    str(tid): positions for tid, positions in by_tid.items()
                },
            }
            for (relation, attribute), by_tid in sorted(by_attr.items())
        ]
    return {
        "version": _FORMAT_VERSION,
        "attributes": sorted(index.indexed_attributes),
        "postings": postings,
    }


def index_from_dict(data: dict) -> InvertedIndex:
    """Inverse of :func:`index_to_dict`."""
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format version {data.get('version')!r}"
        )
    index = InvertedIndex()
    for relation, attribute in data.get("attributes", []):
        index._indexed_attributes.add((relation, attribute))  # noqa: SLF001
    postings = index._postings  # noqa: SLF001
    for word, entries in data.get("postings", {}).items():
        by_attr = postings.setdefault(word, {})
        for entry in entries:
            key = (entry["relation"], entry["attribute"])
            by_attr[key] = {
                int(tid): list(positions)
                for tid, positions in entry["tids"].items()
            }
    return index


def save_index(index: InvertedIndex, path: Union[str, Path]) -> Path:
    """Write the index to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(index_to_dict(index)))
    return path


def load_index(path: Union[str, Path]) -> InvertedIndex:
    """Load an index previously written by :func:`save_index`."""
    return index_from_dict(json.loads(Path(path).read_text()))
