"""Keeping the inverted index synchronized with a live database.

The paper's system builds its index once over a static IMDB dump; a
library must also serve databases that change. :class:`SynchronizedWriter`
wraps a database + index pair and routes inserts/deletes through both,
so précis answers immediately reflect new data. Attributes indexed are
whatever the index already covers (plus any TEXT column of relations
never seen before, matching ``build_index``'s default).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..relational.database import Database
from ..relational.datatypes import DataType, render
from .inverted_index import InvertedIndex

__all__ = ["SynchronizedWriter"]


class SynchronizedWriter:
    """Insert/delete through the database and the inverted index at once."""

    def __init__(self, db: Database, index: InvertedIndex):
        self.db = db
        self.index = index

    # ----------------------------------------------------------------- info

    def _indexed_attributes(self, relation: str) -> list[str]:
        known = [
            attribute
            for (rel, attribute) in self.index.indexed_attributes
            if rel == relation
        ]
        if known:
            return known
        # relation never indexed: adopt the build_index default (all
        # TEXT columns)
        schema = self.db.relation(relation).schema
        return [
            col.name for col in schema.columns if col.dtype is DataType.TEXT
        ]

    # ---------------------------------------------------------------- writes

    def insert(
        self, relation: str, values: Mapping[str, Any] | Sequence[Any]
    ) -> int:
        """Insert a tuple and index its text content; returns the tid."""
        tid = self.db.insert(relation, values)
        row = self.db.relation(relation).fetch(tid)
        for attribute in self._indexed_attributes(relation):
            value = row.get(attribute)
            if value is not None:
                self.index.add_value(relation, attribute, tid, render(value))
        return tid

    def delete(self, relation: str, tid: int) -> None:
        """Remove a tuple from both the database and the index."""
        row = self.db.relation(relation).fetch(tid)
        for attribute in self._indexed_attributes(relation):
            value = row.get(attribute)
            if value is not None:
                self.index.remove_value(
                    relation, attribute, tid, render(value)
                )
        self.db.relation(relation).delete(tid)

    def update(
        self,
        relation: str,
        tid: int,
        changes: Mapping[str, Any],
    ) -> int:
        """Replace attribute values of one tuple (delete + re-insert;

        the tuple receives a fresh tid, which is returned)."""
        row = self.db.relation(relation).fetch(tid)
        values = row.as_dict()
        unknown = set(changes) - set(values)
        if unknown:
            raise KeyError(
                f"unknown attributes for {relation}: {sorted(unknown)}"
            )
        values.update(changes)
        self.delete(relation, tid)
        return self.insert(relation, values)
