"""Keeping the inverted index synchronized with a live database.

The paper's system builds its index once over a static IMDB dump; a
library must also serve databases that change. :class:`SynchronizedWriter`
wraps a database + index pair and routes inserts/deletes through both,
so précis answers immediately reflect new data. Attributes indexed are
whatever the index already covers (plus any TEXT column of relations
never seen before, matching ``build_index``'s default).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..relational.database import Database
from ..relational.datatypes import DataType, render
from .inverted_index import InvertedIndex

__all__ = ["SynchronizedWriter"]


class SynchronizedWriter:
    """Insert/delete through the database and the inverted index at once."""

    def __init__(self, db: Database, index: InvertedIndex):
        self.db = db
        self.index = index

    # ----------------------------------------------------------------- info

    def _indexed_attributes(self, relation: str) -> list[str]:
        known = [
            attribute
            for (rel, attribute) in self.index.indexed_attributes
            if rel == relation
        ]
        if known:
            return known
        # relation never indexed: adopt the build_index default (all
        # TEXT columns)
        schema = self.db.relation(relation).schema
        return [
            col.name for col in schema.columns if col.dtype is DataType.TEXT
        ]

    # ---------------------------------------------------------------- writes

    def insert(
        self, relation: str, values: Mapping[str, Any] | Sequence[Any]
    ) -> int:
        """Insert a tuple and index its text content; returns the tid."""
        tid = self.db.insert(relation, values)
        row = self.db.relation(relation).fetch(tid)
        for attribute in self._indexed_attributes(relation):
            value = row.get(attribute)
            if value is not None:
                self.index.add_value(relation, attribute, tid, render(value))
        return tid

    def delete(self, relation: str, tid: int) -> None:
        """Remove a tuple from both the database and the index."""
        row = self.db.relation(relation).fetch(tid)
        for attribute in self._indexed_attributes(relation):
            value = row.get(attribute)
            if value is not None:
                self.index.remove_value(
                    relation, attribute, tid, render(value)
                )
        self.db.relation(relation).delete(tid)

    def update(
        self,
        relation: str,
        tid: int,
        changes: Mapping[str, Any],
    ) -> int:
        """Replace attribute values of one tuple **in place**; returns
        the (unchanged) tid.

        The tuple keeps its tid — inbound foreign-key references stay
        valid and the inverted index swaps only the postings of the
        changed values. (Earlier versions deleted and re-inserted,
        which assigned a fresh tid and dangled — or spuriously
        rejected — child rows referencing the old tuple.) On a failed
        update (unknown attribute, constraint or foreign-key violation)
        both the database and the index are left untouched.
        """
        rel = self.db.relation(relation)
        row = rel.fetch(tid)
        unknown = set(changes) - set(row.as_dict())
        if unknown:
            raise KeyError(
                f"unknown attributes for {relation}: {sorted(unknown)}"
            )
        attributes = self._indexed_attributes(relation)
        old_values = {a: row.get(a) for a in attributes}
        for attribute, value in old_values.items():
            if value is not None:
                self.index.remove_value(
                    relation, attribute, tid, render(value)
                )
        try:
            self.db.update(relation, tid, changes)
        except Exception:
            for attribute, value in old_values.items():
                if value is not None:
                    self.index.add_value(
                        relation, attribute, tid, render(value)
                    )
            raise
        new_row = rel.fetch(tid)
        for attribute in attributes:
            value = new_row.get(attribute)
            if value is not None:
                self.index.add_value(relation, attribute, tid, render(value))
        return tid
