"""The Result Database Translator (paper §5.3).

Renders the relational précis answer to a natural-language synthesis:

    "The translation is realized separately for every occurrence of a
    token. For each occurrence, the analysis of the query result graph
    starts from the relation that contains the input token. The labels
    of the projection edges that participate in the result graph are
    evaluated first; the label of the heading attribute comprises the
    first part of the sentence. After having constructed the clause for
    the relation that contains the input token, we compose additional
    clauses that combine information from more than one relation by
    using foreign key relationships. Each of these clauses has as
    subject the heading attribute of the relation that has the primary
    key. The procedure ends when the traversal of the database graph is
    complete."

Concretely, for each seed tuple of each token occurrence we emit:

1. an *entity clause*: the concatenated projection-edge labels of the
   token relation (heading attribute first), evaluated on the tuple;
2. one *join clause* per (result-schema join edge, reached tuple) pair,
   evaluated in a scope holding the source tuple's attributes as scalars
   (plus scalars inherited along the traversal — this serves relations
   without a heading attribute, whose join labels speak about "the
   previous relation") and the joined target tuples' attributes as
   lists;

then recurse into the target tuples along the remaining edges.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs import NULL_TRACER, Tracer
from ..relational.database import Database
from ..relational.row import Row
from .labels import TranslationSpec
from .template_lang import Template

__all__ = ["Translator"]


class Translator:
    """Turns :class:`~repro.core.answer.PrecisAnswer` objects into prose."""

    #: tells the engine it may pass ``tracer=`` (see
    #: :meth:`repro.core.engine.PrecisEngine._run_translator`)
    accepts_tracer = True

    def __init__(self, spec: TranslationSpec):
        self.spec = spec

    # ------------------------------------------------------------- top level

    def translate(self, answer, tracer: Tracer = NULL_TRACER) -> str:
        """One paragraph per token occurrence per seed tuple, in order.

        *tracer* (``repro.obs``, no-op by default) counts
        ``paragraphs_emitted`` in the caller's current span.
        """
        paragraphs: list[str] = []
        for match in answer.matches:
            for occurrence in match.occurrences:
                relation = occurrence.relation
                if relation not in answer.database:
                    continue
                tid_map = answer.report.tid_maps.get(relation, {})
                for source_tid in sorted(occurrence.tids):
                    answer_tid = tid_map.get(source_tid)
                    if answer_tid is None:
                        continue  # excluded by the cardinality constraint
                    text = self._translate_seed(
                        answer, relation, answer_tid
                    )
                    if text:
                        paragraphs.append(text)
        tracer.count("paragraphs_emitted", len(paragraphs))
        return "\n\n".join(paragraphs)

    # ------------------------------------------------------------- traversal

    def _translate_seed(self, answer, relation: str, tid: int) -> str:
        row = answer.database.relation(relation).fetch(tid)
        clauses: list[str] = []
        entity = self._entity_clause(answer, relation, row, scope={})
        if entity:
            clauses.append(entity)
        self._join_clauses(
            answer,
            relation,
            [row],
            inherited={},
            visited=frozenset({relation}),
            clauses=clauses,
        )
        return " ".join(clause.strip() for clause in clauses if clause.strip())

    def _entity_clause(
        self, answer, relation: str, row: Row, scope: dict[str, Any]
    ) -> str:
        """Projection labels of *relation*, heading attribute first."""
        attributes = list(answer.result_schema.attributes_of(relation))
        heading = self.spec.heading_of(relation)
        if heading in attributes:
            attributes.remove(heading)
            attributes.insert(0, heading)
        local = dict(scope)
        local.update(self._row_scope(row))
        parts = []
        for attribute in attributes:
            template = self.spec.projection_label(relation, attribute)
            if template is None:
                continue
            if row.get(attribute) is None:
                continue  # a précis may be incomplete; skip silently
            parts.append(template.render(local, self.spec.macros))
        return "".join(parts)

    def _join_clauses(
        self,
        answer,
        relation: str,
        rows: list[Row],
        inherited: dict[str, Any],
        visited: frozenset[str],
        clauses: list[str],
    ) -> None:
        for edge in answer.result_schema.join_edges_from(relation):
            if edge.target in visited:
                continue
            template = self.spec.join_label(edge.source, edge.target)
            target_rel = answer.database.relation(edge.target)
            next_visited = visited | {edge.target}
            for row in rows:
                driving = row.get(edge.source_attribute)
                if driving is None:
                    continue
                targets = sorted(
                    target_rel.fetch_many(
                        sorted(
                            target_rel.lookup(edge.target_attribute, driving)
                        )
                    ),
                    key=lambda r: r.tid,
                )
                if not targets:
                    continue
                scope = dict(inherited)
                scope.update(self._row_scope(row))
                if template is not None:
                    scope_with_lists = dict(scope)
                    scope_with_lists.update(self._rows_scope(targets))
                    clause = template.render(
                        scope_with_lists, self.spec.macros
                    ).strip()
                    if clause:
                        clauses.append(clause)
                # recurse: clauses about relations further out are
                # composed per reached tuple, subject = their heading
                self._join_clauses(
                    answer,
                    edge.target,
                    targets,
                    inherited=scope,
                    visited=next_visited,
                    clauses=clauses,
                )

    # ------------------------------------------------------------- scopes

    @staticmethod
    def _row_scope(row: Row) -> dict[str, Any]:
        return {
            attr.upper(): value
            for attr, value in zip(row.attributes, row.values)
        }

    @staticmethod
    def _rows_scope(rows: list[Row]) -> dict[str, Any]:
        if not rows:
            return {}
        attributes = rows[0].attributes
        return {
            attr.upper(): [row[attr] for row in rows] for attr in attributes
        }
