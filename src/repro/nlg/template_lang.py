"""The template language of paper §5.3.

    "In order to use template labels or to register new ones, we use a
    simple language for templates that supports variables, loops,
    functions, and macros."

The concrete syntax follows the paper's example::

    DEFINE MOVIE_LIST as
    [i<ARITYOF(@TITLE)] {@TITLE[$i$]+" ("+@YEAR[$i$]+"), "}
    [i=ARITYOF(@TITLE)] {@TITLE[$i$]+" ("+@YEAR[$i$]+"). "}

* ``@NAME`` — a variable bound to an attribute value (a scalar, or the
  list of values joined in); ``@NAME[$i$]`` indexes a list (1-based);
* ``"literal"`` — string literal, concatenated with ``+``;
* ``ARITYOF(@X)`` — the number of values bound to ``@X``; ``UPPER``,
  ``LOWER`` and ``FIRST`` are also provided;
* ``[i<expr] {body}`` — a guarded loop block: ``i`` ranges over
  ``1..arity`` and *body* is emitted for every ``i`` satisfying the
  guard (``<``, ``<=`` or ``=``), giving the classic
  "a, b, and c." separator idiom;
* ``@MACRO`` — a macro (a named template registered with ``DEFINE``)
  expands in the current context; variables take priority on collision.

Evaluation never fails on missing data: an unbound variable renders as
the empty string (answers are partial by design — a précis "may be
incomplete in many ways").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from ..relational.datatypes import render

__all__ = [
    "TemplateError",
    "Template",
    "MacroLibrary",
    "parse_template",
    "parse_definitions",
]


class TemplateError(ValueError):
    """Malformed template source or evaluation misuse."""


# ------------------------------------------------------------------ lexer

_TOKEN_RE = re.compile(
    r"""
      (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
    | (?P<var>@[A-Za-z_][A-Za-z_0-9]*)
    | (?P<loopvar>\$[A-Za-z_][A-Za-z_0-9]*\$)
    | (?P<number>\d+)
    | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<punct>[\[\]{}()<>=+,])
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Tok:
    kind: str
    value: str
    pos: int


def _lex(source: str) -> list[_Tok]:
    tokens: list[_Tok] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise TemplateError(
                f"unexpected character {source[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append(_Tok(kind, match.group(), match.start()))
        pos = match.end()
    return tokens


# ------------------------------------------------------------------ AST


@dataclass(frozen=True)
class _Literal:
    text: str


@dataclass(frozen=True)
class _Number:
    value: int


@dataclass(frozen=True)
class _VarRef:
    name: str
    index: Optional[Union[str, int]] = None  # loop-variable name or int


@dataclass(frozen=True)
class _FuncCall:
    name: str
    args: tuple


@dataclass(frozen=True)
class _Loop:
    var: str
    op: str  # '<', '<=', '='
    bound: Any  # expression node
    body: tuple  # expression nodes, concatenated


_Node = Union[_Literal, _Number, _VarRef, _FuncCall, _Loop]


# ------------------------------------------------------------------ parser


class _Parser:
    def __init__(self, tokens: list[_Tok]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[_Tok]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Tok:
        token = self._peek()
        if token is None:
            raise TemplateError("unexpected end of template")
        self._pos += 1
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[_Tok]:
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self._pos += 1
            return token
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> _Tok:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise TemplateError(
                f"expected {value or kind}, got {token.value!r} "
                f"at offset {token.pos}"
            )
        return token

    # template := (loop | expr)*  — implicit concatenation
    def parse_template(self) -> tuple:
        items: list[_Node] = []
        while self._peek() is not None:
            token = self._peek()
            assert token is not None
            if token.kind == "punct" and token.value == "[":
                items.append(self._parse_loop())
            else:
                items.append(self._parse_expr())
                # optional '+' between adjacent expressions
                self._accept("punct", "+")
        return tuple(items)

    def _parse_loop(self) -> _Loop:
        self._expect("punct", "[")
        var = self._expect("ident").value
        op_tok = self._next()
        if op_tok.kind != "punct" or op_tok.value not in ("<", "="):
            raise TemplateError(
                f"expected loop comparator at offset {op_tok.pos}"
            )
        op = op_tok.value
        if op == "<" and self._accept("punct", "="):
            op = "<="
        bound = self._parse_expr()
        self._expect("punct", "]")
        self._expect("punct", "{")
        body: list[_Node] = []
        while True:
            token = self._peek()
            if token is None:
                raise TemplateError("unterminated loop body")
            if token.kind == "punct" and token.value == "}":
                self._next()
                break
            if token.kind == "punct" and token.value == "[":
                body.append(self._parse_loop())
            else:
                body.append(self._parse_expr())
                self._accept("punct", "+")
        return _Loop(var, op, bound, tuple(body))

    def _parse_expr(self) -> _Node:
        token = self._next()
        if token.kind == "string":
            raw = token.value[1:-1]
            text = re.sub(r"\\(.)", r"\1", raw)
            return _Literal(text)
        if token.kind == "number":
            return _Number(int(token.value))
        if token.kind == "var":
            name = token.value[1:]
            index: Optional[Union[str, int]] = None
            if self._accept("punct", "["):
                idx_tok = self._next()
                if idx_tok.kind == "loopvar":
                    index = idx_tok.value.strip("$")
                elif idx_tok.kind == "number":
                    index = int(idx_tok.value)
                else:
                    raise TemplateError(
                        f"bad index at offset {idx_tok.pos}"
                    )
                self._expect("punct", "]")
            return _VarRef(name, index)
        if token.kind == "ident":
            # function call
            self._expect("punct", "(")
            args: list[_Node] = []
            if not self._accept("punct", ")"):
                args.append(self._parse_expr())
                while self._accept("punct", ","):
                    args.append(self._parse_expr())
                self._expect("punct", ")")
            return _FuncCall(token.value.upper(), tuple(args))
        if token.kind == "loopvar":
            return _VarRef(token.value.strip("$"), None)
        raise TemplateError(
            f"unexpected token {token.value!r} at offset {token.pos}"
        )


# ------------------------------------------------------------------ evaluator


def _as_list(value: Any) -> list:
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _arity(value: Any) -> int:
    return len(_as_list(value))


_FUNCTIONS: dict[str, Callable] = {
    "ARITYOF": _arity,
    "UPPER": lambda v: render(v).upper(),
    "LOWER": lambda v: render(v).lower(),
    "FIRST": lambda v: (_as_list(v) or [""])[0],
}


class Template:
    """A parsed, evaluatable template."""

    def __init__(self, nodes: tuple, source: str = ""):
        self._nodes = nodes
        self.source = source

    def render(
        self,
        context: dict[str, Any],
        macros: Optional["MacroLibrary"] = None,
    ) -> str:
        """Evaluate against *context* (variable name → scalar or list)."""
        scope = {k.upper(): v for k, v in context.items()}
        return "".join(
            self._render_node(node, scope, macros or _EMPTY_MACROS)
            for node in self._nodes
        )

    # -- node dispatch ------------------------------------------------------

    def _render_node(self, node: _Node, scope: dict, macros: "MacroLibrary") -> str:
        value = self._eval(node, scope, macros)
        if isinstance(value, (list, tuple)):
            return ", ".join(render(v) for v in value)
        return render(value)

    def _eval(self, node: _Node, scope: dict, macros: "MacroLibrary") -> Any:
        if isinstance(node, _Literal):
            return node.text
        if isinstance(node, _Number):
            return node.value
        if isinstance(node, _VarRef):
            name = node.name.upper()
            if name not in scope and name in macros:
                return macros.expand(name, scope)
            value = scope.get(name)
            if node.index is None:
                return value
            if isinstance(node.index, str):
                position = scope.get(node.index.upper())
                if not isinstance(position, int):
                    raise TemplateError(
                        f"loop variable ${node.index}$ unbound"
                    )
            else:
                position = node.index
            items = _as_list(value)
            if 1 <= position <= len(items):
                return items[position - 1]
            return ""
        if isinstance(node, _FuncCall):
            func = _FUNCTIONS.get(node.name)
            if func is None:
                raise TemplateError(f"unknown function {node.name}")
            args = [self._eval(arg, scope, macros) for arg in node.args]
            return func(*args)
        if isinstance(node, _Loop):
            return self._eval_loop(node, scope, macros)
        raise TemplateError(f"unknown node {node!r}")  # pragma: no cover

    def _eval_loop(self, node: _Loop, scope: dict, macros: "MacroLibrary") -> str:
        bound = self._eval(node.bound, scope, macros)
        if not isinstance(bound, int):
            raise TemplateError("loop bound must evaluate to an integer")
        if node.op == "<":
            indices = range(1, bound)
        elif node.op == "<=":
            indices = range(1, bound + 1)
        else:  # '='
            indices = range(bound, bound + 1) if bound >= 1 else range(0)
        out = []
        for i in indices:
            inner = dict(scope)
            inner[node.var.upper()] = i
            out.append(
                "".join(
                    self._render_node(child, inner, macros)
                    for child in node.body
                )
            )
        return "".join(out)

    def __repr__(self):
        return f"Template({self.source!r})"


class MacroLibrary:
    """Named templates registered with ``DEFINE name as template``."""

    def __init__(self):
        self._macros: dict[str, Template] = {}

    def define(self, name: str, template: Union[str, Template]) -> None:
        if isinstance(template, str):
            template = parse_template(template)
        self._macros[name.upper()] = template

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._macros

    def expand(self, name: str, scope: dict[str, Any]) -> str:
        template = self._macros.get(name.upper())
        if template is None:
            raise TemplateError(f"unknown macro {name}")
        return template.render(scope, self)

    def names(self) -> tuple[str, ...]:
        return tuple(self._macros)

    def __len__(self):
        return len(self._macros)


_EMPTY_MACROS = MacroLibrary()


def parse_template(source: str) -> Template:
    """Parse template source into a :class:`Template`."""
    parser = _Parser(_lex(source))
    return Template(parser.parse_template(), source)


_DEFINE_RE = re.compile(
    r"^\s*DEFINE\s+([A-Za-z_][A-Za-z_0-9]*)\s+as\s+(.*)$",
    re.IGNORECASE | re.DOTALL,
)


def parse_definitions(source: str) -> MacroLibrary:
    """Parse a block of ``DEFINE name as …`` declarations.

    Definitions are separated by lines starting with ``DEFINE``; the body
    of each runs until the next ``DEFINE`` (or end of input) and may span
    multiple lines.
    """
    library = MacroLibrary()
    chunks: list[str] = []
    for line in source.splitlines():
        if re.match(r"^\s*DEFINE\s", line, re.IGNORECASE):
            chunks.append(line)
        elif chunks:
            chunks[-1] += "\n" + line
        elif line.strip():
            raise TemplateError(f"expected DEFINE, got {line.strip()!r}")
    for chunk in chunks:
        match = _DEFINE_RE.match(chunk)
        if match is None:
            raise TemplateError(f"malformed definition: {chunk.strip()[:60]!r}")
        library.define(match.group(1), parse_template(match.group(2)))
    return library
