"""Natural-language synthesis of précis answers (paper §5.3)."""

from .html import answer_to_html
from .labels import TranslationSpec, generic_spec
from .template_lang import (
    MacroLibrary,
    Template,
    TemplateError,
    parse_definitions,
    parse_template,
)
from .translator import Translator

__all__ = [
    "Translator",
    "TranslationSpec",
    "generic_spec",
    "Template",
    "TemplateError",
    "MacroLibrary",
    "parse_template",
    "parse_definitions",
    "answer_to_html",
]
