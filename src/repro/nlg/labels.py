"""Template labels and heading attributes (paper §5.3).

    "In order to describe the semantics of a relation R along with its
    attributes in natural language, we consider that relation R has a
    conceptual meaning captured by its name, and a physical meaning
    represented by the value of at least one of its attributes … We name
    this attribute the *heading attribute*. … A template label
    label(u,z) is assigned to each edge e(u,z) of the database schema
    graph; this label is used for the interpretation of the relationship
    between the values of nodes u and z in natural language."

A :class:`TranslationSpec` collects everything a domain expert provides:
heading attributes, per-projection-edge labels, per-join-edge labels, and
a macro library. A convenience builder :func:`generic_spec` manufactures
serviceable default labels for schemas without hand-written templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..graph.schema_graph import SchemaGraph
from .template_lang import MacroLibrary, Template, parse_template

__all__ = ["TranslationSpec", "generic_spec"]


@dataclass
class TranslationSpec:
    """Designer-provided translation assets for one database."""

    #: relation -> its heading attribute; "by definition, the edge that
    #: connects a heading attribute with the respective relation has a
    #: weight 1 and is always present in the result of a précis query"
    headings: dict[str, str] = field(default_factory=dict)
    #: (relation, attribute) -> template for the projection edge
    projection_labels: dict[tuple[str, str], Template] = field(
        default_factory=dict
    )
    #: (source, target) -> template for the join edge
    join_labels: dict[tuple[str, str], Template] = field(default_factory=dict)
    macros: MacroLibrary = field(default_factory=MacroLibrary)

    # -------------------------------------------------------------- builders

    def set_heading(self, relation: str, attribute: str) -> "TranslationSpec":
        self.headings[relation] = attribute
        return self

    def label_projection(
        self, relation: str, attribute: str, template: Union[str, Template]
    ) -> "TranslationSpec":
        if isinstance(template, str):
            template = parse_template(template)
        self.projection_labels[(relation, attribute)] = template
        return self

    def label_join(
        self, source: str, target: str, template: Union[str, Template]
    ) -> "TranslationSpec":
        if isinstance(template, str):
            template = parse_template(template)
        self.join_labels[(source, target)] = template
        return self

    def define_macro(
        self, name: str, template: Union[str, Template]
    ) -> "TranslationSpec":
        self.macros.define(name, template)
        return self

    # -------------------------------------------------------------- lookups

    def heading_of(self, relation: str) -> Optional[str]:
        return self.headings.get(relation)

    def projection_label(
        self, relation: str, attribute: str
    ) -> Optional[Template]:
        return self.projection_labels.get((relation, attribute))

    def join_label(self, source: str, target: str) -> Optional[Template]:
        return self.join_labels.get((source, target))


def generic_spec(
    graph: SchemaGraph, headings: dict[str, str]
) -> TranslationSpec:
    """Manufacture plain-English default labels for a whole graph.

    For every relation with a heading attribute ``H``:

    * the heading projection renders as the bare value (sentence
      subject);
    * every other projection ``A`` renders as ``, whose <a> is @A``;
    * every join edge ``R → S`` renders as
      ``The <s-heading plural-ish> related to @H: @LIST.`` — crude but
      serviceable when no domain expert wrote templates.
    """
    spec = TranslationSpec(headings=dict(headings))
    for relation in graph.relations:
        heading = headings.get(relation)
        for attribute in graph.attributes_of(relation):
            if attribute == heading:
                spec.label_projection(relation, attribute, f"@{attribute}")
            else:
                label = attribute.lower().replace("_", " ")
                spec.label_projection(
                    relation,
                    attribute,
                    f'" ({label}: "+@{attribute}+")"',
                )
    for edge in graph.all_join_edges():
        target_heading = headings.get(edge.target)
        if target_heading is None:
            continue
        source_heading = headings.get(edge.source)
        subject = f"@{source_heading}" if source_heading else f'"{edge.source}"'
        spec.label_join(
            edge.source,
            edge.target,
            f'" "+{subject}+" is related to {edge.target.lower()}: "'
            f"+@{target_heading}+\".\"",
        )
    return spec
