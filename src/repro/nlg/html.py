"""HTML rendering of précis answers.

The paper's motivating setting is "web accessible databases" whose
answers carry "underlined topics (hyperlinks) to pages containing more
relevant information" (§1). This renderer produces a self-contained
HTML fragment for one answer: the narrative first (token occurrences
linkified so a UI can turn them into follow-up précis queries), then
one table per answer relation showing the visible attributes.

No external templating dependency: the output is built with explicit
escaping, and is deliberately framework-neutral (a ``<div
class="precis">`` any page can style).
"""

from __future__ import annotations

import html as _html
import re

from ..relational.datatypes import render

__all__ = ["answer_to_html"]


def _escape(value) -> str:
    return _html.escape(render(value))


def _linkify(narrative: str, link_values: list[str]) -> str:
    """Escape the narrative and wrap known values in follow-up links.

    A linked value becomes ``<a href="?q=%22value%22">value</a>`` — the
    paper's "identify new keywords for further searching" affordance.

    All values are matched in a *single pass* (one alternation, longest
    value first): sequential substitution would re-match shorter values
    inside the anchors already inserted for longer ones ("Match" inside
    the link generated for "Match Point") and corrupt the markup.
    """
    values = sorted(
        {v for v in link_values if v}, key=len, reverse=True
    )
    if not values:
        return _html.escape(narrative)
    escaped = _html.escape(narrative)
    pattern = re.compile(
        "|".join(re.escape(_html.escape(value)) for value in values)
    )
    unescape = {_html.escape(v): v for v in values}

    def wrap(match: re.Match) -> str:
        target = match.group(0)
        original = unescape[target]
        href = _html.escape(f'?q="{original}"', quote=True)
        return f'<a href="{href}">{target}</a>'

    return pattern.sub(wrap, escaped)


def answer_to_html(answer, title: str | None = None, linkify: bool = True) -> str:
    """Render a :class:`~repro.core.answer.PrecisAnswer` as HTML."""
    parts = ['<div class="precis">']
    heading = title if title is not None else f"Précis: {answer.query.text}"
    parts.append(f"  <h2>{_html.escape(heading)}</h2>")

    if not answer.found:
        parts.append('  <p class="precis-empty">No matches found.</p>')
        parts.append("</div>")
        return "\n".join(parts)

    if answer.narrative:
        link_values: list[str] = []
        if linkify:
            for relation in answer.result_schema.relations:
                for row in answer.rows_of(relation):
                    for value in row.values():
                        if isinstance(value, str) and len(value) > 2:
                            link_values.append(value)
        body = (
            _linkify(answer.narrative, link_values)
            if linkify
            else _html.escape(answer.narrative)
        )
        for paragraph in body.split("\n\n"):
            parts.append(f'  <p class="precis-narrative">{paragraph}</p>')

    for relation in answer.result_schema.relations:
        attributes = answer.result_schema.attributes_of(relation)
        rows = answer.rows_of(relation)
        if not attributes or not rows:
            continue
        parts.append(f'  <h3>{_html.escape(relation)}</h3>')
        parts.append('  <table class="precis-relation">')
        header = "".join(f"<th>{_html.escape(a)}</th>" for a in attributes)
        parts.append(f"    <tr>{header}</tr>")
        for row in rows:
            cells = "".join(
                f"<td>{_escape(row[a])}</td>" for a in attributes
            )
            parts.append(f"    <tr>{cells}</tr>")
        parts.append("  </table>")
    parts.append("</div>")
    return "\n".join(parts)
