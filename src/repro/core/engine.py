"""The précis engine — the system architecture of paper §4, Figure 2.

Wires the four components together::

    Q ──> Inverted Index ──> Result Schema Generator
              │                      │ (degree constraint d)
              │ k_i -> {(R,A,Tids)}  v
              └────────────> Result Database Generator ──> Translator
                                     (cardinality constraint c)

:class:`PrecisEngine` owns the source database, the weighted schema
graph, the inverted index and (optionally) a translator and a profile
registry; :meth:`PrecisEngine.ask` runs one query end to end and returns
a :class:`~repro.core.answer.PrecisAnswer`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..graph.schema_graph import SchemaGraph, graph_from_schema
from ..obs import NULL_TRACER, QueryStats, Tracer
from ..personalization.profile import Profile, ProfileRegistry
from ..relational.database import Database
from ..text.inverted_index import InvertedIndex, build_index
from ..text.matching import SynonymMap, TokenMatch, match_tokens
from .answer import PrecisAnswer
from .constraints import (
    CardinalityConstraint,
    DegreeConstraint,
    Unlimited,
    WeightThreshold,
)
from .database_generator import STRATEGY_AUTO, generate_result_database
from .query import PrecisQuery
from .result_schema import ResultSchema
from .schema_generator import generate_result_schema

__all__ = ["PrecisEngine"]


class PrecisEngine:
    """End-to-end précis query answering over one source database."""

    def __init__(
        self,
        db: Database,
        graph: Optional[SchemaGraph] = None,
        index: Optional[InvertedIndex] = None,
        synonyms: Optional[SynonymMap] = None,
        translator=None,
        default_degree: Optional[DegreeConstraint] = None,
        default_cardinality: Optional[CardinalityConstraint] = None,
        cache_plans: bool = False,
        drop_stopwords: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        """Build an engine.

        Parameters
        ----------
        db:
            The source database ``D``.
        graph:
            The weighted schema graph ``G``; derived from the database's
            foreign keys (at uniform default weights) when omitted.
        index:
            A pre-built inverted index; built over all TEXT columns when
            omitted.
        synonyms:
            Optional query-token canonicalization map.
        translator:
            An object with ``translate(answer) -> str`` (see
            :class:`repro.nlg.translator.Translator`); when present,
            answers carry a natural-language narrative.
        default_degree / default_cardinality:
            Constraints used when a query supplies none. The engine
            default is the paper's running-example degree (projection
            weight ≥ 0.9) and no cardinality bound.
        cache_plans:
            Memoize result schemas keyed by (token relations, degree
            constraint) for queries over the engine's *base* graph
            (profile- or weight-overridden runs bypass the cache).
            Schema generation is cheap (Figure 7) but repeated queries
            over big graphs still benefit; the cache is never coherent
            with graph mutation, so mutate via ``with_weights`` copies.
        drop_stopwords:
            Ignore bare single-word stopword tokens ("the", "of") in
            free-form queries. Quoted phrase tokens keep their
            stopwords — ``"Gone with the Wind"`` still phrase-matches.
        tracer:
            Observability hook (see :mod:`repro.obs`): stage spans and
            counters for index building and every query answered through
            this engine. Defaults to the zero-overhead no-op tracer;
            per-call ``tracer=`` arguments on :meth:`ask` /
            :meth:`ask_per_occurrence` / :meth:`plan` override it.
        """
        self.db = db
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.graph = graph if graph is not None else graph_from_schema(db.schema)
        self.index = (
            index if index is not None else build_index(db, tracer=self.tracer)
        )
        self.synonyms = synonyms
        self.translator = translator
        self.default_degree = (
            default_degree if default_degree is not None else WeightThreshold(0.9)
        )
        self.default_cardinality = (
            default_cardinality if default_cardinality is not None else Unlimited()
        )
        self.drop_stopwords = drop_stopwords
        self.profiles = ProfileRegistry()
        self._plan_cache: Optional[dict[tuple, ResultSchema]] = (
            {} if cache_plans else None
        )

    # --------------------------------------------------------------- profiles

    def register_profile(self, profile: Profile) -> None:
        self.profiles.register(profile)

    def _resolve_profile(
        self, profile: Optional[Profile | str]
    ) -> Optional[Profile]:
        if profile is None:
            return None
        if isinstance(profile, str):
            return self.profiles.get(profile)
        return profile

    # --------------------------------------------------------------- asking

    def match(self, query: PrecisQuery) -> list[TokenMatch]:
        """Step 1: resolve query tokens through the inverted index."""
        tokens = query.tokens
        if self.drop_stopwords:
            from ..text.stopwords import is_stopword

            tokens = tuple(
                token
                for token in tokens
                if len(token) > 1 or not is_stopword(token[0])
            )
        return match_tokens(self.index, tokens, self.synonyms)

    def plan(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        profile: Optional[Profile | str] = None,
        weights: Optional[dict[tuple, float]] = None,
        tracer: Optional[Tracer] = None,
    ) -> tuple[ResultSchema, list[TokenMatch], SchemaGraph]:
        """Steps 1–2: match tokens and generate the result schema only.

        *weights* are query-time edge-weight overrides (§3.1: "weights
        may be set by the user at query time using an appropriate user
        interface"), applied on top of any profile. Keys are schema-graph
        edge keys: ``("proj", rel, attr)`` / ``("join", src, dst)``.

        *tracer* overrides the engine tracer for this call: a ``"match"``
        span (``tokens_matched``) and a ``"schema"`` span
        (``cache_hit``/``cache_miss`` whenever the plan cache was
        consulted, wrapping the nested ``"schema_generator"`` span on a
        miss).
        """
        tracer = tracer if tracer is not None else self.tracer
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        graph = resolved.personalize(self.graph) if resolved else self.graph
        if weights:
            graph = graph.with_weights(weights)
        degree = degree or (resolved.degree if resolved else None) or self.default_degree

        with tracer.span("match"):
            matches = self.match(query)
            tracer.count(
                "tokens_matched", sum(1 for match in matches if match.found)
            )
        token_relations = []
        for match in matches:
            for occurrence in match.occurrences:
                if occurrence.relation not in token_relations:
                    token_relations.append(occurrence.relation)

        with tracer.span("schema"):
            cacheable = (
                self._plan_cache is not None
                and graph is self.graph  # base graph only
            )
            if cacheable:
                try:
                    key = (tuple(token_relations), degree)
                    hash(key)
                except TypeError:
                    cacheable = False
            if cacheable:
                hit = key in self._plan_cache  # type: ignore[operator]
                tracer.count("cache_hit", 1 if hit else 0)
                tracer.count("cache_miss", 0 if hit else 1)
                if hit:
                    return self._plan_cache[key], matches, graph  # type: ignore[index]
            schema = generate_result_schema(
                graph, token_relations, degree, tracer=tracer
            )
            if cacheable:
                self._plan_cache[key] = schema  # type: ignore[index]
        return schema, matches, graph

    def ask(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        cardinality: Optional[CardinalityConstraint] = None,
        strategy: str = STRATEGY_AUTO,
        profile: Optional[Profile | str] = None,
        translate: bool = True,
        weights: Optional[dict[tuple, float]] = None,
        tuple_weigher=None,
        path_scoped: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> PrecisAnswer:
        """Answer a précis query end to end.

        *weights* are query-time edge-weight overrides (see
        :meth:`plan`); *tuple_weigher* is an optional
        :class:`~repro.core.value_weights.TupleWeigher` steering which
        tuples survive the cardinality budget (the §7 value-weight
        extension). With tracing enabled (engine- or call-level
        *tracer*), the whole run is recorded under an ``"ask"`` root
        span and the answer carries
        :attr:`~repro.core.answer.PrecisAnswer.stats`.
        """
        tracer = tracer if tracer is not None else self.tracer
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        cardinality = (
            cardinality
            or (resolved.cardinality if resolved else None)
            or self.default_cardinality
        )

        with tracer.span("ask") as root:
            schema, matches, __ = self.plan(
                query, degree, resolved, weights, tracer=tracer
            )

            seed_tids: dict[str, set[int]] = {}
            for match in matches:
                for occurrence in match.occurrences:
                    seed_tids.setdefault(occurrence.relation, set()).update(
                        occurrence.tids
                    )

            with self.db.meter.measure() as measured:
                database, report = generate_result_database(
                    self.db,
                    schema,
                    seed_tids,
                    cardinality,
                    strategy,
                    tuple_weigher=tuple_weigher,
                    path_scoped=path_scoped,
                    tracer=tracer,
                )

            answer = PrecisAnswer(
                query=query,
                result_schema=schema,
                database=database,
                report=report,
                matches=matches,
                cost=measured.delta,
            )
            if translate and self.translator is not None and answer.found:
                with tracer.span("translate"):
                    answer.narrative = self._run_translator(answer, tracer)
        if tracer.enabled:
            answer.stats = QueryStats.from_span(root)
        return answer

    def _run_translator(self, answer: PrecisAnswer, tracer: Tracer):
        """Call the configured translator, threading the tracer through
        when it advertises support (``accepts_tracer``) — the engine
        contract stays "any object with translate(answer) -> str"."""
        if getattr(self.translator, "accepts_tracer", False):
            return self.translator.translate(answer, tracer=tracer)
        return self.translator.translate(answer)

    def ask_per_occurrence(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        cardinality: Optional[CardinalityConstraint] = None,
        strategy: str = STRATEGY_AUTO,
        profile: Optional[Profile | str] = None,
        translate: bool = True,
        rank: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> list[PrecisAnswer]:
        """One answer per distinct token occurrence — the §5.1 homonym

        policy: "in the absence of any additional knowledge stored in
        the system, we may return multiple answers, one for each
        homonym". Each occurrence (a (relation, attribute) pair where a
        token was found) gets its own result schema rooted at that
        relation only, its own result database seeded by that
        occurrence's tuples only, and its own narrative.

        For a query whose tokens each match one place, this returns a
        single answer equivalent to :meth:`ask`. With ``rank=True`` the
        answers come sorted by decreasing
        :meth:`~repro.core.answer.PrecisAnswer.relevance`.
        """
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        graph = resolved.personalize(self.graph) if resolved else self.graph
        degree = (
            degree
            or (resolved.degree if resolved else None)
            or self.default_degree
        )
        cardinality = (
            cardinality
            or (resolved.cardinality if resolved else None)
            or self.default_cardinality
        )

        tracer = tracer if tracer is not None else self.tracer
        answers: list[PrecisAnswer] = []
        with tracer.span("ask_per_occurrence"):
            with tracer.span("match"):
                matches = self.match(query)
                tracer.count(
                    "tokens_matched", sum(1 for m in matches if m.found)
                )
            for match in matches:
                for occurrence in match.occurrences:
                    with tracer.span("occurrence") as occ_span:
                        schema = generate_result_schema(
                            graph, [occurrence.relation], degree, tracer=tracer
                        )
                        seeds = {occurrence.relation: set(occurrence.tids)}
                        with self.db.meter.measure() as measured:
                            database, report = generate_result_database(
                                self.db,
                                schema,
                                seeds,
                                cardinality,
                                strategy,
                                tracer=tracer,
                            )
                        answer = PrecisAnswer(
                            query=query,
                            result_schema=schema,
                            database=database,
                            report=report,
                            matches=[TokenMatch(match.token, (occurrence,))],
                            cost=measured.delta,
                        )
                        if translate and self.translator is not None:
                            with tracer.span("translate"):
                                answer.narrative = self._run_translator(
                                    answer, tracer
                                )
                    if tracer.enabled:
                        answer.stats = QueryStats.from_span(occ_span)
                    answers.append(answer)
        if rank:
            answers.sort(key=lambda a: -a.relevance())
        return answers

    def disambiguate(
        self, query: PrecisQuery | str, samples: int = 3
    ) -> list[dict]:
        """Describe each token occurrence so a UI can ask the user which

        entity they meant — §5.1's alternative to returning one answer
        per homonym ("obtain additional information through interaction
        with the user"). Each option carries the token, its location,
        the number of matching tuples and up to *samples* sample values
        of the matched attribute; feed the chosen option's relation back
        through :meth:`ask_per_occurrence` (or filter its output).
        """
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        options: list[dict] = []
        for match in self.match(query):
            for occurrence in match.occurrences:
                relation = self.db.relation(occurrence.relation)
                rows = relation.fetch_many(
                    sorted(occurrence.tids)[:samples], [occurrence.attribute]
                )
                values = [
                    str(row[0]) for row in rows if row[0] is not None
                ]
                options.append(
                    {
                        "token": match.token,
                        "relation": occurrence.relation,
                        "attribute": occurrence.attribute,
                        "matches": len(occurrence.tids),
                        "samples": values,
                    }
                )
        return options
