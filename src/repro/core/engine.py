"""The précis engine — the system architecture of paper §4, Figure 2.

Wires the four components together::

    Q ──> Inverted Index ──> Result Schema Generator
              │                      │ (degree constraint d)
              │ k_i -> {(R,A,Tids)}  v
              └────────────> Result Database Generator ──> Translator
                                     (cardinality constraint c)

:class:`PrecisEngine` owns the source database, the weighted schema
graph, the inverted index and (optionally) a translator and a profile
registry; :meth:`PrecisEngine.ask` runs one query end to end and returns
a :class:`~repro.core.answer.PrecisAnswer`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..cache import (
    MISSING,
    CacheConfig,
    EngineCache,
    answer_key,
    answer_token,
    plan_key,
    plan_token,
)
from ..graph.overlay import WeightOverlay, overlay_graph, weight_fingerprint
from ..graph.schema_graph import SchemaGraph, graph_from_schema
from ..obs import (
    NULL_TRACER,
    EngineMetrics,
    InMemorySink,
    MetricsRegistry,
    QueryStats,
    Tracer,
    current_trace_id,
)
from ..personalization.profile import Profile, ProfileRegistry
from ..relational.database import Database
from ..text.inverted_index import InvertedIndex, build_index
from ..text.matching import SynonymMap, TokenMatch, match_tokens
from ..text.tokenizer import normalize
from .answer import PrecisAnswer
from .constraints import (
    CardinalityConstraint,
    DegreeConstraint,
    Unlimited,
    WeightThreshold,
)
from .database_generator import STRATEGY_AUTO, generate_result_database
from .deadline import NO_DEADLINE, Deadline
from .explain import build_explanation
from .query import PrecisQuery
from .result_schema import ResultSchema
from .schema_generator import generate_result_schema

__all__ = ["PrecisEngine"]


class PrecisEngine:
    """End-to-end précis query answering over one source database."""

    def __init__(
        self,
        db: Database,
        graph: Optional[SchemaGraph] = None,
        index: Optional[InvertedIndex] = None,
        synonyms: Optional[SynonymMap] = None,
        translator=None,
        default_degree: Optional[DegreeConstraint] = None,
        default_cardinality: Optional[CardinalityConstraint] = None,
        cache: Union[CacheConfig, EngineCache, bool, None] = None,
        cache_plans: bool = False,
        drop_stopwords: bool = False,
        tracer: Optional[Tracer] = None,
        metrics: Union[EngineMetrics, MetricsRegistry, bool, None] = None,
        slow_query_ms: Optional[float] = None,
    ):
        """Build an engine.

        Parameters
        ----------
        db:
            The source database ``D``.
        graph:
            The weighted schema graph ``G``; derived from the database's
            foreign keys (at uniform default weights) when omitted.
        index:
            A pre-built inverted index; built over all TEXT columns when
            omitted.
        synonyms:
            Optional query-token canonicalization map.
        translator:
            An object with ``translate(answer) -> str`` (see
            :class:`repro.nlg.translator.Translator`); when present,
            answers carry a natural-language narrative.
        default_degree / default_cardinality:
            Constraints used when a query supplies none. The engine
            default is the paper's running-example degree (projection
            weight ≥ 0.9) and no cardinality bound.
        cache:
            The versioned caching subsystem (:mod:`repro.cache`).
            Accepts a :class:`~repro.cache.CacheConfig`, a pre-built
            :class:`~repro.cache.EngineCache`, ``True`` (plan + answer
            caching at default bounds), or ``None``/``False`` (no
            caching — the default). The **plan cache** memoizes result
            schemas keyed by canonical (sorted token relations, degree)
            for queries over the engine's *base* graph; the opt-in
            **answer cache** short-circuits :meth:`ask` entirely for
            repeated query signatures. Both are coherent under live
            mutation by construction: every entry carries the epoch
            token — :attr:`Database.data_epoch` /
            :attr:`InvertedIndex.epoch` / :attr:`SchemaGraph.version` —
            it was computed under, and a lookup whose current token
            differs discards the entry (counted as an invalidation).
            Mutate through the database/:class:`SynchronizedWriter`/
            graph APIs and cached state can never go stale.
        cache_plans:
            Legacy switch equivalent to
            ``cache=CacheConfig(plans=True, answers=False)``; ignored
            when *cache* is given.
        drop_stopwords:
            Ignore bare single-word stopword tokens ("the", "of") in
            free-form queries. Quoted phrase tokens keep their
            stopwords — ``"Gone with the Wind"`` still phrase-matches.
        tracer:
            Observability hook (see :mod:`repro.obs`): stage spans and
            counters for index building and every query answered through
            this engine. Defaults to the zero-overhead no-op tracer;
            per-call ``tracer=`` arguments on :meth:`ask` /
            :meth:`ask_per_occurrence` / :meth:`plan` override it.
        metrics:
            Service-level metrics (:mod:`repro.obs.metrics`). Accepts an
            :class:`~repro.obs.EngineMetrics`, a bare
            :class:`~repro.obs.MetricsRegistry` (wrapped; registries may
            be shared across engines), ``True`` (fresh registry), or
            ``None`` (off — the default, zero overhead). When enabled,
            every :meth:`ask` feeds end-to-end and per-stage latency
            histograms, pipeline counters and cache hit/miss series;
            export via :meth:`metrics_snapshot` /
            :meth:`metrics_prometheus`.
        slow_query_ms:
            Threshold for the slow-query log (implies metrics when a
            registry was not given): asks at least this slow are kept,
            stage breakdown included, in a bounded slowest-first log
            (``engine.metrics.slow_queries``).
        """
        self.db = db
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = self._resolve_metrics(metrics, slow_query_ms)
        self.graph = graph if graph is not None else graph_from_schema(db.schema)
        if index is not None:
            self.index = index
        elif self.metrics is not None and not self.tracer.enabled:
            # metrics without tracing: measure the build through a
            # private throwaway tracer, then digest the span
            sink = InMemorySink()
            self.index = build_index(db, tracer=Tracer([sink]))
            if sink.last is not None:
                self.metrics.observe_index_build(sink.last)
        else:
            self.index = build_index(db, tracer=self.tracer)
        self.synonyms = synonyms
        self.translator = translator
        self.default_degree = (
            default_degree if default_degree is not None else WeightThreshold(0.9)
        )
        self.default_cardinality = (
            default_cardinality if default_cardinality is not None else Unlimited()
        )
        self.drop_stopwords = drop_stopwords
        self.profiles = ProfileRegistry()
        self.cache = self._resolve_cache(cache, cache_plans)

    @staticmethod
    def _resolve_cache(
        cache: Union[CacheConfig, EngineCache, bool, None],
        cache_plans: bool,
    ) -> Optional[EngineCache]:
        if isinstance(cache, EngineCache):
            return cache
        if isinstance(cache, CacheConfig):
            return EngineCache(cache)
        if cache is True:
            return EngineCache(CacheConfig(plans=True, answers=True))
        if cache is None and cache_plans:
            return EngineCache(CacheConfig(plans=True, answers=False))
        return None

    @staticmethod
    def _resolve_metrics(
        metrics: Union[EngineMetrics, MetricsRegistry, bool, None],
        slow_query_ms: Optional[float],
    ) -> Optional[EngineMetrics]:
        if isinstance(metrics, EngineMetrics):
            return metrics
        if isinstance(metrics, MetricsRegistry):
            return EngineMetrics(metrics, slow_query_ms=slow_query_ms)
        if metrics is True or (metrics is None and slow_query_ms is not None):
            return EngineMetrics(slow_query_ms=slow_query_ms)
        return None

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Per-layer hit/miss/eviction/invalidation counters (empty
        dict when caching is off)."""
        return self.cache.stats() if self.cache is not None else {}

    def metrics_snapshot(self) -> dict:
        """JSON-compatible dump of the service metrics: counters,
        gauges, histograms (with p50/p95/p99) and the slow-query log.
        Empty dict when metrics are off."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    def metrics_prometheus(self) -> str:
        """The service metrics in Prometheus text exposition format
        (empty string when metrics are off)."""
        return self.metrics.prometheus() if self.metrics is not None else ""

    # --------------------------------------------------------------- profiles

    def register_profile(self, profile: Profile) -> None:
        self.profiles.register(profile)

    def _resolve_profile(
        self, profile: Optional[Profile | str]
    ) -> Optional[Profile]:
        if profile is None:
            return None
        if isinstance(profile, str):
            return self.profiles.get(profile)
        return profile

    def _effective_graph(
        self,
        resolved: Optional[Profile],
        weights: Optional[dict[tuple, float]],
    ) -> SchemaGraph:
        """The graph this ask traverses: the base graph seen through the
        profile's weights plus any query-time overrides (overrides win).

        A copy-on-write :class:`~repro.graph.overlay.WeightOverlay` —
        never a clone — so per-tenant weighting costs O(overrides), the
        base graph is shared by every concurrent ask, and the overlay's
        canonical fingerprint keys the plan/answer caches (coinciding
        tenants share entries). Returns the base graph itself when
        there is nothing to override.
        """
        return overlay_graph(
            self.graph, resolved.weights if resolved else None, weights
        )

    # --------------------------------------------------------------- asking

    def match(
        self, query: PrecisQuery, deadline: Deadline = NO_DEADLINE
    ) -> list[TokenMatch]:
        """Step 1: resolve query tokens through the inverted index.

        An already-expired *deadline* sheds the index lookups entirely:
        every token comes back as an (empty) unmatched
        :class:`~repro.text.matching.TokenMatch`, so downstream stages
        still see a well-formed match list."""
        tokens = query.tokens
        if self.drop_stopwords:
            from ..text.stopwords import is_stopword

            tokens = tuple(
                token
                for token in tokens
                if len(token) > 1 or not is_stopword(token[0])
            )
        if deadline.expired():
            shed = []
            for token in tokens:
                text = token if isinstance(token, str) else " ".join(token)
                if self.synonyms is not None:
                    text = self.synonyms.canonicalize(text)
                shed.append(TokenMatch(normalize(text), ()))
            return shed
        return match_tokens(self.index, tokens, self.synonyms)

    def plan(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        profile: Optional[Profile | str] = None,
        weights: Optional[dict[tuple, float]] = None,
        tracer: Optional[Tracer] = None,
        deadline: Deadline = NO_DEADLINE,
    ) -> tuple[ResultSchema, list[TokenMatch], SchemaGraph]:
        """Steps 1–2: match tokens and generate the result schema only.

        *weights* are query-time edge-weight overrides (§3.1: "weights
        may be set by the user at query time using an appropriate user
        interface"), applied on top of any profile. Keys are schema-graph
        edge keys: ``("proj", rel, attr)`` / ``("join", src, dst)``.

        *tracer* overrides the engine tracer for this call: a ``"match"``
        span (``tokens_matched``) and a ``"schema"`` span
        (``cache_hit``/``cache_miss`` whenever the plan cache was
        consulted, wrapping the nested ``"schema_generator"`` span on a
        miss).

        *deadline* (:mod:`repro.core.deadline`) is checked cooperatively:
        expiry sheds the index lookups and/or cuts the best-first
        traversal, leaving a valid partial schema whose ``stop`` records
        ``kind="deadline"``. Partial schemas never enter the plan cache.
        """
        schema, matches, graph, __ = self._plan(
            query, degree, profile, weights, tracer, deadline
        )
        return schema, matches, graph

    def _plan(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        profile: Optional[Profile | str] = None,
        weights: Optional[dict[tuple, float]] = None,
        tracer: Optional[Tracer] = None,
        deadline: Deadline = NO_DEADLINE,
        graph: Optional[SchemaGraph] = None,
    ) -> tuple[ResultSchema, list[TokenMatch], SchemaGraph, str]:
        """:meth:`plan` plus the plan-cache outcome (``"hit"`` /
        ``"miss"`` / ``"off"`` / ``"uncacheable"``) for provenance.
        *graph* lets :meth:`ask` hand down the effective (overlay)
        graph it already built instead of deriving it again."""
        tracer = tracer if tracer is not None else self.tracer
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        if graph is None:
            graph = self._effective_graph(resolved, weights)
        degree = degree or (resolved.degree if resolved else None) or self.default_degree

        with tracer.span("match"):
            matches = self.match(query, deadline=deadline)
            tracer.count(
                "tokens_matched", sum(1 for match in matches if match.found)
            )
        token_relations = []
        for match in matches:
            for occurrence in match.occurrences:
                if occurrence.relation not in token_relations:
                    token_relations.append(occurrence.relation)

        with tracer.span("schema"):
            plans = self.cache.plans if self.cache is not None else None
            outcome = "off" if plans is None else "uncacheable"
            # cacheable: the base graph, or any overlay over it — the
            # overlay's canonical fingerprint joins the key, so tenants
            # with coinciding effective weights share one entry and the
            # validity token (the shared base version) keeps them all
            # coherent under base-graph mutation. Foreign graphs (a
            # caller-materialized clone) stay uncacheable.
            cacheable = plans is not None and (
                graph is self.graph
                or (
                    isinstance(graph, WeightOverlay)
                    and graph.base is self.graph
                )
            )
            if cacheable:
                try:
                    # canonical key: the schema is a function of the
                    # relation *set*, so token discovery order must not
                    # split entries
                    key = plan_key(
                        token_relations, degree, weight_fingerprint(graph)
                    )
                except TypeError:
                    cacheable = False
            if cacheable:
                token = plan_token(graph)
                invalidated = plans.stats.invalidations
                cached = plans.get(key, token)
                tracer.count(
                    "cache_invalidation",
                    plans.stats.invalidations - invalidated,
                )
                hit = cached is not MISSING
                outcome = "hit" if hit else "miss"
                tracer.count("cache_hit", 1 if hit else 0)
                tracer.count("cache_miss", 0 if hit else 1)
                if hit:
                    return cached, matches, graph, outcome
            schema = generate_result_schema(
                graph, token_relations, degree, tracer=tracer,
                deadline=deadline,
            )
            # A deadline-cut schema is *partial* — caching it would serve
            # degraded answers to future unconstrained asks.
            degraded = (
                schema.stop is not None and schema.stop.kind == "deadline"
            )
            if cacheable and not degraded:
                plans.put(key, schema, token)
        return schema, matches, graph, outcome

    @staticmethod
    def _signature(
        query, degree, cardinality, strategy, graph, translate, path_scoped
    ) -> Optional[tuple]:
        """The canonical answer key of fully-resolved ask parameters, or
        ``None`` when the combination is uncacheable (unhashable
        constraint/override)."""
        try:
            return answer_key(
                query,
                degree,
                cardinality,
                strategy,
                weight_fingerprint(graph),
                translate,
                path_scoped,
            )
        except TypeError:  # unhashable constraint/override
            return None

    def ask_signature(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        cardinality: Optional[CardinalityConstraint] = None,
        strategy: str = STRATEGY_AUTO,
        profile: Optional[Profile | str] = None,
        translate: bool = True,
        weights: Optional[dict[tuple, float]] = None,
        tuple_weigher=None,
        path_scoped: bool = False,
    ) -> Optional[tuple]:
        """The canonical signature one :meth:`ask` call would be cached
        (and coalesced) under, without running it.

        This is exactly the answer-cache key: query tokens, resolved
        degree/cardinality constraints, strategy, the canonical weight
        fingerprint of the effective graph (profile weights + query-time
        overrides — the tenant dimension), and the translate/path_scoped
        flags. Two calls with equal signatures produce byte-identical
        answers over an unmutated database, which is what makes the
        signature safe as the async front door's request-coalescing key
        (:mod:`repro.service.frontdoor`). Returns ``None`` when the call
        is uncacheable — an opaque *tuple_weigher*, or an unhashable
        constraint/override — meaning it must never be coalesced or
        cached.
        """
        if tuple_weigher is not None:
            return None
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        degree = (
            degree
            or (resolved.degree if resolved else None)
            or self.default_degree
        )
        cardinality = (
            cardinality
            or (resolved.cardinality if resolved else None)
            or self.default_cardinality
        )
        return self._signature(
            query,
            degree,
            cardinality,
            strategy,
            self._effective_graph(resolved, weights),
            translate,
            path_scoped,
        )

    def ask(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        cardinality: Optional[CardinalityConstraint] = None,
        strategy: str = STRATEGY_AUTO,
        profile: Optional[Profile | str] = None,
        translate: bool = True,
        weights: Optional[dict[tuple, float]] = None,
        tuple_weigher=None,
        path_scoped: bool = False,
        tracer: Optional[Tracer] = None,
        deadline: Optional[Deadline] = None,
    ) -> PrecisAnswer:
        """Answer a précis query end to end.

        *weights* are query-time edge-weight overrides (see
        :meth:`plan`); *tuple_weigher* is an optional
        :class:`~repro.core.value_weights.TupleWeigher` steering which
        tuples survive the cardinality budget (the §7 value-weight
        extension). With tracing enabled (engine- or call-level
        *tracer*), the whole run is recorded under an ``"ask"`` root
        span and the answer carries
        :attr:`~repro.core.answer.PrecisAnswer.stats`.

        With the answer cache enabled (``cache=True`` or
        ``CacheConfig(answers=True)``), a repeated query signature —
        same tokens, constraints, strategy, profile contents, weight
        overrides and flags — returns the cached
        :class:`~repro.core.answer.PrecisAnswer` object without
        re-running the pipeline, provided the database, index and graph
        epochs still match the entry's validity token. Calls with a
        *tuple_weigher* (an opaque callable) are never cached.

        *deadline* (:mod:`repro.core.deadline`) is a cooperative time
        budget checked at stage boundaries and inside the generator
        loops. Expiry never raises: the stage underway is cut exactly
        like a degree/cardinality constraint cut, later stages are shed,
        and the answer comes back well-formed but flagged
        :attr:`~repro.core.answer.PrecisAnswer.degraded` with the
        tripping stage in
        :attr:`~repro.core.answer.PrecisAnswer.degraded_stage` and in
        EXPLAIN provenance. Degraded answers are **never** written to
        the answer cache (serving a cached answer is still allowed —
        cached answers are complete by construction and cost no
        pipeline time).
        """
        tracer = tracer if tracer is not None else self.tracer
        metrics = self.metrics
        if metrics is not None and not tracer.enabled:
            # metrics need the span tree for stage latencies; a private
            # sinkless tracer records it without any sink plumbing
            tracer = Tracer()
        deadline = deadline if deadline is not None else NO_DEADLINE
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        degree = (
            degree
            or (resolved.degree if resolved else None)
            or self.default_degree
        )
        cardinality = (
            cardinality
            or (resolved.cardinality if resolved else None)
            or self.default_cardinality
        )

        # the graph this ask actually traverses: base, or a flattened
        # copy-on-write overlay (profile weights + query-time overrides)
        effective_graph = self._effective_graph(resolved, weights)

        answer_lru = self.cache.answers if self.cache is not None else None
        cache_key = None
        answer_outcome = "off" if answer_lru is None else "uncacheable"
        if answer_lru is not None and tuple_weigher is None:
            cache_key = self._signature(
                query, degree, cardinality, strategy, effective_graph,
                translate, path_scoped,
            )

        # the serving layer's request context (None for direct asks):
        # one id correlating this answer's EXPLAIN record, slow-query
        # entry, histogram exemplars and span tree
        trace_id = current_trace_id()
        with tracer.span("ask") as root:
            hit = False
            if cache_key is not None:
                token = answer_token(self.db, self.index, self.graph)
                with tracer.span("cache"):
                    invalidated = answer_lru.stats.invalidations
                    cached = answer_lru.get(cache_key, token)
                    tracer.count(
                        "cache_invalidation",
                        answer_lru.stats.invalidations - invalidated,
                    )
                    hit = cached is not MISSING
                    tracer.count("answer_cache_hit", 1 if hit else 0)
                    tracer.count("answer_cache_miss", 0 if hit else 1)
            if hit:
                answer = cached
            else:
                answer_outcome = (
                    "miss" if cache_key is not None else answer_outcome
                )
                # Stage-boundary deadline checks. The first stage found
                # expired names the degradation in the answer + EXPLAIN;
                # the stage itself degrades cooperatively (shed index
                # lookups / cut traversal / cut generation / skip
                # translation) — never an exception.
                degraded_stage: Optional[str] = None
                if deadline.expired():
                    degraded_stage = "match"
                schema, matches, __, plan_outcome = self._plan(
                    query, degree, resolved, weights, tracer=tracer,
                    deadline=deadline, graph=effective_graph,
                )
                if (
                    degraded_stage is None
                    and schema.stop is not None
                    and schema.stop.kind == "deadline"
                ):
                    degraded_stage = "schema"

                seed_tids: dict[str, set[int]] = {}
                for match in matches:
                    for occurrence in match.occurrences:
                        seed_tids.setdefault(
                            occurrence.relation, set()
                        ).update(occurrence.tids)

                with self.db.meter.measure() as measured:
                    database, report = generate_result_database(
                        self.db,
                        schema,
                        seed_tids,
                        cardinality,
                        strategy,
                        tuple_weigher=tuple_weigher,
                        path_scoped=path_scoped,
                        tracer=tracer,
                        deadline=deadline,
                    )
                if degraded_stage is None and report.stopped_by_deadline:
                    degraded_stage = "tuples"

                answer = PrecisAnswer(
                    query=query,
                    result_schema=schema,
                    database=database,
                    report=report,
                    matches=matches,
                    cost=measured.delta,
                )
                if translate and self.translator is not None and answer.found:
                    if degraded_stage is not None:
                        pass  # already over budget: shed the narrative
                    elif deadline.expired():
                        degraded_stage = "translate"
                    else:
                        with tracer.span("translate"):
                            answer.narrative = self._run_translator(
                                answer, tracer
                            )
                answer.degraded = degraded_stage is not None
                answer.degraded_stage = degraded_stage
                answer.explanation = build_explanation(
                    answer,
                    degree,
                    cardinality,
                    plan_cache=plan_outcome,
                    answer_cache=answer_outcome,
                    deadline_stage=degraded_stage,
                    trace_id=trace_id,
                )
                if cache_key is not None and degraded_stage is None:
                    # partial answers must never poison the cache
                    answer_lru.put(cache_key, answer, token)
        if tracer.enabled:
            answer.stats = QueryStats.from_span(root)
        if metrics is not None:
            metrics.observe_ask(root, query.text, trace_id=trace_id)
            if self.cache is not None:
                metrics.observe_cache_stats(self.cache_stats())
        return answer

    def _run_translator(self, answer: PrecisAnswer, tracer: Tracer):
        """Call the configured translator, threading the tracer through
        when it advertises support (``accepts_tracer``) — the engine
        contract stays "any object with translate(answer) -> str"."""
        if getattr(self.translator, "accepts_tracer", False):
            return self.translator.translate(answer, tracer=tracer)
        return self.translator.translate(answer)

    def ask_per_occurrence(
        self,
        query: PrecisQuery | str,
        degree: Optional[DegreeConstraint] = None,
        cardinality: Optional[CardinalityConstraint] = None,
        strategy: str = STRATEGY_AUTO,
        profile: Optional[Profile | str] = None,
        translate: bool = True,
        weights: Optional[dict[tuple, float]] = None,
        rank: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> list[PrecisAnswer]:
        """One answer per distinct token occurrence — the §5.1 homonym

        policy: "in the absence of any additional knowledge stored in
        the system, we may return multiple answers, one for each
        homonym". Each occurrence (a (relation, attribute) pair where a
        token was found) gets its own result schema rooted at that
        relation only, its own result database seeded by that
        occurrence's tuples only, and its own narrative.

        *weights* are query-time edge-weight overrides exactly as in
        :meth:`plan`/:meth:`ask`, applied on top of any profile before
        the per-occurrence schemas are generated.

        For a query whose tokens each match one place, this returns a
        single answer equivalent to :meth:`ask`. With ``rank=True`` the
        answers come sorted by decreasing
        :meth:`~repro.core.answer.PrecisAnswer.relevance`.
        """
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        resolved = self._resolve_profile(profile)
        graph = self._effective_graph(resolved, weights)
        degree = (
            degree
            or (resolved.degree if resolved else None)
            or self.default_degree
        )
        cardinality = (
            cardinality
            or (resolved.cardinality if resolved else None)
            or self.default_cardinality
        )

        tracer = tracer if tracer is not None else self.tracer
        metrics = self.metrics
        if metrics is not None and not tracer.enabled:
            tracer = Tracer()
        answers: list[PrecisAnswer] = []
        trace_id = current_trace_id()
        with tracer.span("ask_per_occurrence") as root:
            with tracer.span("match"):
                matches = self.match(query)
                tracer.count(
                    "tokens_matched", sum(1 for m in matches if m.found)
                )
            for match in matches:
                for occurrence in match.occurrences:
                    with tracer.span("occurrence") as occ_span:
                        schema = generate_result_schema(
                            graph, [occurrence.relation], degree, tracer=tracer
                        )
                        seeds = {occurrence.relation: set(occurrence.tids)}
                        with self.db.meter.measure() as measured:
                            database, report = generate_result_database(
                                self.db,
                                schema,
                                seeds,
                                cardinality,
                                strategy,
                                tracer=tracer,
                            )
                        answer = PrecisAnswer(
                            query=query,
                            result_schema=schema,
                            database=database,
                            report=report,
                            matches=[TokenMatch(match.token, (occurrence,))],
                            cost=measured.delta,
                        )
                        answer.explanation = build_explanation(
                            answer,
                            degree,
                            cardinality,
                            plan_cache="off",
                            answer_cache="off",
                            trace_id=trace_id,
                        )
                        if translate and self.translator is not None:
                            with tracer.span("translate"):
                                answer.narrative = self._run_translator(
                                    answer, tracer
                                )
                    if tracer.enabled:
                        answer.stats = QueryStats.from_span(occ_span)
                    answers.append(answer)
        if metrics is not None:
            metrics.observe_ask(root, query.text, trace_id=trace_id)
            if self.cache is not None:
                metrics.observe_cache_stats(self.cache_stats())
        if rank:
            answers.sort(key=lambda a: -a.relevance())
        return answers

    def disambiguate(
        self, query: PrecisQuery | str, samples: int = 3
    ) -> list[dict]:
        """Describe each token occurrence so a UI can ask the user which

        entity they meant — §5.1's alternative to returning one answer
        per homonym ("obtain additional information through interaction
        with the user"). Each option carries the token, its location,
        the number of matching tuples and up to *samples* sample values
        of the matched attribute; feed the chosen option's relation back
        through :meth:`ask_per_occurrence` (or filter its output).

        Tuples whose matched attribute is NULL (or that were deleted
        since matching) don't count toward the *samples* budget: the
        scan keeps fetching further tids until it has *samples* non-null
        values or runs out of matches.
        """
        if isinstance(query, str):
            query = PrecisQuery.parse(query)
        options: list[dict] = []
        for match in self.match(query):
            for occurrence in match.occurrences:
                relation = self.db.relation(occurrence.relation)
                candidates = sorted(occurrence.tids)
                values: list[str] = []
                chunk = max(samples, 8)
                for start in range(0, len(candidates), chunk):
                    rows = relation.fetch_many(
                        candidates[start : start + chunk],
                        [occurrence.attribute],
                    )
                    for row in rows:
                        if row[0] is not None:
                            values.append(str(row[0]))
                            if len(values) >= samples:
                                break
                    if len(values) >= samples:
                        break
                options.append(
                    {
                        "token": match.token,
                        "relation": occurrence.relation,
                        "attribute": occurrence.attribute,
                        "matches": len(occurrence.tids),
                        "samples": values,
                    }
                )
        return options
