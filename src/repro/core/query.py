"""Précis query objects (paper §3.3).

A précis query is "a set of tokens Q = {k1, k2, …, km}" — free-form text
with no schema knowledge required. Multi-word tokens are written in
double quotes, matching how the paper treats ``Woody Allen`` as a single
token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..text.tokenizer import query_tokens

__all__ = ["PrecisQuery"]


@dataclass(frozen=True)
class PrecisQuery:
    """An immutable, parsed précis query."""

    text: str
    #: each token is a tuple of normalized words; length > 1 = phrase
    tokens: tuple[tuple[str, ...], ...]

    @classmethod
    def parse(cls, text: str) -> "PrecisQuery":
        """Parse free-form query text.

        >>> PrecisQuery.parse('"Woody Allen" comedy').tokens
        (('woody', 'allen'), ('comedy',))
        """
        return cls(text=text, tokens=tuple(query_tokens(text)))

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "PrecisQuery":
        """Build a query from explicit token strings (each string is one

        token; multi-word strings become phrase tokens)."""
        # quote each token so multi-word tokens stay single phrases
        parsed = tuple(
            next(iter(query_tokens(f'"{token}"')), ()) for token in tokens
        )
        parsed = tuple(p for p in parsed if p)
        text = " ".join(f'"{token}"' for token in tokens)
        return cls(text=text, tokens=parsed)

    @property
    def token_strings(self) -> tuple[str, ...]:
        """Tokens as plain strings (phrase words joined by spaces)."""
        return tuple(" ".join(words) for words in self.tokens)

    def is_empty(self) -> bool:
        return not self.tokens

    def __str__(self):
        return self.text
