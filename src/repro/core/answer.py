"""The précis answer object.

A :class:`PrecisAnswer` packages everything one query run produced: the
result schema ``D'`` (a :class:`~repro.core.result_schema.ResultSchema`),
the result database (a fully formed
:class:`~repro.relational.database.Database` — the paper's headline
claim: "queries do not generate individual relations but entire
multi-relation databases"), the execution report, the per-token match
information, the cost delta charged to the source database, and — when a
translator is configured — the natural-language narrative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import QueryStats
from ..obs.explain import Explanation
from ..relational.cost import CostSnapshot
from ..relational.database import Database
from ..relational.datatypes import render
from ..text.matching import TokenMatch
from .database_generator import GeneratorReport
from .query import PrecisQuery
from .result_schema import ResultSchema

__all__ = ["PrecisAnswer"]


@dataclass
class PrecisAnswer:
    """Everything produced in answer to one précis query."""

    query: PrecisQuery
    result_schema: ResultSchema
    database: Database
    report: GeneratorReport
    matches: list[TokenMatch] = field(default_factory=list)
    narrative: Optional[str] = None
    cost: CostSnapshot = field(default_factory=CostSnapshot)
    #: per-stage timings + counters of the run that produced this answer
    #: (``repro.obs``); None unless the engine ran with tracing enabled.
    #: Deliberately excluded from :meth:`to_dict` so traced and untraced
    #: answers serialize identically — export via ``stats.to_dict()``.
    stats: Optional[QueryStats] = None
    #: structured provenance (``repro.obs.explain``): why each relation
    #: and tuple batch is in this précis and which constraint bounded
    #: it. Attached by :meth:`~repro.core.engine.PrecisEngine.ask`; None
    #: for answers built straight from the generators. Excluded from
    #: :meth:`to_dict` (export via ``explanation.to_dict()``), rendered
    #: by the CLI's ``--explain``.
    explanation: Optional[Explanation] = None
    #: True when a deadline expired mid-ask (``repro.core.deadline``):
    #: every field is still well-formed, but the answer is *partial* —
    #: traversal/generation stopped early exactly as a degree or
    #: cardinality constraint would have stopped it.
    degraded: bool = False
    #: first pipeline stage the deadline tripped at (``"match"`` /
    #: ``"schema"`` / ``"tuples"`` / ``"translate"``); None when not
    #: degraded. Mirrored into EXPLAIN provenance.
    degraded_stage: Optional[str] = None

    # ------------------------------------------------------------- queries

    @property
    def found(self) -> bool:
        """True iff at least one token matched the database."""
        return any(match.found for match in self.matches)

    @property
    def unmatched_tokens(self) -> tuple[str, ...]:
        return tuple(m.token for m in self.matches if not m.found)

    def total_tuples(self) -> int:
        return self.database.total_tuples()

    def cardinalities(self) -> dict[str, int]:
        return self.database.cardinalities()

    def relevance(self) -> float:
        """An aggregate relevance score for ranking sibling answers

        (e.g. the per-homonym answers of
        :meth:`~repro.core.engine.PrecisEngine.ask_per_occurrence`):
        seed tuples count 1 each; every joined-in tuple counts the
        weight of the edge that brought it. Higher = more content in
        more strongly connected relations.
        """
        score = float(sum(self.report.seed_counts.values()))
        for execution in self.report.executions:
            score += execution.tuples_new * execution.edge.weight
        return score

    def dangling_tuples(self) -> int:
        """Number of referential gaps in the answer — tuples whose join

        attribute points at a partner the cardinality budget excluded.
        NaïveQ on 1-to-n joins produces these; RoundRobin largely avoids
        them (paper §5.2). Zero means the answer is a fully consistent
        sub-database."""
        return len(self.database.integrity_violations())

    # ------------------------------------------------------------- export

    def to_dict(self) -> dict:
        """A JSON-compatible snapshot of the whole answer — for HTTP

        APIs and archival. Values render through the engine's text
        rendering (dates ISO, NULL → None)."""
        from ..relational.datatypes import render

        return {
            "query": self.query.text,
            "found": self.found,
            "degraded": self.degraded,
            "unmatched_tokens": list(self.unmatched_tokens),
            "tokens": [
                {
                    "token": match.token,
                    "occurrences": [
                        {
                            "relation": occ.relation,
                            "attribute": occ.attribute,
                            "tuples": len(occ.tids),
                        }
                        for occ in match.occurrences
                    ],
                }
                for match in self.matches
            ],
            "schema": {
                relation: list(self.result_schema.attributes_of(relation))
                for relation in self.result_schema.relations
            },
            "joins": [
                {
                    "source": edge.source,
                    "target": edge.target,
                    "on": [edge.source_attribute, edge.target_attribute],
                    "weight": edge.weight,
                }
                for edge in self.result_schema.join_edges()
            ],
            "relations": {
                relation: [
                    {k: (None if v is None else render(v)) for k, v in row.items()}
                    for row in self.rows_of(relation)
                ]
                for relation in self.result_schema.relations
            },
            "narrative": self.narrative,
            "cost": {
                "tuple_reads": self.cost.tuple_reads,
                "index_lookups": self.cost.index_lookups,
                "scan_steps": self.cost.scan_steps,
            },
        }

    # ------------------------------------------------------------- display

    def rows_of(self, relation: str) -> list[dict]:
        """Visible rows of one answer relation (join-plumbing attributes

        that are not part of the result schema are hidden, per §5.2)."""
        visible = self.result_schema.attributes_of(relation)
        rel = self.database.relation(relation)
        if not visible:
            return []
        return [row.as_dict() for row in rel.scan(visible)]

    def describe(self) -> str:
        """Multi-line human-readable dump of the whole answer."""
        lines = [f"Query: {self.query.text}"]
        if self.degraded:
            lines.append(
                f"  (degraded: deadline expired during "
                f"{self.degraded_stage or 'the run'})"
            )
        if not self.found:
            lines.append("  (no token matched the database)")
            return "\n".join(lines)
        for match in self.matches:
            where = (
                ", ".join(
                    f"{occ.relation}.{occ.attribute}({len(occ.tids)})"
                    for occ in match.occurrences
                )
                or "not found"
            )
            lines.append(f"  token {match.token!r}: {where}")
        lines.append("Result schema:")
        for text in self.result_schema.describe().splitlines():
            lines.append(f"  {text}")
        lines.append("Result database:")
        for relation in self.result_schema.relations:
            rows = self.rows_of(relation)
            lines.append(f"  {relation} ({len(rows)} rows)")
            for row in rows:
                values = ", ".join(
                    f"{k}={render(v)}" for k, v in row.items()
                )
                lines.append(f"    {values}")
        if self.narrative:
            lines.append("Narrative:")
            for text in self.narrative.splitlines():
                lines.append(f"  {text}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"PrecisAnswer({self.query.text!r}, "
            f"{len(self.result_schema.relations)} relations, "
            f"{self.total_tuples()} tuples)"
        )
