"""The Result Database Generator — Figure 5 of the paper.

Populates the result schema ``D'`` produced by the schema generator:

1. seed every token relation with (a cardinality-bounded subset of) the
   tuples containing the query tokens, via ``σ_Tids(R)[π(R)]``;
2. walk the join edges of ``G'`` in decreasing weight, executing each as
   an IN-list selection on the destination driven by the join-attribute
   values already collected in the source — *never* an actual join query;
3. postpone joins departing from a relation whose in-degree has not yet
   reached zero, so all arrivals deposit (and deduplicate) their tuples
   before the relation drives further joins;
4. bound every fetch by the cardinality constraint, choosing between the
   paper's two subset strategies:

   * **NaïveQ** — keep an arbitrary prefix of the matching tuples (the
     Oracle-RowNum trick); for 1-to-n joins this risks leaving driving
     tuples without any join partner;
   * **RoundRobin** — open one scan of joining tuples per driving tuple
     and take one tuple per scan per round, spreading the budget evenly.

The generated answer is a real :class:`~repro.relational.database.
Database` whose schema is the projected sub-schema, with foreign keys
declared along the executed join edges — so the dangling-tuple effect of
NaïveQ is directly observable via ``integrity_violations()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from ..graph.schema_graph import JoinEdge
from ..obs import NULL_TRACER, Tracer
from ..relational.database import Database
from ..relational.query import RoundRobinScans
from ..relational.row import Row
from ..relational.schema import DatabaseSchema, ForeignKey
from .constraints import CardinalityConstraint, Unlimited
from .deadline import NO_DEADLINE, Deadline
from .result_schema import ResultSchema
from .value_weights import TupleWeigher

__all__ = [
    "generate_result_database",
    "GeneratorReport",
    "JoinExecution",
    "STRATEGY_NAIVE",
    "STRATEGY_ROUND_ROBIN",
    "STRATEGY_AUTO",
    "JOIN_ORDER_WEIGHT",
    "JOIN_ORDER_FIFO",
]

STRATEGY_NAIVE = "naive"
STRATEGY_ROUND_ROBIN = "round_robin"
STRATEGY_AUTO = "auto"
_STRATEGIES = (STRATEGY_NAIVE, STRATEGY_ROUND_ROBIN, STRATEGY_AUTO)

#: the paper's join ordering: heaviest executable edge first, so
#: "relations in D' that are most related to the query are populated
#: first" and budget exhaustion cuts off only weakly connected parts
JOIN_ORDER_WEIGHT = "weight"
#: ablation alternative: execute edges in result-schema admission order
JOIN_ORDER_FIFO = "fifo"
_JOIN_ORDERS = (JOIN_ORDER_WEIGHT, JOIN_ORDER_FIFO)


@dataclass
class JoinExecution:
    """Record of one executed join edge."""

    edge: JoinEdge
    strategy: str
    driving_values: int
    tuples_fetched: int
    tuples_new: int
    #: cardinality budget in force when the edge executed (None =
    #: unbounded) — EXPLAIN uses this to show which batches were capped
    budget: Optional[int] = None


@dataclass
class GeneratorReport:
    """What the generator did, in order — used by tests and benches."""

    seed_counts: dict[str, int] = field(default_factory=dict)
    executions: list[JoinExecution] = field(default_factory=list)
    skipped_edges: list[JoinEdge] = field(default_factory=list)
    stopped_by_cardinality: bool = False
    #: an expired deadline ended generation early (seeding or the join
    #: walk); the answer built so far is valid but partial
    stopped_by_deadline: bool = False
    #: per seeded relation: inverted-index matches offered (pre-budget)
    seed_matches: dict[str, int] = field(default_factory=dict)
    #: per seeded relation: cardinality budget in force (None = unbounded)
    seed_budgets: dict[str, Optional[int]] = field(default_factory=dict)
    #: per relation: source tuple id -> answer tuple id, for every tuple
    #: that made it into the answer (used by the translator to find the
    #: seed tuples again)
    tid_maps: dict[str, dict[int, int]] = field(default_factory=dict)

    @property
    def joins_executed(self) -> int:
        return len(self.executions)

    def tuples_retrieved(self) -> int:
        return sum(self.seed_counts.values()) + sum(
            ex.tuples_new for ex in self.executions
        )


def _result_database_schema(
    source: Database, result_schema: ResultSchema
) -> DatabaseSchema:
    """Schema of the answer: each relation projected on its retrieval

    attributes, plus the *referential* constraints the sub-database
    inherits. A ``G'`` join edge becomes a foreign key of the answer only
    when the same (source, column) → (target, column) constraint exists
    in the original schema — the reverse direction of a foreign key is a
    join worth following but not a constraint (a DIRECTOR row without
    movies is legal; a CAST row without its MOVIE is not)."""
    relations = []
    for name in result_schema.relations:
        attrs = result_schema.retrieval_attributes(name)
        relations.append(source.relation(name).schema.project(attrs))
    source_fks = {
        (fk.source, fk.column, fk.target, fk.target_column)
        for fk in source.schema.foreign_keys
    }
    fks = [
        ForeignKey(e.source, e.source_attribute, e.target, e.target_attribute)
        for e in result_schema.join_edges()
        if (e.source, e.source_attribute, e.target, e.target_attribute)
        in source_fks
    ]
    return DatabaseSchema(relations, fks)


def _is_to_one(source_db: Database, edge: JoinEdge) -> bool:
    """A join is to-1 when the destination's join attribute is its

    (single-column) primary key — each driving value matches at most one
    tuple."""
    pk = source_db.relation(edge.target).schema.primary_key
    return len(pk) == 1 and pk[0] == edge.target_attribute


#: tids per deadline check inside a bulk fetch — bounds deadline
#: overshoot to one chunk of tuple reads instead of one whole IN-list
_DEADLINE_CHUNK = 512


def _fetch_bounded(
    relation,
    tids,
    attrs,
    budget: Optional[int],
    deadline: Deadline,
) -> tuple[list[Row], bool]:
    """``fetch_many`` in chunks, stopping between chunks once the
    deadline expires. Returns (rows fetched so far, cut-by-deadline)."""
    tid_list = list(tids)
    out: list[Row] = []
    for start in range(0, len(tid_list), _DEADLINE_CHUNK):
        if budget is not None and len(out) >= budget:
            break
        if start and deadline.expired():
            return out, True
        remaining = None if budget is None else budget - len(out)
        out.extend(
            relation.fetch_many(
                tid_list[start : start + _DEADLINE_CHUNK], attrs, remaining
            )
        )
    return out, False


def _fetch_naive(
    relation,
    attribute,
    values,
    attrs,
    exclude: set[int],
    budget: Optional[int],
    weigher: Optional[TupleWeigher] = None,
    deadline: Deadline = NO_DEADLINE,
) -> tuple[list[Row], set[int]]:
    """Returns (new rows, matching tids that were already present)."""
    values = list(values)
    tids: set[int] = set()
    for start in range(0, len(values), _DEADLINE_CHUNK):
        if start and deadline.expired():
            break
        tids |= relation.lookup_in(
            attribute, values[start : start + _DEADLINE_CHUNK]
        )
    matched_existing = tids & exclude
    fresh = [tid for tid in sorted(tids) if tid not in exclude]
    if weigher is None or budget is None or len(fresh) <= budget:
        rows, __ = _fetch_bounded(relation, fresh, attrs, budget, deadline)
        return rows, matched_existing
    # value-weighted selection (§7 extension): score all candidates,
    # keep the heaviest — costs the full fetch, which the meter records
    rows, __ = _fetch_bounded(relation, fresh, attrs, None, deadline)
    rows.sort(key=weigher.sort_key(relation.name))
    return rows[:budget], matched_existing


def _fetch_round_robin(
    relation,
    attribute,
    values,
    attrs,
    exclude: set[int],
    budget: Optional[int],
    weigher: Optional[TupleWeigher] = None,
    deadline: Deadline = NO_DEADLINE,
) -> tuple[list[Row], set[int]]:
    """Returns (new rows, matching tids that were already present).

    Unlike the NaïveQ probe, matched-existing reporting is best-effort:
    only tuples the cursors actually visited before the budget ran out
    are observed (the unvisited tail is unknown by construction)."""
    matched_existing: set[int] = set()
    if weigher is not None:
        # weighted variant: one scan per driving value, each scan
        # ordered heaviest-first, then merged round-robin
        key = weigher.sort_key(relation.name)
        queues: list[list[Row]] = []
        for value in dict.fromkeys(values):
            if queues and deadline.expired():
                break
            relation.meter.charge_scan_step()  # cursor open, as in RR
            matches = relation.fetch_many(
                sorted(relation.lookup(attribute, value)), attrs
            )
            matches.sort(key=key, reverse=True)  # pop() yields best first
            if matches:
                queues.append(matches)
        out: list[Row] = []
        cursor = 0
        while queues:
            if budget is not None and len(out) >= budget:
                break
            if len(out) % _DEADLINE_CHUNK == 0 and out and deadline.expired():
                break
            if cursor >= len(queues):
                cursor = 0
            row = queues[cursor].pop()
            if queues[cursor]:
                cursor += 1
            else:
                del queues[cursor]
            if row.tid in exclude:
                matched_existing.add(row.tid)
            else:
                out.append(row)
        return out, matched_existing
    scans = RoundRobinScans(
        relation,
        attribute,
        values,
        attrs,
        should_stop=deadline.expired,
    )
    out = []
    steps = 0
    while not scans.exhausted():
        if budget is not None and len(out) >= budget:
            break
        steps += 1
        if steps % 64 == 0 and deadline.expired():
            break
        row = scans.next_tuple()
        if row is None:
            continue
        if row.tid in exclude:
            matched_existing.add(row.tid)
        else:
            out.append(row)
    return out, matched_existing


def generate_result_database(
    source: Database,
    result_schema: ResultSchema,
    seed_tids: Mapping[str, Iterable[int]],
    cardinality: Optional[CardinalityConstraint] = None,
    strategy: str = STRATEGY_AUTO,
    tuple_weigher: Optional[TupleWeigher] = None,
    join_order: str = JOIN_ORDER_WEIGHT,
    path_scoped: bool = False,
    tracer: Tracer = NULL_TRACER,
    deadline: Deadline = NO_DEADLINE,
) -> tuple[Database, GeneratorReport]:
    """Run the Figure 5 algorithm.

    Parameters
    ----------
    source:
        The original database ``D``.
    result_schema:
        The ``G'`` produced by the schema generator.
    seed_tids:
        Per token relation, the tuple ids containing the query tokens
        (the inverted index output). Relations absent from the result
        schema are ignored.
    cardinality:
        The constraint ``c``; defaults to unlimited.
    strategy:
        ``"naive"``, ``"round_robin"``, or ``"auto"`` (the paper's
        practical choice: RoundRobin only where the join is 1-to-n).
    tuple_weigher:
        Optional value-weight model (§7 future work): wherever the
        cardinality budget forces truncation, the heaviest tuples are
        kept instead of an arbitrary prefix.
    join_order:
        ``"weight"`` (the paper's heaviest-first rule) or ``"fifo"``
        (result-schema admission order) — the latter exists for the
        join-order ablation benchmark.
    path_scoped:
        The refinement the paper alludes to in §5.2 ("which of the
        tuples collected in a relation are used for subsequently
        joining tuples from other relations depends on the paths stored
        in P_d"). When True, a join edge is driven only by tuples that
        arrived along a path that actually *continues through that
        edge* in ``G'``; when False (default, the simple reading) every
        tuple of the source relation drives every outgoing edge.
    tracer:
        Observability hook (``repro.obs``): the run is wrapped in a
        ``"database_generator"`` span counting ``seed_tuples``,
        ``joins_executed``, ``joins_skipped`` and ``tuples_emitted``.
        No-op by default.
    deadline:
        Cooperative time budget (:mod:`repro.core.deadline`): checked
        before each seed fetch and at every join-loop iteration. Expiry
        stops generation exactly like an exhausted cardinality
        constraint — the tuples deposited so far form a valid partial
        answer and the report records ``stopped_by_deadline``; edges
        never executed land in ``skipped_edges``. Never-expiring by
        default.

    Returns
    -------
    (Database, GeneratorReport)
        The populated answer ``D'`` (foreign keys declared but *not*
        enforced — NaïveQ answers may legitimately contain dangling
        references, which is the paper's argument for RoundRobin) and an
        execution report.
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick from {_STRATEGIES}")
    if join_order not in _JOIN_ORDERS:
        raise ValueError(
            f"unknown join order {join_order!r}; pick from {_JOIN_ORDERS}"
        )
    with tracer.span("database_generator"):
        answer, report = _populate(
            source,
            result_schema,
            seed_tids,
            cardinality,
            strategy,
            tuple_weigher,
            join_order,
            path_scoped,
            deadline,
        )
        tracer.count("seed_tuples", sum(report.seed_counts.values()))
        tracer.count("joins_executed", report.joins_executed)
        tracer.count("joins_skipped", len(report.skipped_edges))
        tracer.count("tuples_emitted", answer.total_tuples())
    return answer, report


def _populate(
    source: Database,
    result_schema: ResultSchema,
    seed_tids: Mapping[str, Iterable[int]],
    cardinality: Optional[CardinalityConstraint],
    strategy: str,
    tuple_weigher: Optional[TupleWeigher],
    join_order: str,
    path_scoped: bool,
    deadline: Deadline,
) -> tuple[Database, GeneratorReport]:
    """The Figure 5 walk proper (validation and tracing live above)."""
    cardinality = cardinality if cardinality is not None else Unlimited()

    report = GeneratorReport()
    schema = _result_database_schema(source, result_schema)
    # The answer has its own meter: the paper's cost model (Formula 1)
    # counts retrievals from the *original* database only, which land on
    # source.meter; in-memory processing of the answer is free.
    answer = Database(schema, enforce_foreign_keys=False)

    counts: dict[str, int] = {name: 0 for name in result_schema.relations}
    present: dict[str, set[int]] = {name: set() for name in result_schema.relations}

    # --- path scoping (§5.2's P_d dependence) -----------------------------
    # allowed_preds[edge key] = the arrival tags (previous edge key, or
    # ("root", origin) for a path's first hop) after which that edge may
    # consume a tuple, derived from the admitted projection paths.
    allowed_preds: dict[tuple, set] = {}
    if path_scoped:
        for path in result_schema.projection_paths:
            for position, hop in enumerate(path.joins):
                previous = (
                    ("root", path.origin)
                    if position == 0
                    else path.joins[position - 1].key
                )
                allowed_preds.setdefault(hop.key, set()).add(previous)
    # arrivals[relation][source tid] = set of arrival tags
    arrivals: dict[str, dict[int, set]] = {
        name: {} for name in result_schema.relations
    }

    def deposit(
        relation: str, rows: list[Row], via, matched_existing: set[int] = frozenset()
    ) -> int:
        added = 0
        tid_map = report.tid_maps.setdefault(relation, {})
        tags = arrivals[relation]
        for tid in matched_existing:
            tags.setdefault(tid, set()).add(via)
        for i, row in enumerate(rows):
            if i % 128 == 0 and i and deadline.expired():
                # cut mid-deposit: the rows already inserted stand, the
                # rest are dropped — same contract as a budget cut
                report.stopped_by_deadline = True
                break
            tags.setdefault(row.tid, set()).add(via)
            if row.tid in present[relation]:
                continue
            present[relation].add(row.tid)
            tid_map[row.tid] = answer.insert(relation, row.as_dict())
            added += 1
        counts[relation] += added
        return added

    # Step 1: seed tuples containing the query tokens (NaïveQ subset if
    # the cardinality constraint does not allow them all).
    for relation in result_schema.relations:
        if deadline.expired():
            report.stopped_by_deadline = True
            break
        tids = seed_tids.get(relation)
        if not tids:
            continue
        budget = cardinality.budget_for(relation, counts)
        attrs = result_schema.retrieval_attributes(relation)
        tid_list = sorted(tids)
        report.seed_matches[relation] = len(tid_list)
        report.seed_budgets[relation] = budget
        if (
            tuple_weigher is not None
            and budget is not None
            and len(tid_list) > budget
        ):
            rows, cut = _fetch_bounded(
                source.relation(relation), tid_list, attrs, None, deadline
            )
            rows.sort(key=tuple_weigher.sort_key(relation))
            rows = rows[:budget]
        else:
            rows, cut = _fetch_bounded(
                source.relation(relation), tid_list, attrs, budget, deadline
            )
        if cut:
            report.stopped_by_deadline = True
        report.seed_counts[relation] = deposit(
            relation, rows, via=("root", relation)
        )

    # Step 2: execute the join edges of G'.
    edges = list(result_schema.join_edges())
    in_degree = result_schema.in_degrees()
    executed: set[tuple] = set()
    # Every origin present in G' counts as populated (possibly empty) so
    # the walk can always make progress past unseeded origins.
    populated: set[str] = set(report.seed_counts) | {
        r for r in result_schema.origin_relations if r in counts
    }

    def pick_next() -> Optional[JoinEdge]:
        candidates = [
            e for e in edges if e.key not in executed and e.source in populated
        ]
        if not candidates:
            return None
        ready = [e for e in candidates if in_degree[e.source] == 0]
        # `ready` is the paper's postponement rule; if a cycle in G'
        # leaves nothing ready, fall back to the heaviest candidate so
        # the walk always terminates.
        pool = ready or candidates
        if join_order == JOIN_ORDER_FIFO:
            return pool[0]  # `edges` keeps admission order
        return max(pool, key=lambda e: (e.weight, e.key))

    while True:
        if report.stopped_by_deadline or deadline.expired():
            # expiry ends the walk like an exhausted budget; edges never
            # executed are reported as skipped below
            report.stopped_by_deadline = True
            break
        if cardinality.exhausted(counts):
            report.stopped_by_cardinality = True
            break
        edge = pick_next()
        if edge is None:
            break
        executed.add(edge.key)
        in_degree[edge.target] -= 1
        populated.add(edge.target)

        source_rel = answer.relation(edge.source)
        if path_scoped:
            predecessors = allowed_preds.get(edge.key, set())
            tid_map = report.tid_maps.get(edge.source, {})
            driving = set()
            for src_tid, tags in arrivals[edge.source].items():
                if tags & predecessors:
                    value = source_rel.fetch(
                        tid_map[src_tid], [edge.source_attribute]
                    )[0]
                    if value is not None:
                        driving.add(value)
        else:
            driving = set()
            for seen, row in enumerate(source_rel.scan([edge.source_attribute])):
                if seen % (4 * _DEADLINE_CHUNK) == 0 and seen and deadline.expired():
                    report.stopped_by_deadline = True
                    break
                if row[edge.source_attribute] is not None:
                    driving.add(row[edge.source_attribute])
        budget = cardinality.budget_for(edge.target, counts)
        if not driving or (budget is not None and budget <= 0):
            report.skipped_edges.append(edge)
            continue

        attrs = result_schema.retrieval_attributes(edge.target)
        target_rel = source.relation(edge.target)
        use_round_robin = strategy == STRATEGY_ROUND_ROBIN or (
            strategy == STRATEGY_AUTO and not _is_to_one(source, edge)
        )
        fetch = _fetch_round_robin if use_round_robin else _fetch_naive
        rows, matched_existing = fetch(
            target_rel,
            edge.target_attribute,
            sorted(driving),
            attrs,
            present[edge.target],
            budget,
            tuple_weigher,
            deadline,
        )
        added = deposit(
            edge.target, rows, via=edge.key, matched_existing=matched_existing
        )
        report.executions.append(
            JoinExecution(
                edge=edge,
                strategy=(
                    STRATEGY_ROUND_ROBIN if use_round_robin else STRATEGY_NAIVE
                ),
                driving_values=len(driving),
                tuples_fetched=len(rows),
                tuples_new=added,
                budget=budget,
            )
        )

    remaining = [e for e in edges if e.key not in executed]
    report.skipped_edges.extend(remaining)
    return answer, report
