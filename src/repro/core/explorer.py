"""Interactive database exploration (paper §3.1).

    "Changing weights associated with the underlying database results in
    a different set of queries executed … and essentially affects the
    part of the database explored. The user may explore different
    regions of the database starting, for example, from those containing
    objects closely related to the topic of a query and progressively
    expanding to parts of the database containing objects more loosely
    related to it."

:class:`Explorer` packages that interaction: it holds a query and a
movable weight threshold; :meth:`expand` lowers the threshold to the
next value at which the result schema actually grows (no dead steps),
:meth:`narrow` raises it back, and :meth:`frontier` previews which
relations the next expansion would add.
"""

from __future__ import annotations

from typing import Optional

from .answer import PrecisAnswer
from .constraints import CardinalityConstraint, WeightThreshold
from .engine import PrecisEngine
from .query import PrecisQuery

__all__ = ["Explorer"]


class Explorer:
    """Stateful, stepwise exploration around one précis query."""

    def __init__(
        self,
        engine: PrecisEngine,
        query: PrecisQuery | str,
        start_threshold: float = 1.0,
        cardinality: Optional[CardinalityConstraint] = None,
    ):
        self.engine = engine
        self.query = (
            PrecisQuery.parse(query) if isinstance(query, str) else query
        )
        self.cardinality = cardinality
        self._threshold = start_threshold
        self._history: list[float] = []

    # ----------------------------------------------------------------- state

    @property
    def threshold(self) -> float:
        return self._threshold

    def current(self) -> PrecisAnswer:
        """The answer at the current threshold."""
        return self.engine.ask(
            self.query,
            degree=WeightThreshold(self._threshold),
            cardinality=self.cardinality,
        )

    def _path_weights(self) -> list[float]:
        """Distinct admissible projection-path weights, descending —

        the thresholds at which the result schema changes."""
        schema, __, ___ = self.engine.plan(
            self.query, degree=WeightThreshold(0.0)
        )
        # exact float weights: rounding here would produce thresholds
        # that sit marginally above the very paths that define them
        weights = sorted(
            {path.weight for path in schema.projection_paths}, reverse=True
        )
        return weights

    # ----------------------------------------------------------------- moves

    def expand(self) -> PrecisAnswer:
        """Lower the threshold to the next weight level that admits at

        least one new projection path; returns the new answer. At the
        bottom of the ladder the threshold (and answer) stop changing.
        """
        for weight in self._path_weights():
            if weight < self._threshold:
                self._history.append(self._threshold)
                self._threshold = weight
                break
        return self.current()

    def narrow(self) -> PrecisAnswer:
        """Undo the last :meth:`expand`; at the top, stays put."""
        if self._history:
            self._threshold = self._history.pop()
        return self.current()

    def frontier(self) -> tuple[float, tuple[str, ...]]:
        """(next threshold, relations the next expansion would add).

        Returns ``(threshold, ())`` when the next step adds attributes
        but no new relation, and ``(current, ())`` when fully expanded.
        """
        next_weight = next(
            (
                weight
                for weight in self._path_weights()
                if weight < self._threshold
            ),
            None,
        )
        if next_weight is None:
            return self._threshold, ()
        now, __, ___ = self.engine.plan(
            self.query, degree=WeightThreshold(self._threshold)
        )
        then, __, ___ = self.engine.plan(
            self.query, degree=WeightThreshold(next_weight)
        )
        added = tuple(
            relation
            for relation in then.relations
            if relation not in now.relations
        )
        return next_weight, added

    def reachable_levels(self) -> list[float]:
        """All thresholds at which the answer changes (descending)."""
        return self._path_weights()
