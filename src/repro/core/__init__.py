"""The précis core: queries, constraints, generators, answers, engine."""

from .answer import PrecisAnswer
from .constraints import (
    CardinalityConstraint,
    CompositeCardinality,
    CompositeDegree,
    DeadlineCardinality,
    DegreeConstraint,
    MaxPathLength,
    MaxTotalTuples,
    MaxTuplesPerRelation,
    SchemaState,
    TopRProjections,
    Unlimited,
    WeightThreshold,
    cardinality_for_response_time,
)
from .deadline import NO_DEADLINE, Deadline
from .database_generator import (
    JOIN_ORDER_FIFO,
    JOIN_ORDER_WEIGHT,
    STRATEGY_AUTO,
    STRATEGY_NAIVE,
    STRATEGY_ROUND_ROBIN,
    GeneratorReport,
    JoinExecution,
    generate_result_database,
)
from .diff import AnswerDiff, diff_answers
from .engine import PrecisEngine
from .estimator import estimate_cardinalities, estimate_total, suggest_cardinality
from .explain import (
    answer_ddl,
    build_explanation,
    emitted_queries,
    render_explanation,
    render_plan,
    render_stats,
)
from .explorer import Explorer
from .query import PrecisQuery
from .value_weights import (
    AttributeValueWeights,
    CallableWeigher,
    CombinedWeights,
    NumericAttributeWeights,
    TupleWeigher,
)
from .result_schema import ResultSchema
from .schema_generator import SchemaGeneratorStats, generate_result_schema

__all__ = [
    "PrecisEngine",
    "PrecisQuery",
    "PrecisAnswer",
    "ResultSchema",
    "generate_result_schema",
    "SchemaGeneratorStats",
    "generate_result_database",
    "GeneratorReport",
    "JoinExecution",
    "STRATEGY_AUTO",
    "STRATEGY_NAIVE",
    "STRATEGY_ROUND_ROBIN",
    "JOIN_ORDER_WEIGHT",
    "JOIN_ORDER_FIFO",
    "DegreeConstraint",
    "TopRProjections",
    "WeightThreshold",
    "MaxPathLength",
    "CompositeDegree",
    "SchemaState",
    "CardinalityConstraint",
    "MaxTotalTuples",
    "MaxTuplesPerRelation",
    "CompositeCardinality",
    "DeadlineCardinality",
    "Unlimited",
    "cardinality_for_response_time",
    "Deadline",
    "NO_DEADLINE",
    "emitted_queries",
    "render_plan",
    "render_stats",
    "answer_ddl",
    "build_explanation",
    "render_explanation",
    "TupleWeigher",
    "AttributeValueWeights",
    "NumericAttributeWeights",
    "CallableWeigher",
    "CombinedWeights",
    "Explorer",
    "AnswerDiff",
    "diff_answers",
    "estimate_cardinalities",
    "estimate_total",
    "suggest_cardinality",
]
