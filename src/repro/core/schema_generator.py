"""The Result Schema Generator — Figure 3 of the paper.

Best-first traversal of the weighted database schema graph:

1. seed a priority queue ``QP`` with every edge attached to a relation
   containing query tokens;
2. repeatedly pop the highest-weight candidate path ``p`` (ties: shorter
   first);
3. check the degree constraint ``d(P_d ∪ {p})`` — on a *terminal*
   failure stop; on a non-terminal failure (see
   :mod:`repro.core.constraints`) skip;
4. projection paths are admitted into ``G'``;
5. join paths are expanded by every adjacent edge, in decreasing edge
   weight so that the first failing extension prunes the rest.

The output is a :class:`~repro.core.result_schema.ResultSchema`.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence

from ..graph.paths import Path
from ..graph.schema_graph import SchemaGraph
from ..obs import NULL_TRACER, Tracer
from ..obs.explain import SchemaStop
from .constraints import CompositeDegree, DegreeConstraint, SchemaState
from .deadline import NO_DEADLINE, Deadline
from .result_schema import ResultSchema

__all__ = ["generate_result_schema", "SchemaGeneratorStats"]


class SchemaGeneratorStats:
    """Counters describing one generator run (exposed for the benches)."""

    def __init__(self):
        self.paths_popped = 0
        self.paths_pushed = 0
        self.paths_admitted = 0
        self.paths_pruned = 0

    def __repr__(self):
        return (
            f"SchemaGeneratorStats(popped={self.paths_popped}, "
            f"pushed={self.paths_pushed}, admitted={self.paths_admitted}, "
            f"pruned={self.paths_pruned})"
        )


def _is_terminal_failure(
    constraint: DegreeConstraint, state: SchemaState, candidate: Path
) -> bool:
    """Whether a rejection of *candidate* should stop the whole run."""
    if constraint.terminal_on_failure:
        return True
    if isinstance(constraint, CompositeDegree):
        return constraint.failing_terminal(state, candidate)
    return False


def _describe_failure(
    constraint: DegreeConstraint, state: SchemaState, candidate: Path
) -> str:
    """Name the constraint (or the failing composite part) that
    rejected *candidate* — what EXPLAIN reports as the bound."""
    if isinstance(constraint, CompositeDegree):
        failing = constraint.failing_parts(state, candidate)
        if failing:
            return " AND ".join(part.describe() for part in failing)
    return constraint.describe()


def generate_result_schema(
    graph: SchemaGraph,
    token_relations: Sequence[str],
    degree: DegreeConstraint,
    stats: Optional[SchemaGeneratorStats] = None,
    tracer: Tracer = NULL_TRACER,
    deadline: Deadline = NO_DEADLINE,
) -> ResultSchema:
    """Run the Figure 3 algorithm.

    Parameters
    ----------
    graph:
        The weighted database schema graph ``G``.
    token_relations:
        Relations in which the query tokens were found (the inverted
        index output). Order is irrelevant; duplicates are ignored.
    degree:
        The degree constraint ``d``.
    stats:
        Optional counter object to fill in.
    tracer:
        Observability hook (``repro.obs``): the run is wrapped in a
        ``"schema_generator"`` span carrying the same counters as
        *stats* plus ``relations_expanded``. No-op by default.
    deadline:
        Cooperative time budget (:mod:`repro.core.deadline`): checked
        once on entry and at every queue pop. Expiry ends the traversal
        exactly like a terminal degree-constraint failure — the paths
        admitted so far form a valid (partial) schema whose
        :attr:`~repro.core.result_schema.ResultSchema.stop` records
        ``kind="deadline"``. Never-expiring by default.

    Returns
    -------
    ResultSchema
        The sub-schema ``G'`` with its admitted projection paths.
    """
    stats = stats if stats is not None else SchemaGeneratorStats()
    origins = tuple(dict.fromkeys(token_relations))
    for origin in origins:
        if not graph.has_relation(origin):
            raise ValueError(f"token relation {origin} not in schema graph")

    with tracer.span("schema_generator"):
        result = _best_first_traversal(graph, origins, degree, stats, deadline)
        tracer.count("relations_expanded", len(result.relations))
        tracer.count("paths_pruned", stats.paths_pruned)
        tracer.count("paths_pushed", stats.paths_pushed)
        tracer.count("paths_popped", stats.paths_popped)
        tracer.count("paths_admitted", stats.paths_admitted)
    return result


def _best_first_traversal(
    graph: SchemaGraph,
    origins: tuple[str, ...],
    degree: DegreeConstraint,
    stats: SchemaGeneratorStats,
    deadline: Deadline,
) -> ResultSchema:
    """The Figure 3 loop proper (validation and tracing live above)."""
    result = ResultSchema(origin_relations=origins)
    state = SchemaState()

    # Cooperative deadline: checked on entry and per pop. Expiry cuts
    # the queue like a terminal degree failure, leaving a valid partial
    # schema that reports the deadline as its stop reason.
    if deadline.expired():
        result.stop = SchemaStop(kind="deadline", constraint="deadline expired")
        return result

    # EXPLAIN provenance: the first degree rejection seen anywhere (at a
    # pop or while extending). Even when it is not terminal — i.e. the
    # traversal keeps scanning — it is the proof that the degree
    # constraint, not graph exhaustion, bounded the schema.
    first_rejection: Optional[SchemaStop] = None

    def record_rejection(candidate: Path) -> None:
        nonlocal first_rejection
        if first_rejection is None:
            first_rejection = SchemaStop(
                kind="degree",
                constraint=_describe_failure(degree, state, candidate),
                rejected_path=repr(candidate),
                rejected_weight=candidate.weight,
            )

    # Step 1: QP <- every edge attached to a token relation.
    heap: list[tuple[tuple, Path]] = []
    counter = 0  # FIFO tiebreak for fully identical sort keys

    def push(path: Path) -> None:
        nonlocal counter
        heapq.heappush(heap, ((*path.sort_key, counter), path))
        counter += 1
        stats.paths_pushed += 1

    for origin in origins:
        for edge in graph.edges_attached_to(origin):
            push(Path.seed(edge))

    # Step 2: best-first expansion.
    deadline_tripped = False
    while heap:
        if deadline.expired():
            deadline_tripped = True
            break
        __, path = heapq.heappop(heap)
        stats.paths_popped += 1

        if not degree.admits(state, path):
            record_rejection(path)
            if _is_terminal_failure(degree, state, path):
                break
            continue

        if path.is_projection_path:
            result.admit(path)
            state.admit(path)
            stats.paths_admitted += 1
            continue

        # Join path: expand by every adjacent edge, heaviest first, so
        # the first inadmissible extension prunes the remainder (their
        # weights are no larger). Extensions that merely cannot attach
        # (cycle, wrong endpoint) are skipped without pruning.
        terminal = path.terminal_relation
        adjacent = sorted(
            graph.edges_attached_to(terminal),
            key=lambda e: -e.weight,
        )
        for edge in adjacent:
            if not path.can_extend(edge):
                continue
            extended = path.extend(edge)
            if not degree.admits(state, extended):
                record_rejection(extended)
                if _is_terminal_failure(degree, state, extended):
                    stats.paths_pruned += 1
                    break
                continue
            push(extended)

    if deadline_tripped:
        # the deadline, not the degree constraint, ended the traversal
        result.stop = SchemaStop(
            kind="deadline", constraint="deadline expired"
        )
    else:
        result.stop = (
            first_rejection
            if first_rejection is not None
            else SchemaStop(kind="exhausted")
        )
    return result
