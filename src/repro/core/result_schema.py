"""The result schema ``D'`` — output of the Result Schema Generator (§5.1).

A :class:`ResultSchema` is the sub-graph ``G'`` of the database schema
graph: the relations holding query tokens, the relations transitively
joining to them along admitted projection paths, the projected attributes,
and the join edges connecting them. It also records, per relation, the
**in-degree** used by the Result Database Generator to postpone joins
departing from relations still awaiting arrivals (paper §5.1–5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..graph.paths import Path
from ..graph.schema_graph import JoinEdge
from ..obs.explain import SchemaStop

__all__ = ["ResultSchema"]


@dataclass
class ResultSchema:
    """Sub-schema selected for a précis answer."""

    #: relations in which query tokens were found (the traversal roots)
    origin_relations: tuple[str, ...]
    #: admitted projection paths, in admission (decreasing-weight) order
    projection_paths: list[Path] = field(default_factory=list)
    #: how the Figure 3 traversal ended (EXPLAIN provenance): the
    #: degree-constraint failure that cut the queue, or queue
    #: exhaustion. Filled by the schema generator; riding on the schema
    #: means plan-cache hits keep serving the original stop reason.
    stop: Optional[SchemaStop] = None

    # ------------------------------------------------------------- building

    def admit(self, path: Path) -> None:
        if not path.is_projection_path:
            raise ValueError("only projection paths enter the result schema")
        self.projection_paths.append(path)

    # ------------------------------------------------------------- queries

    @property
    def relations(self) -> tuple[str, ...]:
        """Relations present in ``G'``, in first-appearance order."""
        out: dict[str, None] = {}
        for path in self.projection_paths:
            for relation in path.relations():
                out[relation] = None
        return tuple(out)

    def is_empty(self) -> bool:
        return not self.projection_paths

    def attributes_of(self, relation: str) -> tuple[str, ...]:
        """Attributes of *relation* projected in the answer (visible to

        the user), in admission order."""
        out: dict[str, None] = {}
        for path in self.projection_paths:
            terminal = path.terminal_attribute
            if terminal is not None and terminal[0] == relation:
                out[terminal[1]] = None
        return tuple(out)

    @property
    def projected_attributes(self) -> frozenset[tuple[str, str]]:
        return frozenset(
            path.terminal_attribute
            for path in self.projection_paths
            if path.terminal_attribute is not None
        )

    def join_edges(self) -> tuple[JoinEdge, ...]:
        """Distinct join edges of ``G'``, in first-appearance order."""
        out: dict[tuple, JoinEdge] = {}
        for path in self.projection_paths:
            for edge in path.joins:
                out.setdefault(edge.key, edge)
        return tuple(out.values())

    def join_edges_into(self, relation: str) -> tuple[JoinEdge, ...]:
        return tuple(e for e in self.join_edges() if e.target == relation)

    def join_edges_from(self, relation: str) -> tuple[JoinEdge, ...]:
        return tuple(e for e in self.join_edges() if e.source == relation)

    def in_degree(self, relation: str) -> int:
        """Number of ``G'`` join edges arriving at *relation*.

        The paper marks each relation reached by paths from several input
        relations and counts arrivals; the database generator decrements
        this count as each arriving join executes and only lets joins
        *depart* once it reaches zero.
        """
        return len(self.join_edges_into(relation))

    def in_degrees(self) -> dict[str, int]:
        return {relation: self.in_degree(relation) for relation in self.relations}

    def retrieval_attributes(self, relation: str) -> tuple[str, ...]:
        """Attributes that must be *retrieved* for a relation: the

        projected (visible) ones plus any join attributes used by ``G'``
        edges touching the relation. The paper notes these extra
        attributes "will not show in the final answer, since they are not
        included in the result schema" — they exist so subsequent joins
        can be driven.
        """
        out: dict[str, None] = dict.fromkeys(self.attributes_of(relation))
        for edge in self.join_edges():
            if edge.source == relation:
                out.setdefault(edge.source_attribute, None)
            if edge.target == relation:
                out.setdefault(edge.target_attribute, None)
        return tuple(out)

    def paths_from(self, origin: str) -> list[Path]:
        return [p for p in self.projection_paths if p.origin == origin]

    # ------------------------------------------------------------- display

    def describe(self) -> str:
        """Human-readable multi-line summary (used by the examples)."""
        lines = []
        for relation in self.relations:
            visible = ", ".join(self.attributes_of(relation)) or "—"
            marker = "*" if relation in self.origin_relations else " "
            lines.append(
                f"{marker} {relation}({visible})  in-degree={self.in_degree(relation)}"
            )
        for edge in self.join_edges():
            lines.append(
                f"    {edge.source}.{edge.source_attribute} → "
                f"{edge.target}.{edge.target_attribute}  w={edge.weight:g}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"ResultSchema({len(self.relations)} relations, "
            f"{len(self.projected_attributes)} attributes, "
            f"{len(self.projection_paths)} paths)"
        )
