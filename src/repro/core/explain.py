"""Explain facilities: the SQL the generators conceptually submit.

The paper describes every step of the Result Database Generator as an
SQL query sent to the DBMS ("the creation of the result database is
performed by submitting to the database a series of selection queries
without joins", §5.2/§6). This module reconstructs that query script
from a :class:`~repro.core.answer.PrecisAnswer` — useful for debugging,
for teaching, and for porting the answer onto a real SQL engine — plus
a human-readable execution plan.
"""

from __future__ import annotations

from ..core.answer import PrecisAnswer
from ..core.database_generator import (
    STRATEGY_ROUND_ROBIN,
    GeneratorReport,
)
from ..core.result_schema import ResultSchema
from ..obs import QueryStats, format_stats
from ..relational.ddl import create_schema_sql

__all__ = ["emitted_queries", "render_plan", "render_stats", "answer_ddl"]


def _projection_list(schema: ResultSchema, relation: str) -> str:
    attrs = schema.retrieval_attributes(relation)
    return ", ".join(attrs) if attrs else "*"


def emitted_queries(answer: PrecisAnswer) -> list[str]:
    """The SQL script equivalent to the generator run, in execution

    order: one tid-list selection per seeded relation (the paper's
    ``σ_Tids(R)[π(R)]``; rendered with a ROWID placeholder), then one
    IN-list selection per executed join edge (``σ_Ids(Rj)[π(Rj)]``) —
    RoundRobin edges render as one parameterized query *per driving
    tuple*, which is exactly why Figure 9 finds them slower."""
    schema = answer.result_schema
    report = answer.report
    queries: list[str] = []
    for relation, count in report.seed_counts.items():
        queries.append(
            f"SELECT {_projection_list(schema, relation)} "
            f"FROM {relation} WHERE ROWID IN (/* {count} matching "
            f"tuple ids from the inverted index */)"
        )
    for execution in report.executions:
        edge = execution.edge
        projection = _projection_list(schema, edge.target)
        if execution.strategy == STRATEGY_ROUND_ROBIN:
            queries.append(
                f"-- round-robin: one scan per driving tuple "
                f"({execution.driving_values} scans)\n"
                f"SELECT {projection} FROM {edge.target} "
                f"WHERE {edge.target_attribute} = ?"
            )
        else:
            queries.append(
                f"SELECT {projection} FROM {edge.target} "
                f"WHERE {edge.target_attribute} IN "
                f"(/* {execution.driving_values} values of "
                f"{edge.source}.{edge.source_attribute} */)"
            )
    return queries


def render_plan(answer: PrecisAnswer) -> str:
    """A multi-line, human-readable account of what the generators did."""
    schema = answer.result_schema
    report: GeneratorReport = answer.report
    lines = [f"précis plan for {answer.query.text!r}"]
    lines.append("tokens:")
    for match in answer.matches:
        if match.found:
            places = ", ".join(
                f"{occ.relation}.{occ.attribute} ({len(occ.tids)} tuples)"
                for occ in match.occurrences
            )
            lines.append(f"  {match.token!r} -> {places}")
        else:
            lines.append(f"  {match.token!r} -> NOT FOUND")
    lines.append("result schema:")
    for relation in schema.relations:
        visible = ", ".join(schema.attributes_of(relation)) or "(join-only)"
        lines.append(
            f"  {relation}[{visible}] in-degree={schema.in_degree(relation)}"
        )
    lines.append("execution:")
    for relation, count in report.seed_counts.items():
        lines.append(f"  seed {relation}: {count} tuple(s)")
    for execution in report.executions:
        edge = execution.edge
        lines.append(
            f"  join {edge.source}.{edge.source_attribute} → "
            f"{edge.target}.{edge.target_attribute} "
            f"(w={edge.weight:g}, {execution.strategy}): "
            f"{execution.driving_values} driving value(s), "
            f"{execution.tuples_new} new tuple(s)"
        )
    for edge in report.skipped_edges:
        lines.append(
            f"  skip {edge.source} → {edge.target} "
            f"(empty driving set or no budget)"
        )
    if report.stopped_by_cardinality:
        lines.append("  stopped: cardinality constraint exhausted")
    lines.append(
        f"answer: {answer.total_tuples()} tuples in "
        f"{len(schema.relations)} relations; retrieval cost "
        f"{answer.cost.tuple_reads} tuple reads + "
        f"{answer.cost.index_lookups} index probes"
    )
    return "\n".join(lines)


def render_stats(source: PrecisAnswer | QueryStats) -> str:
    """The per-stage timing + counter table of a traced run.

    Accepts either a :class:`~repro.obs.QueryStats` or a
    :class:`~repro.core.answer.PrecisAnswer` produced with tracing
    enabled (``PrecisEngine(..., tracer=Tracer(...))`` or a per-call
    ``tracer=``); raises ``ValueError`` for an untraced answer, since an
    untraced run records nothing to render.
    """
    stats = source.stats if isinstance(source, PrecisAnswer) else source
    if stats is None:
        raise ValueError(
            "answer carries no stats — run the engine with tracing enabled "
            "(PrecisEngine(..., tracer=repro.obs.Tracer()) or ask(..., "
            "tracer=...))"
        )
    return format_stats(stats)


def answer_ddl(answer: PrecisAnswer) -> str:
    """``CREATE TABLE`` script for the answer's own schema — the "whole

    new database with its own schema and constraints" made explicit."""
    return create_schema_sql(answer.database.schema)
