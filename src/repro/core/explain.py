"""Explain facilities: the SQL the generators conceptually submit.

The paper describes every step of the Result Database Generator as an
SQL query sent to the DBMS ("the creation of the result database is
performed by submitting to the database a series of selection queries
without joins", §5.2/§6). This module reconstructs that query script
from a :class:`~repro.core.answer.PrecisAnswer` — useful for debugging,
for teaching, and for porting the answer onto a real SQL engine — plus
a human-readable execution plan.

It also hosts :func:`build_explanation`, the builder that distils one
finished answer into the structured provenance record of
:mod:`repro.obs.explain` ("why is this relation/tuple in my précis,
and which constraint bounded it?") — the engine attaches its output as
:attr:`~repro.core.answer.PrecisAnswer.explanation`.
"""

from __future__ import annotations

from ..core.answer import PrecisAnswer
from ..core.database_generator import (
    STRATEGY_ROUND_ROBIN,
    GeneratorReport,
)
from ..core.result_schema import ResultSchema
from ..obs import QueryStats, format_stats
from ..obs.explain import (
    BatchProvenance,
    CacheProvenance,
    Explanation,
    RelationProvenance,
)
from ..relational.ddl import create_schema_sql
from .constraints import CardinalityConstraint, DegreeConstraint

__all__ = [
    "emitted_queries",
    "render_plan",
    "render_stats",
    "answer_ddl",
    "build_explanation",
    "render_explanation",
]


def _projection_list(schema: ResultSchema, relation: str) -> str:
    attrs = schema.retrieval_attributes(relation)
    return ", ".join(attrs) if attrs else "*"


def emitted_queries(answer: PrecisAnswer) -> list[str]:
    """The SQL script equivalent to the generator run, in execution

    order: one tid-list selection per seeded relation (the paper's
    ``σ_Tids(R)[π(R)]``; rendered with a ROWID placeholder), then one
    IN-list selection per executed join edge (``σ_Ids(Rj)[π(Rj)]``) —
    RoundRobin edges render as one parameterized query *per driving
    tuple*, which is exactly why Figure 9 finds them slower."""
    schema = answer.result_schema
    report = answer.report
    queries: list[str] = []
    for relation, count in report.seed_counts.items():
        queries.append(
            f"SELECT {_projection_list(schema, relation)} "
            f"FROM {relation} WHERE ROWID IN (/* {count} matching "
            f"tuple ids from the inverted index */)"
        )
    for execution in report.executions:
        edge = execution.edge
        projection = _projection_list(schema, edge.target)
        if execution.strategy == STRATEGY_ROUND_ROBIN:
            queries.append(
                f"-- round-robin: one scan per driving tuple "
                f"({execution.driving_values} scans)\n"
                f"SELECT {projection} FROM {edge.target} "
                f"WHERE {edge.target_attribute} = ?"
            )
        else:
            queries.append(
                f"SELECT {projection} FROM {edge.target} "
                f"WHERE {edge.target_attribute} IN "
                f"(/* {execution.driving_values} values of "
                f"{edge.source}.{edge.source_attribute} */)"
            )
    return queries


def render_plan(answer: PrecisAnswer) -> str:
    """A multi-line, human-readable account of what the generators did."""
    schema = answer.result_schema
    report: GeneratorReport = answer.report
    lines = [f"précis plan for {answer.query.text!r}"]
    lines.append("tokens:")
    for match in answer.matches:
        if match.found:
            places = ", ".join(
                f"{occ.relation}.{occ.attribute} ({len(occ.tids)} tuples)"
                for occ in match.occurrences
            )
            lines.append(f"  {match.token!r} -> {places}")
        else:
            lines.append(f"  {match.token!r} -> NOT FOUND")
    lines.append("result schema:")
    for relation in schema.relations:
        visible = ", ".join(schema.attributes_of(relation)) or "(join-only)"
        lines.append(
            f"  {relation}[{visible}] in-degree={schema.in_degree(relation)}"
        )
    lines.append("execution:")
    for relation, count in report.seed_counts.items():
        lines.append(f"  seed {relation}: {count} tuple(s)")
    for execution in report.executions:
        edge = execution.edge
        lines.append(
            f"  join {edge.source}.{edge.source_attribute} → "
            f"{edge.target}.{edge.target_attribute} "
            f"(w={edge.weight:g}, {execution.strategy}): "
            f"{execution.driving_values} driving value(s), "
            f"{execution.tuples_new} new tuple(s)"
        )
    for edge in report.skipped_edges:
        lines.append(
            f"  skip {edge.source} → {edge.target} "
            f"(empty driving set or no budget)"
        )
    if report.stopped_by_cardinality:
        lines.append("  stopped: cardinality constraint exhausted")
    lines.append(
        f"answer: {answer.total_tuples()} tuples in "
        f"{len(schema.relations)} relations; retrieval cost "
        f"{answer.cost.tuple_reads} tuple reads + "
        f"{answer.cost.index_lookups} index probes"
    )
    return "\n".join(lines)


def render_stats(source: PrecisAnswer | QueryStats) -> str:
    """The per-stage timing + counter table of a traced run.

    Accepts either a :class:`~repro.obs.QueryStats` or a
    :class:`~repro.core.answer.PrecisAnswer` produced with tracing
    enabled (``PrecisEngine(..., tracer=Tracer(...))`` or a per-call
    ``tracer=``); raises ``ValueError`` for an untraced answer, since an
    untraced run records nothing to render.
    """
    stats = source.stats if isinstance(source, PrecisAnswer) else source
    if stats is None:
        raise ValueError(
            "answer carries no stats — run the engine with tracing enabled "
            "(PrecisEngine(..., tracer=repro.obs.Tracer()) or ask(..., "
            "tracer=...))"
        )
    return format_stats(stats)


def _edge_text(edge) -> str:
    return (
        f"{edge.source}.{edge.source_attribute} → "
        f"{edge.target}.{edge.target_attribute}"
    )


def build_explanation(
    answer: PrecisAnswer,
    degree: DegreeConstraint,
    cardinality: CardinalityConstraint,
    plan_cache: str = "off",
    answer_cache: str = "off",
    deadline_stage: "str | None" = None,
    trace_id: "str | None" = None,
) -> Explanation:
    """Distil one finished answer into its provenance record.

    *plan_cache* / *answer_cache* are the cache outcomes of the run
    (``"hit"`` / ``"miss"`` / ``"off"`` / ``"uncacheable"``) — the
    engine knows them; standalone callers may leave the defaults.
    *deadline_stage* is the pipeline stage a request deadline tripped
    at (None for an answer that ran to completion); it surfaces in
    :meth:`~repro.obs.explain.Explanation.bounding_constraints` next to
    the degree and cardinality bounds. *trace_id* stamps the record
    with the serving-layer request that produced it
    (:mod:`repro.obs.context`) so ``--explain`` output, slow-query
    lines and histogram exemplars all share one correlation key.

    The record answers, per relation, *why it is in the result schema*
    (seed token match vs. the weighted path that admitted it), names
    the degree constraint that stopped schema expansion (riding on
    :attr:`~repro.core.result_schema.ResultSchema.stop`, so plan-cache
    hits keep the original reason), and per tuple batch, which
    strategy and driving set pulled it under which cardinality budget.
    """
    schema = answer.result_schema
    report: GeneratorReport = answer.report

    tokens_by_relation: dict[str, list[str]] = {}
    for match in answer.matches:
        for occurrence in match.occurrences:
            tokens_by_relation.setdefault(occurrence.relation, [])
            if match.token not in tokens_by_relation[occurrence.relation]:
                tokens_by_relation[occurrence.relation].append(match.token)

    relations: list[RelationProvenance] = []
    seen: set[str] = set()
    for path in schema.projection_paths:
        for relation in path.relations():
            if relation not in seen:
                seen.add(relation)
                if relation in schema.origin_relations:
                    relations.append(
                        RelationProvenance(
                            relation=relation,
                            kind="seed",
                            tokens=tuple(
                                tokens_by_relation.get(relation, ())
                            ),
                        )
                    )
                else:
                    via = next(
                        (
                            edge
                            for edge in path.joins
                            if edge.target == relation
                        ),
                        None,
                    )
                    relations.append(
                        RelationProvenance(
                            relation=relation,
                            kind="joined",
                            via_path=repr(path),
                            path_weight=path.weight,
                            via_edge=(
                                _edge_text(via) if via is not None else None
                            ),
                        )
                    )

    batches: list[BatchProvenance] = []
    for relation, count in report.seed_counts.items():
        batches.append(
            BatchProvenance(
                relation=relation,
                kind="seed",
                via_edge=None,
                strategy=None,
                driving_values=report.seed_matches.get(relation, count),
                tuples_fetched=count,
                tuples_new=count,
                budget=report.seed_budgets.get(relation),
            )
        )
    for execution in report.executions:
        batches.append(
            BatchProvenance(
                relation=execution.edge.target,
                kind="join",
                via_edge=_edge_text(execution.edge),
                strategy=execution.strategy,
                driving_values=execution.driving_values,
                tuples_fetched=execution.tuples_fetched,
                tuples_new=execution.tuples_new,
                budget=execution.budget,
                edge_weight=execution.edge.weight,
            )
        )

    return Explanation(
        query=answer.query.text,
        degree=degree.describe(),
        cardinality=cardinality.describe(),
        relations=relations,
        schema_stop=schema.stop,
        batches=batches,
        skipped_edges=[_edge_text(e) for e in report.skipped_edges],
        stopped_by_cardinality=report.stopped_by_cardinality,
        cache=CacheProvenance(plan=plan_cache, answer=answer_cache),
        deadline_stage=deadline_stage,
        trace_id=trace_id,
    )


def render_explanation(source: PrecisAnswer | Explanation) -> str:
    """The ``--explain`` provenance view.

    Accepts an :class:`~repro.obs.explain.Explanation` or an answer
    produced by :meth:`~repro.core.engine.PrecisEngine.ask` (which
    always carries one); raises ``ValueError`` for an answer built
    without the engine (e.g. straight from the generators).
    """
    explanation = (
        source.explanation if isinstance(source, PrecisAnswer) else source
    )
    if explanation is None:
        raise ValueError(
            "answer carries no explanation — ask through PrecisEngine.ask "
            "(or build one with repro.core.explain.build_explanation)"
        )
    return explanation.render()


def answer_ddl(answer: PrecisAnswer) -> str:
    """``CREATE TABLE`` script for the answer's own schema — the "whole

    new database with its own schema and constraints" made explicit."""
    return create_schema_sql(answer.database.schema)
