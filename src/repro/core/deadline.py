"""Cooperative per-request deadlines for the précis pipeline.

A production precis service cannot let one slow query — a deep schema
traversal plus transitive joins — stall its caller indefinitely. A
:class:`Deadline` is the budget object the serving layer
(:mod:`repro.service`) threads through
:meth:`~repro.core.engine.PrecisEngine.ask` into the schema generator's
best-first loop and the database generator's join loop. The generators
check it **cooperatively at iteration boundaries**: an expired deadline
stops traversal exactly like a degree/cardinality constraint would, so
the caller always receives a *valid, partial* answer — flagged
:attr:`~repro.core.answer.PrecisAnswer.degraded`, with the stage that
tripped recorded in EXPLAIN provenance — never an exception and never a
half-built object.

The clock is injectable (any zero-argument callable returning seconds,
monotonic by convention) so tests can drive expiry deterministically;
:data:`NO_DEADLINE` is the shared never-expiring default every
instrumented call site falls back to, keeping the deadline-free hot
path to a single attribute check.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Deadline", "NO_DEADLINE"]


class Deadline:
    """A point on a (monotonic) clock after which work should stop.

    >>> deadline = Deadline.after(0.050)   # 50 ms from now
    >>> deadline.expired()
    False
    >>> Deadline.never().expired()
    False

    Subclassable on purpose: the test suite injects deadlines that trip
    after a fixed number of :meth:`expired` checks to hit every pipeline
    stage deterministically.
    """

    def __init__(
        self,
        expires_at: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ):
        """*expires_at* is a timestamp on *clock*'s axis; ``None`` never
        expires."""
        self.expires_at = expires_at
        self.clock = clock

    # ------------------------------------------------------------ builders

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline *seconds* from now (negative = already expired)."""
        return cls(clock() + seconds, clock)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires (see also :data:`NO_DEADLINE`)."""
        return cls(None)

    # ------------------------------------------------------------- queries

    def expires(self) -> bool:
        """Whether this deadline can expire at all."""
        return self.expires_at is not None

    def expired(self) -> bool:
        """True iff the budget is spent. The pipeline's cooperative
        check — called at iteration boundaries, so keep it cheap."""
        return self.expires_at is not None and self.clock() >= self.expires_at

    def remaining(self) -> float:
        """Seconds left (``inf`` for a never-expiring deadline, clamped
        at 0.0 once expired)."""
        if self.expires_at is None:
            return float("inf")
        return max(0.0, self.expires_at - self.clock())

    def __repr__(self):
        if self.expires_at is None:
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.6g}s)"


#: the shared never-expiring default — every deadline-aware call site
#: falls back to this, so deadline-free runs cost one attribute check
NO_DEADLINE = Deadline(None)
