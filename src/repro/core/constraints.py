"""Degree and cardinality constraints (paper §3.3, Tables 1 and 2).

A précis answer is bounded by a pair of constraints:

* a **degree constraint** ``d`` decides which projection paths enter the
  result schema — Table 1 lists three forms: at most *r* top-weighted
  projections, only projections of weight ≥ *w0*, only projections of
  path length ≤ *l0*;
* a **cardinality constraint** ``c`` decides how many tuples enter the
  result database — Table 2 lists two forms: at most *c0* tuples total,
  at most *c0* tuples per relation. "A combination of those is also
  possible" — provided here by the composite classes.

Formula (3) of the paper derives a cardinality constraint from a target
response time, given the cost model's ``IndexTime``/``TupleTime``; see
:func:`cardinality_for_response_time`.

Degree-constraint protocol
--------------------------

The Result Schema Generator pops candidate paths off a queue ordered by
decreasing weight and asks ``d(P_d ∪ {p})``. The check is expressed here
as ``admits(state, candidate)``. On failure the paper's algorithm stops
outright, which is exact when the failure is *monotone* along the queue
order (true for the weight form — every later path weighs no more — and
for the count form). The length form is not monotone in weight order, so
:class:`MaxPathLength` reports ``terminal_on_failure = False`` and the
generator skips the path instead of stopping; this keeps the constraint
exact rather than weight-order-heuristic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..graph.paths import Path
from ..relational.cost import CostParameters
from .deadline import Deadline

__all__ = [
    "SchemaState",
    "DegreeConstraint",
    "TopRProjections",
    "WeightThreshold",
    "MaxPathLength",
    "CompositeDegree",
    "CardinalityConstraint",
    "MaxTotalTuples",
    "MaxTuplesPerRelation",
    "CompositeCardinality",
    "DeadlineCardinality",
    "Unlimited",
    "cardinality_for_response_time",
]


# --------------------------------------------------------------------- degree


@dataclass
class SchemaState:
    """Running state of the Result Schema Generator the constraints see."""

    projection_paths: list[Path] = field(default_factory=list)
    #: distinct (relation, attribute) pairs projected so far
    attributes: set[tuple[str, str]] = field(default_factory=set)

    def admit(self, path: Path) -> None:
        assert path.is_projection_path
        self.projection_paths.append(path)
        terminal = path.terminal_attribute
        assert terminal is not None
        self.attributes.add(terminal)


class DegreeConstraint(ABC):
    """Decides whether a candidate path may join the result schema."""

    #: True iff a rejected candidate implies every later queue entry is
    #: also rejected (failure is monotone in the queue's weight order).
    terminal_on_failure: bool = True

    @abstractmethod
    def admits(self, state: SchemaState, candidate: Path) -> bool:
        """``d(P_d ∪ {candidate})`` of the paper."""

    def describe(self) -> str:
        """Short human-readable form for EXPLAIN provenance records."""
        return repr(self)


@dataclass(frozen=True)
class TopRProjections(DegreeConstraint):
    """Table 1, row 1: "selects up to r top-weighted projections".

    Following the §6 experiments ("we considered the degree d to be the
    maximum number of attributes projected in the answer"), *r* bounds
    the number of *distinct projected attributes*; a second path landing
    on an already-projected attribute is free.
    """

    r: int
    terminal_on_failure: bool = field(default=True, init=False)

    def __post_init__(self):
        if self.r < 0:
            raise ValueError("r must be non-negative")

    def admits(self, state: SchemaState, candidate: Path) -> bool:
        if candidate.is_projection_path:
            terminal = candidate.terminal_attribute
            return len(state.attributes | {terminal}) <= self.r
        # A join path is only worth keeping if a *new* attribute could
        # still be admitted beyond it.
        return len(state.attributes) < self.r

    def describe(self) -> str:
        return f"top-r projections (r={self.r})"


@dataclass(frozen=True)
class WeightThreshold(DegreeConstraint):
    """Table 1, row 2: only projections of weight ≥ w0.

    The paper highlights this form as "more immune to the effects of
    database normalization or restructuring" (§3.3).
    """

    w0: float
    terminal_on_failure: bool = field(default=True, init=False)

    def __post_init__(self):
        if not 0.0 <= self.w0 <= 1.0:
            raise ValueError("w0 must be in [0,1]")

    def admits(self, state: SchemaState, candidate: Path) -> bool:
        # Weights only shrink along a path, so the check is the same for
        # join paths (can anything beyond still reach w0?) and for
        # projection paths (is this projection heavy enough?).
        return candidate.weight >= self.w0

    def describe(self) -> str:
        return f"weight threshold (w0={self.w0:g})"


@dataclass(frozen=True)
class MaxPathLength(DegreeConstraint):
    """Table 1, row 3: only projections with path length ≤ l0."""

    l0: int
    terminal_on_failure: bool = field(default=False, init=False)

    def __post_init__(self):
        if self.l0 < 0:
            raise ValueError("l0 must be non-negative")

    def admits(self, state: SchemaState, candidate: Path) -> bool:
        if candidate.is_projection_path:
            return candidate.length <= self.l0
        # A join path of length l0 can no longer host a projection
        # within the budget (the projection edge adds 1).
        return candidate.length < self.l0

    def describe(self) -> str:
        return f"max path length (l0={self.l0})"


@dataclass(frozen=True)
class CompositeDegree(DegreeConstraint):
    """Conjunction of degree constraints (all must admit)."""

    parts: tuple[DegreeConstraint, ...]

    def __init__(self, *parts: DegreeConstraint):
        if not parts:
            raise ValueError("CompositeDegree needs at least one part")
        object.__setattr__(self, "parts", tuple(parts))

    @property
    def terminal_on_failure(self) -> bool:  # type: ignore[override]
        # Safe only if *every* possible failure is terminal; a composite
        # with a non-terminal part must keep scanning the queue.
        return all(part.terminal_on_failure for part in self.parts)

    def admits(self, state: SchemaState, candidate: Path) -> bool:
        return all(part.admits(state, candidate) for part in self.parts)

    def failing_terminal(self, state: SchemaState, candidate: Path) -> bool:
        """True iff some *terminal* part rejects the candidate — in that

        case the generator may stop even though the composite as a whole
        is non-terminal."""
        return any(
            part.terminal_on_failure and not part.admits(state, candidate)
            for part in self.parts
        )

    def failing_parts(
        self, state: SchemaState, candidate: Path
    ) -> tuple[DegreeConstraint, ...]:
        """The parts rejecting *candidate* — EXPLAIN names these rather
        than the whole conjunction."""
        return tuple(
            part
            for part in self.parts
            if not part.admits(state, candidate)
        )

    def describe(self) -> str:
        return " AND ".join(part.describe() for part in self.parts)


# ---------------------------------------------------------------- cardinality


class CardinalityConstraint(ABC):
    """Budgets how many tuples may still be added to the result."""

    def describe(self) -> str:
        """Short human-readable form for EXPLAIN provenance records."""
        return repr(self)

    @abstractmethod
    def budget_for(
        self, relation: str, cardinalities: Mapping[str, int]
    ) -> Optional[int]:
        """Max tuples that may still be added to *relation* given the

        current per-relation result *cardinalities*; ``None`` means
        unbounded."""

    def exhausted(self, cardinalities: Mapping[str, int]) -> bool:
        """True iff no relation may receive any further tuple."""
        budget = self.budget_for("", cardinalities)
        return budget is not None and budget <= 0


@dataclass(frozen=True)
class Unlimited(CardinalityConstraint):
    """No cardinality bound (useful for tests and tiny databases)."""

    def budget_for(self, relation, cardinalities):
        return None

    def exhausted(self, cardinalities):
        return False

    def describe(self) -> str:
        return "unlimited"


@dataclass(frozen=True)
class MaxTotalTuples(CardinalityConstraint):
    """Table 2, row 1: ``card(D') ≤ c0``."""

    c0: int

    def __post_init__(self):
        if self.c0 < 0:
            raise ValueError("c0 must be non-negative")

    def budget_for(self, relation, cardinalities):
        return max(0, self.c0 - sum(cardinalities.values()))

    def exhausted(self, cardinalities):
        return sum(cardinalities.values()) >= self.c0

    def describe(self) -> str:
        return f"max total tuples (c0={self.c0})"


@dataclass(frozen=True)
class MaxTuplesPerRelation(CardinalityConstraint):
    """Table 2, row 2: ``card(R'_t) ≤ c0`` for every relation."""

    c0: int

    def __post_init__(self):
        if self.c0 < 0:
            raise ValueError("c0 must be non-negative")

    def budget_for(self, relation, cardinalities):
        return max(0, self.c0 - cardinalities.get(relation, 0))

    def exhausted(self, cardinalities):
        # Per-relation budgets never exhaust globally: an as-yet-empty
        # relation could always accept tuples.
        return self.c0 == 0

    def describe(self) -> str:
        return f"max tuples per relation (c0={self.c0})"


@dataclass(frozen=True)
class CompositeCardinality(CardinalityConstraint):
    """Conjunction of cardinality constraints (tightest budget wins)."""

    parts: tuple[CardinalityConstraint, ...]

    def __init__(self, *parts: CardinalityConstraint):
        if not parts:
            raise ValueError("CompositeCardinality needs at least one part")
        object.__setattr__(self, "parts", tuple(parts))

    def budget_for(self, relation, cardinalities):
        budgets = [
            b
            for b in (
                part.budget_for(relation, cardinalities) for part in self.parts
            )
            if b is not None
        ]
        return min(budgets) if budgets else None

    def exhausted(self, cardinalities):
        return any(part.exhausted(cardinalities) for part in self.parts)

    def describe(self) -> str:
        return " AND ".join(part.describe() for part in self.parts)


@dataclass(frozen=True)
class DeadlineCardinality(CardinalityConstraint):
    """Adapter: an expired deadline reads as an exhausted tuple budget.

    The serving layer's premise is that a deadline stops generation
    *exactly like* a Table 2 constraint. The engine threads
    :class:`~repro.core.deadline.Deadline` explicitly (so EXPLAIN can
    distinguish ``stopped_by_deadline`` from ``stopped_by_cardinality``),
    but callers composing constraints by hand can get the same cut-off
    behavior by conjoining this adapter::

        CompositeCardinality(MaxTotalTuples(50),
                             DeadlineCardinality(Deadline.after(0.1)))

    While the deadline holds, the budget is unbounded; once expired, no
    relation may receive another tuple.
    """

    deadline: Deadline

    def budget_for(self, relation, cardinalities):
        return 0 if self.deadline.expired() else None

    def exhausted(self, cardinalities):
        return self.deadline.expired()

    def describe(self) -> str:
        return "within deadline"


def cardinality_for_response_time(
    target_cost: float,
    n_relations: int,
    params: Optional[CostParameters] = None,
) -> MaxTuplesPerRelation:
    """Formula (3): ``c_R = cost_M / (n_R · (IndexTime + TupleTime))``.

    Turns a desired response budget (in the cost model's abstract units)
    into a per-relation cardinality constraint.
    """
    if target_cost < 0:
        raise ValueError("target cost must be non-negative")
    if n_relations <= 0:
        raise ValueError("n_relations must be positive")
    params = params or CostParameters()
    c_r = math.floor(target_cost / (n_relations * params.unit_fetch))
    return MaxTuplesPerRelation(max(0, c_r))
