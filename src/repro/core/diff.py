"""Diffing two précis answers.

The exploration story (§3.1) is about the *same* query under different
weights, constraints or profiles; the natural follow-up question is
"what exactly changed?". :func:`diff_answers` computes a structured
delta: relations and attributes that appeared/disappeared, and the
per-relation tuple delta (matched by visible-value tuples, since answer
tids are not comparable across runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .answer import PrecisAnswer

__all__ = ["AnswerDiff", "diff_answers"]


@dataclass
class AnswerDiff:
    """Structured delta from answer *a* to answer *b*."""

    relations_added: tuple[str, ...] = ()
    relations_removed: tuple[str, ...] = ()
    attributes_added: tuple[tuple[str, str], ...] = ()
    attributes_removed: tuple[tuple[str, str], ...] = ()
    #: relation -> (tuples only in b, tuples only in a), as value dicts
    tuples_added: dict[str, list[dict]] = field(default_factory=dict)
    tuples_removed: dict[str, list[dict]] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (
            self.relations_added
            or self.relations_removed
            or self.attributes_added
            or self.attributes_removed
            or any(self.tuples_added.values())
            or any(self.tuples_removed.values())
        )

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        if self.is_empty:
            return "answers are identical"
        parts = []
        if self.relations_added:
            parts.append(f"+relations: {', '.join(self.relations_added)}")
        if self.relations_removed:
            parts.append(f"-relations: {', '.join(self.relations_removed)}")
        if self.attributes_added:
            names = ", ".join(f"{r}.{a}" for r, a in self.attributes_added)
            parts.append(f"+attributes: {names}")
        if self.attributes_removed:
            names = ", ".join(f"{r}.{a}" for r, a in self.attributes_removed)
            parts.append(f"-attributes: {names}")
        added = sum(len(v) for v in self.tuples_added.values())
        removed = sum(len(v) for v in self.tuples_removed.values())
        if added:
            parts.append(f"+{added} tuple(s)")
        if removed:
            parts.append(f"-{removed} tuple(s)")
        return "; ".join(parts)


def _visible_tuples(answer: PrecisAnswer, relation: str) -> list[dict]:
    return answer.rows_of(relation)


def _freeze(record: dict) -> tuple:
    return tuple(sorted(record.items(), key=lambda kv: kv[0]))


def diff_answers(a: PrecisAnswer, b: PrecisAnswer) -> AnswerDiff:
    """Delta from *a* to *b* over visible content.

    Tuples are compared on the attributes visible in *both* answers so
    that an attribute-set change doesn't spuriously mark every tuple as
    new.
    """
    rel_a = set(a.result_schema.relations)
    rel_b = set(b.result_schema.relations)
    attrs_a = a.result_schema.projected_attributes
    attrs_b = b.result_schema.projected_attributes

    diff = AnswerDiff(
        relations_added=tuple(sorted(rel_b - rel_a)),
        relations_removed=tuple(sorted(rel_a - rel_b)),
        attributes_added=tuple(sorted(attrs_b - attrs_a)),
        attributes_removed=tuple(sorted(attrs_a - attrs_b)),
    )

    for relation in sorted(rel_a & rel_b):
        shared = [
            attr
            for attr in a.result_schema.attributes_of(relation)
            if (relation, attr) in attrs_b
        ]
        if not shared:
            continue

        def project(rows):
            return {
                _freeze({k: row[k] for k in shared}) for row in rows
            }

        set_a = project(_visible_tuples(a, relation))
        set_b = project(_visible_tuples(b, relation))
        only_b = sorted(set_b - set_a)
        only_a = sorted(set_a - set_b)
        if only_b:
            diff.tuples_added[relation] = [dict(t) for t in only_b]
        if only_a:
            diff.tuples_removed[relation] = [dict(t) for t in only_a]
    for relation in diff.relations_added:
        rows = _visible_tuples(b, relation)
        if rows:
            diff.tuples_added[relation] = rows
    for relation in diff.relations_removed:
        rows = _visible_tuples(a, relation)
        if rows:
            diff.tuples_removed[relation] = rows
    return diff
