"""Weights on data values — the paper's §7 future work, implemented.

    "In ongoing work, we are investigating the possibility of having
    weights on data values as well."

Schema-graph weights decide *which relations and attributes* enter an
answer; value weights decide *which tuples* survive a cardinality
budget. A :class:`TupleWeigher` scores rows; when the Result Database
Generator must truncate (seed selection, NaïveQ prefixes, RoundRobin
scan order) it keeps the heaviest tuples instead of an arbitrary
prefix. Scoring is over the *retrieved* projection of each row (the
attributes in the result schema plus join plumbing).

Built-in weighers:

* :class:`AttributeValueWeights` — explicit per-value weights, e.g.
  ``{"GENRE": {"Drama": 1.0, "Western": 0.1}}`` on ``GENRE.GENRE``;
* :class:`NumericAttributeWeights` — monotone preference over a numeric
  attribute (e.g. prefer recent ``MOVIE.YEAR``);
* :class:`CallableWeigher` — escape hatch wrapping any function.

Weighers compose with :class:`CombinedWeights` (sum of parts).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from ..relational.row import Row

__all__ = [
    "TupleWeigher",
    "AttributeValueWeights",
    "NumericAttributeWeights",
    "CallableWeigher",
    "CombinedWeights",
]


class TupleWeigher:
    """Base class: score one (projected) row of one relation.

    Higher scores are kept first. The default implementation is
    uniform (all rows weigh the same), which reproduces the paper's
    arbitrary-prefix behaviour.
    """

    def weight(self, relation: str, row: Row) -> float:
        return 0.0

    def sort_key(self, relation: str):
        """A deterministic descending-weight sort key (ties: tid order)."""

        def key(row: Row):
            return (-self.weight(relation, row), row.tid)

        return key


class AttributeValueWeights(TupleWeigher):
    """Explicit weights for individual attribute values.

    ``weights`` maps relation → attribute → value → weight; a row's
    score is the sum over all configured attributes it carries.
    Unlisted values score ``default``.
    """

    def __init__(
        self,
        weights: Mapping[str, Mapping[str, Mapping[Any, float]]],
        default: float = 0.0,
    ):
        self._weights = {
            relation: {attr: dict(values) for attr, values in attrs.items()}
            for relation, attrs in weights.items()
        }
        self._default = default

    def weight(self, relation: str, row: Row) -> float:
        per_attr = self._weights.get(relation)
        if not per_attr:
            return self._default
        total = 0.0
        hit = False
        for attribute, values in per_attr.items():
            if attribute in row:
                hit = True
                total += values.get(row[attribute], self._default)
        return total if hit else self._default


class NumericAttributeWeights(TupleWeigher):
    """Monotone preference over a numeric attribute.

    ``NumericAttributeWeights("MOVIE", "YEAR")`` prefers larger years
    (recency); pass ``descending=False`` to prefer smaller values.
    NULLs and non-numeric values score ``-inf`` (kept last).
    """

    def __init__(self, relation: str, attribute: str, descending: bool = True):
        self.relation = relation
        self.attribute = attribute
        self.descending = descending

    def weight(self, relation: str, row: Row) -> float:
        if relation != self.relation or self.attribute not in row:
            return 0.0
        value = row[self.attribute]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return float("-inf")
        return float(value) if self.descending else -float(value)


class CallableWeigher(TupleWeigher):
    """Wrap any ``(relation, row) -> float`` function."""

    def __init__(self, fn: Callable[[str, Row], float]):
        self._fn = fn

    def weight(self, relation: str, row: Row) -> float:
        return self._fn(relation, row)


class CombinedWeights(TupleWeigher):
    """Sum of component weighers (optionally scaled)."""

    def __init__(self, *parts: TupleWeigher, scales: Optional[list[float]] = None):
        if not parts:
            raise ValueError("CombinedWeights needs at least one part")
        self._parts = parts
        self._scales = scales or [1.0] * len(parts)
        if len(self._scales) != len(parts):
            raise ValueError("one scale per part required")

    def weight(self, relation: str, row: Row) -> float:
        return sum(
            scale * part.weight(relation, row)
            for part, scale in zip(self._parts, self._scales)
        )
