"""Predicting result-database size before generating it.

The paper derives cardinality constraints from a response-time budget
via Formula (3), which needs ``n_R`` and assumes every relation
contributes ``c_R`` tuples. This module supplies the other half a
deployment needs: a *size estimate* for a result schema, computed from
database statistics (join fan-outs, §-style selectivities) before any
tuple is fetched. Uses:

* warn a user that an unconstrained précis would return half the
  database;
* pick a per-relation cap that hits a target total
  (:func:`suggest_cardinality`);
* order exploration steps by expected volume.

The estimate walks ``G'`` exactly like the Result Database Generator
(weight order, in-degree postponement) but propagates *expected counts*:
``E[target] += E[source] · mean_fanout(edge)``, capped by the target's
true cardinality and deduplicated arrivals approximated by the
inclusion bound ``min(sum of arrivals, |target|)``.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from ..relational.database import Database
from ..relational.stats import fanout_stats
from .constraints import MaxTuplesPerRelation
from .result_schema import ResultSchema

__all__ = ["estimate_cardinalities", "estimate_total", "suggest_cardinality"]


def _mean_fanout(db: Database, source: str, source_attr: str,
                 target: str, target_attr: str) -> float:
    """Expected number of target tuples joining one source tuple."""
    target_rel = db.relation(target)
    if not len(target_rel):
        return 0.0
    distinct = len(target_rel.distinct_values(target_attr))
    if distinct == 0:
        return 0.0
    # average tuples per distinct join value, discounted by the chance
    # that a source value actually appears in the target
    per_value = len(target_rel) / distinct
    source_rel = db.relation(source)
    source_distinct = len(source_rel.distinct_values(source_attr)) or 1
    hit_rate = min(1.0, distinct / source_distinct)
    return per_value * hit_rate


def estimate_cardinalities(
    db: Database,
    result_schema: ResultSchema,
    seed_counts: Mapping[str, int],
    per_relation_cap: Optional[int] = None,
) -> dict[str, float]:
    """Expected tuples per relation of the answer (floats; not rounded).

    *seed_counts* gives the number of token tuples per origin relation
    (e.g. from the inverted index match). *per_relation_cap* simulates a
    ``MaxTuplesPerRelation`` constraint.
    """
    expected: dict[str, float] = {
        name: 0.0 for name in result_schema.relations
    }
    for relation, count in seed_counts.items():
        if relation in expected:
            expected[relation] = float(
                min(count, len(db.relation(relation)))
            )
            if per_relation_cap is not None:
                expected[relation] = min(
                    expected[relation], float(per_relation_cap)
                )

    in_degree = result_schema.in_degrees()
    executed: set[tuple] = set()
    populated = {r for r, n in expected.items() if n > 0} | set(
        result_schema.origin_relations
    )
    edges = list(result_schema.join_edges())
    while True:
        candidates = [
            e for e in edges if e.key not in executed and e.source in populated
        ]
        if not candidates:
            break
        ready = [e for e in candidates if in_degree[e.source] == 0]
        pool = ready or candidates
        edge = max(pool, key=lambda e: (e.weight, e.key))
        executed.add(edge.key)
        in_degree[edge.target] -= 1
        populated.add(edge.target)
        fanout = _mean_fanout(
            db, edge.source, edge.source_attribute,
            edge.target, edge.target_attribute,
        )
        arriving = expected[edge.source] * fanout
        total = expected[edge.target] + arriving
        ceiling = float(len(db.relation(edge.target)))
        if per_relation_cap is not None:
            ceiling = min(ceiling, float(per_relation_cap))
        expected[edge.target] = min(total, ceiling)
    return expected


def estimate_total(
    db: Database,
    result_schema: ResultSchema,
    seed_counts: Mapping[str, int],
    per_relation_cap: Optional[int] = None,
) -> float:
    """Expected total tuples of the answer."""
    return sum(
        estimate_cardinalities(
            db, result_schema, seed_counts, per_relation_cap
        ).values()
    )


def suggest_cardinality(
    db: Database,
    result_schema: ResultSchema,
    seed_counts: Mapping[str, int],
    target_total: int,
) -> MaxTuplesPerRelation:
    """The largest per-relation cap whose estimated total stays within

    *target_total* (binary search over the cap; at least 1)."""
    if target_total < 1:
        raise ValueError("target_total must be positive")
    low, high = 1, max(
        1,
        max((len(db.relation(r)) for r in result_schema.relations), default=1),
    )
    best = 1
    while low <= high:
        mid = (low + high) // 2
        total = estimate_total(db, result_schema, seed_counts, mid)
        if total <= target_total or math.isclose(total, target_total):
            best = mid
            low = mid + 1
        else:
            high = mid - 1
    return MaxTuplesPerRelation(best)
