"""SQL DDL emission and parsing for database schemas.

The paper's headline is that a précis query generates "a whole new
database, with its own schema, constraints, and contents, derived from
their counterparts in the original database". This module makes that
schema tangible: :func:`create_schema_sql` renders any
:class:`~repro.relational.schema.DatabaseSchema` — including the schema
of a précis answer — as standard ``CREATE TABLE`` statements, and
:func:`parse_ddl` goes the other way, so schemas can be authored as SQL
text (used by the CLI and the examples).

The dialect is deliberately small and portable::

    CREATE TABLE MOVIE (
        MID INT NOT NULL,
        TITLE TEXT,
        YEAR INT,
        DID INT,
        PRIMARY KEY (MID),
        FOREIGN KEY (DID) REFERENCES DIRECTOR (DID)
    );
"""

from __future__ import annotations

import re
from typing import Iterable

from .datatypes import DataType
from .errors import SQLSyntaxError
from .schema import Column, DatabaseSchema, ForeignKey, RelationSchema

__all__ = ["create_table_sql", "create_schema_sql", "parse_ddl"]

_TYPE_NAMES = {
    DataType.INT: "INT",
    DataType.FLOAT: "FLOAT",
    DataType.TEXT: "TEXT",
    DataType.DATE: "DATE",
    DataType.BOOL: "BOOL",
}

_TYPE_ALIASES = {
    "INT": DataType.INT,
    "INTEGER": DataType.INT,
    "BIGINT": DataType.INT,
    "FLOAT": DataType.FLOAT,
    "REAL": DataType.FLOAT,
    "DOUBLE": DataType.FLOAT,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "STRING": DataType.TEXT,
    "DATE": DataType.DATE,
    "BOOL": DataType.BOOL,
    "BOOLEAN": DataType.BOOL,
}


def create_table_sql(
    schema: RelationSchema, foreign_keys: Iterable[ForeignKey] = ()
) -> str:
    """Render one relation schema (plus its outbound FKs) as DDL."""
    lines = []
    for col in schema.columns:
        null = "" if col.nullable and col.name not in schema.primary_key else " NOT NULL"
        lines.append(f"    {col.name} {_TYPE_NAMES[col.dtype]}{null}")
    if schema.primary_key:
        lines.append(f"    PRIMARY KEY ({', '.join(schema.primary_key)})")
    for fk in foreign_keys:
        if fk.source != schema.name:
            continue
        lines.append(
            f"    FOREIGN KEY ({fk.column}) "
            f"REFERENCES {fk.target} ({fk.target_column})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {schema.name} (\n{body}\n);"


def create_schema_sql(schema: DatabaseSchema) -> str:
    """Render a whole database schema as a DDL script (parents first,

    so the script replays cleanly on engines that check references at
    definition time)."""
    from .database import _topological_load_order

    order = _topological_load_order(schema)
    statements = [
        create_table_sql(schema.relation(name), schema.foreign_keys)
        for name in order
    ]
    return "\n\n".join(statements)


# --------------------------------------------------------------------- parser

_CREATE_RE = re.compile(
    r"CREATE\s+TABLE\s+([A-Za-z_][A-Za-z_0-9]*)\s*\((.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_PK_RE = re.compile(
    r"^PRIMARY\s+KEY\s*\(([^)]*)\)$", re.IGNORECASE
)
_FK_RE = re.compile(
    r"^FOREIGN\s+KEY\s*\(([^)]*)\)\s*REFERENCES\s+"
    r"([A-Za-z_][A-Za-z_0-9]*)\s*\(([^)]*)\)$",
    re.IGNORECASE,
)
_COLUMN_RE = re.compile(
    r"^([A-Za-z_][A-Za-z_0-9]*)\s+([A-Za-z]+)(?:\s*\(\s*\d+\s*\))?"
    r"(\s+NOT\s+NULL)?(\s+PRIMARY\s+KEY)?$",
    re.IGNORECASE,
)


def _split_top_level(body: str) -> list[str]:
    """Split a CREATE TABLE body on commas not nested in parentheses."""
    parts, depth, current = [], 0, []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_ddl(text: str) -> DatabaseSchema:
    """Parse a script of ``CREATE TABLE`` statements into a schema.

    Supports column types (with common aliases like VARCHAR(n)),
    ``NOT NULL``, inline and table-level ``PRIMARY KEY``, and
    table-level ``FOREIGN KEY … REFERENCES``. Comments (``-- …``) are
    stripped.
    """
    text = re.sub(r"--[^\n]*", "", text)
    relations: list[RelationSchema] = []
    fks: list[ForeignKey] = []
    consumed = 0
    for match in _CREATE_RE.finditer(text):
        consumed += 1
        name, body = match.group(1), match.group(2)
        columns: list[Column] = []
        pk: list[str] = []
        for item in _split_top_level(body):
            pk_match = _PK_RE.match(item)
            if pk_match:
                pk.extend(c.strip() for c in pk_match.group(1).split(","))
                continue
            fk_match = _FK_RE.match(item)
            if fk_match:
                fks.append(
                    ForeignKey(
                        name,
                        fk_match.group(1).strip(),
                        fk_match.group(2),
                        fk_match.group(3).strip(),
                    )
                )
                continue
            col_match = _COLUMN_RE.match(item)
            if not col_match:
                raise SQLSyntaxError(
                    f"cannot parse column definition {item!r} in {name}"
                )
            col_name = col_match.group(1)
            type_name = col_match.group(2).upper()
            dtype = _TYPE_ALIASES.get(type_name)
            if dtype is None:
                raise SQLSyntaxError(
                    f"unknown type {type_name} for {name}.{col_name}"
                )
            not_null = bool(col_match.group(3))
            if col_match.group(4):
                pk.append(col_name)
            columns.append(Column(col_name, dtype, nullable=not not_null))
        relations.append(RelationSchema(name, columns, pk or None))
    if not consumed:
        raise SQLSyntaxError("no CREATE TABLE statement found")
    leftovers = _CREATE_RE.sub("", text).strip()
    if leftovers:
        raise SQLSyntaxError(
            f"unparsed DDL remainder: {leftovers[:60]!r}"
        )
    return DatabaseSchema(relations, fks)
