"""A miniature SQL layer: conjunctive SELECT queries over the engine.

The précis generators themselves never need SQL — they call the operator
API directly — but the paper describes every retrieval step as an SQL
query submitted to Oracle, the DISCOVER-style baseline materializes its
candidate networks as join queries, and the examples are far more
readable with a query language. This module provides:

* a tokenizer and recursive-descent parser for::

      SELECT <attrs | * | COUNT(*) | COUNT(attr)> FROM rel [alias], …
      [WHERE cond (AND cond)*]
      [GROUP BY attr, …] [ORDER BY attr [DESC], …] [LIMIT n]

  where each ``cond`` is ``a.x = b.y`` (equi-join), ``a.x <op> literal``
  (``= != < <= > >=``), or ``a.x LIKE 'pat%'``;

* a straightforward planner: pick the most selective starting table
  (one with a literal equality predicate if possible), then greedily
  attach join-connected tables, probing indexes where they exist;

* an executor returning a list of result dicts keyed ``alias.attr``.

It is intentionally a *subset* of SQL: conjunctive select-project-join
with limit — exactly the query class the paper's system emits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .database import Database
from .errors import QueryError, SQLSyntaxError

__all__ = ["parse", "execute", "SelectStatement", "Condition", "AttrRef"]


# --------------------------------------------------------------------------- AST


@dataclass(frozen=True)
class AttrRef:
    """A (possibly alias-qualified) attribute reference."""

    table: Optional[str]
    attribute: str

    def __str__(self):
        return f"{self.table}.{self.attribute}" if self.table else self.attribute


@dataclass(frozen=True)
class Condition:
    """One conjunct of the WHERE clause."""

    left: AttrRef
    op: str  # '=', '!=', '<', '<=', '>', '>=', 'LIKE'
    right: Any  # AttrRef for joins, literal otherwise

    @property
    def is_join(self) -> bool:
        return isinstance(self.right, AttrRef)


@dataclass
class TableRef:
    name: str
    alias: str


@dataclass(frozen=True)
class CountExpr:
    """``COUNT(*)`` or ``COUNT(attr)`` in the select list."""

    arg: Optional[AttrRef]  # None = COUNT(*)

    def __str__(self):
        return f"COUNT({self.arg})" if self.arg else "COUNT(*)"


@dataclass
class SelectStatement:
    projections: list[AttrRef | CountExpr]  # empty list means SELECT *
    tables: list[TableRef]
    conditions: list[Condition] = field(default_factory=list)
    limit: Optional[int] = None
    group_by: list[AttrRef] = field(default_factory=list)
    order_by: list[tuple[AttrRef, bool]] = field(default_factory=list)
    # each order item is (attribute, descending)


# ------------------------------------------------------------------- tokenizer

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),.*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "LIMIT", "LIKE", "AS",
        "COUNT", "GROUP", "ORDER", "BY", "ASC", "DESC",
    }
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: Any
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise SQLSyntaxError(
                    f"unexpected character {text[pos]!r}", position=pos
                )
            break
        pos = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw, match.start()))
        elif match.lastgroup == "number":
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("number", value, match.start()))
        elif match.lastgroup == "op":
            op = match.group("op")
            tokens.append(_Token("op", "!=" if op == "<>" else op, match.start()))
        elif match.lastgroup == "punct":
            tokens.append(_Token("punct", match.group("punct"), match.start()))
        else:
            word = match.group("word")
            upper = word.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("keyword", upper, match.start()))
            else:
                tokens.append(_Token("word", word, match.start()))
    return tokens


# ---------------------------------------------------------------------- parser


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.value != word:
            raise SQLSyntaxError(f"expected {word}", position=token.pos)

    def _accept(self, kind: str, value: Any = None) -> Optional[_Token]:
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self._pos += 1
            return token
        return None

    def parse(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        projections = self._parse_projections()
        self._expect_keyword("FROM")
        tables = self._parse_tables()
        conditions: list[Condition] = []
        limit: Optional[int] = None
        group_by: list[AttrRef] = []
        order_by: list[tuple[AttrRef, bool]] = []
        if self._accept("keyword", "WHERE"):
            conditions.append(self._parse_condition())
            while self._accept("keyword", "AND"):
                conditions.append(self._parse_condition())
        if self._accept("keyword", "GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_attr_ref())
            while self._accept("punct", ","):
                group_by.append(self._parse_attr_ref())
        if self._accept("keyword", "ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept("punct", ","):
                order_by.append(self._parse_order_item())
        if self._accept("keyword", "LIMIT"):
            token = self._next()
            if token.kind != "number" or not isinstance(token.value, int):
                raise SQLSyntaxError("LIMIT expects an integer", position=token.pos)
            limit = token.value
        trailing = self._peek()
        if trailing is not None:
            raise SQLSyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                position=trailing.pos,
            )
        return SelectStatement(
            projections, tables, conditions, limit, group_by, order_by
        )

    def _parse_order_item(self) -> tuple[AttrRef | CountExpr, bool]:
        ref = self._parse_projection_item()
        if self._accept("keyword", "DESC"):
            return ref, True
        self._accept("keyword", "ASC")
        return ref, False

    def _parse_projections(self) -> list[AttrRef | CountExpr]:
        if self._accept("punct", "*"):
            return []
        refs = [self._parse_projection_item()]
        while self._accept("punct", ","):
            refs.append(self._parse_projection_item())
        return refs

    def _parse_projection_item(self) -> AttrRef | CountExpr:
        if self._accept("keyword", "COUNT"):
            token = self._next()
            if token.kind != "punct" or token.value != "(":
                raise SQLSyntaxError("COUNT expects '('", position=token.pos)
            if self._accept("punct", "*"):
                arg = None
            else:
                arg = self._parse_attr_ref()
            closing = self._next()
            if closing.kind != "punct" or closing.value != ")":
                raise SQLSyntaxError("COUNT expects ')'", position=closing.pos)
            return CountExpr(arg)
        return self._parse_attr_ref()

    def _parse_tables(self) -> list[TableRef]:
        tables = [self._parse_table()]
        while self._accept("punct", ","):
            tables.append(self._parse_table())
        return tables

    def _parse_table(self) -> TableRef:
        token = self._next()
        if token.kind != "word":
            raise SQLSyntaxError("expected table name", position=token.pos)
        alias = token.value
        self._accept("keyword", "AS")
        alias_token = self._accept("word")
        if alias_token:
            alias = alias_token.value
        return TableRef(token.value, alias)

    def _parse_attr_ref(self) -> AttrRef:
        token = self._next()
        if token.kind != "word":
            raise SQLSyntaxError("expected attribute", position=token.pos)
        if self._accept("punct", "."):
            attr = self._next()
            if attr.kind != "word":
                raise SQLSyntaxError("expected attribute name", position=attr.pos)
            return AttrRef(token.value, attr.value)
        return AttrRef(None, token.value)

    def _parse_condition(self) -> Condition:
        left = self._parse_attr_ref()
        if self._accept("keyword", "LIKE"):
            token = self._next()
            if token.kind != "string":
                raise SQLSyntaxError("LIKE expects a string", position=token.pos)
            return Condition(left, "LIKE", token.value)
        op_token = self._next()
        if op_token.kind != "op":
            raise SQLSyntaxError("expected comparison operator", position=op_token.pos)
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("missing right-hand side of condition")
        if token.kind == "word":
            right: Any = self._parse_attr_ref()
        elif token.kind in ("string", "number"):
            right = self._next().value
        else:
            raise SQLSyntaxError("bad right-hand side", position=token.pos)
        return Condition(left, op_token.value, right)


def parse(text: str) -> SelectStatement:
    """Parse a mini-SQL SELECT string into an AST."""
    return _Parser(_tokenize(text)).parse()


# -------------------------------------------------------------------- executor

_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


def _like_to_regex(pattern: str) -> re.Pattern:
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)


class _Binding(dict):
    """alias -> Row mapping for one partial result."""


def execute(db: Database, statement: SelectStatement | str) -> list[dict[str, Any]]:
    """Run a SELECT; returns a list of dicts keyed ``alias.attribute``."""
    if isinstance(statement, str):
        statement = parse(statement)
    stmt = statement

    aliases: dict[str, str] = {}
    for table in stmt.tables:
        if table.alias in aliases:
            raise QueryError(f"duplicate table alias {table.alias}")
        if table.name not in db:
            raise QueryError(f"unknown relation {table.name}")
        aliases[table.alias] = table.name

    def resolve(ref: AttrRef) -> AttrRef:
        if ref.table is not None:
            if ref.table not in aliases:
                raise QueryError(f"unknown alias {ref.table}")
            _check_attr(db, aliases[ref.table], ref.attribute)
            return ref
        owners = [
            alias
            for alias, name in aliases.items()
            if db.relation(name).schema.has_column(ref.attribute)
        ]
        if len(owners) != 1:
            raise QueryError(
                f"attribute {ref.attribute} is "
                + ("ambiguous" if owners else "unknown")
            )
        return AttrRef(owners[0], ref.attribute)

    conditions = [
        Condition(
            resolve(cond.left),
            cond.op,
            resolve(cond.right) if isinstance(cond.right, AttrRef) else cond.right,
        )
        for cond in stmt.conditions
    ]
    def resolve_item(item: AttrRef | CountExpr) -> AttrRef | CountExpr:
        if isinstance(item, CountExpr):
            return CountExpr(resolve(item.arg) if item.arg else None)
        return resolve(item)

    projections = [resolve_item(item) for item in stmt.projections]
    group_by = [resolve(ref) for ref in stmt.group_by]
    order_by = [
        (resolve_item(item), descending)
        for item, descending in stmt.order_by
    ]
    has_aggregate = any(isinstance(p, CountExpr) for p in projections) or any(
        isinstance(item, CountExpr) for item, __ in order_by
    )

    if group_by or has_aggregate:
        plain = [p for p in projections if isinstance(p, AttrRef)]
        bad = [p for p in plain if p not in group_by]
        if bad:
            raise QueryError(
                f"non-aggregated attribute {bad[0]} must appear in GROUP BY"
            )
        records = _aggregate(
            db, aliases, conditions, projections, group_by, order_by
        )
    else:
        # ORDER BY may reference attributes outside the select list;
        # carry them through as hidden columns and strip afterwards
        hidden = [
            item
            for item, __ in order_by
            if isinstance(item, AttrRef) and projections and item not in projections
        ]
        fetch_list = projections + hidden if projections else projections
        records = []
        streaming = not order_by
        for binding in _join_all(db, aliases, conditions):
            if streaming and stmt.limit is not None and len(records) >= stmt.limit:
                break
            records.append(_record(binding, fetch_list, aliases))

    if order_by:
        records = _order(records, order_by)
    if stmt.limit is not None:
        records = records[: stmt.limit]
    if not (group_by or has_aggregate):
        hidden_names = {
            str(item)
            for item, __ in order_by
            if isinstance(item, AttrRef) and projections and item not in projections
        }
        if hidden_names:
            records = [
                {k: v for k, v in record.items() if k not in hidden_names}
                for record in records
            ]
    else:
        # strip order-by-only aggregate columns from grouped output
        if projections:
            wanted = {str(p) for p in projections}
            records = [
                {k: v for k, v in record.items() if k in wanted}
                for record in records
            ]
    return records


def _record(
    binding: "_Binding",
    projections: list[AttrRef | CountExpr],
    aliases: dict[str, str],
) -> dict[str, Any]:
    if projections:
        return {
            str(ref): binding[ref.table][ref.attribute]
            for ref in projections
            if isinstance(ref, AttrRef)
        }
    record: dict[str, Any] = {}
    for alias in aliases:
        row = binding[alias]
        for attr, value in zip(row.attributes, row.values):
            record[f"{alias}.{attr}"] = value
    return record


def _aggregate(
    db: Database,
    aliases: dict[str, str],
    conditions: list[Condition],
    projections: list[AttrRef | CountExpr],
    group_by: list[AttrRef],
    order_by: list[tuple[AttrRef | CountExpr, bool]],
) -> list[dict[str, Any]]:
    """GROUP BY + COUNT evaluation over the joined bindings."""
    counts: dict[tuple, dict[str, int]] = {}
    keys_seen: dict[tuple, dict[str, Any]] = {}
    count_exprs = [p for p in projections if isinstance(p, CountExpr)]
    for item, __ in order_by:
        if isinstance(item, CountExpr) and item not in count_exprs:
            count_exprs.append(item)
    if not count_exprs:
        count_exprs = [CountExpr(None)]  # implicit, for bare GROUP BY
    for binding in _join_all(db, aliases, conditions):
        key = tuple(
            binding[ref.table][ref.attribute] for ref in group_by
        )
        if key not in counts:
            counts[key] = {str(expr): 0 for expr in count_exprs}
            keys_seen[key] = {
                str(ref): value for ref, value in zip(group_by, key)
            }
        for expr in count_exprs:
            if expr.arg is None:
                counts[key][str(expr)] += 1
            else:
                value = binding[expr.arg.table][expr.arg.attribute]
                if value is not None:
                    counts[key][str(expr)] += 1
    records = []
    wanted = [str(p) for p in projections] if projections else None
    for key, groups in counts.items():
        record = dict(keys_seen[key])
        record.update(groups)
        if wanted:
            extras = {
                name: value
                for name, value in record.items()
                if name not in wanted
            }
            record = {name: record[name] for name in wanted}
            record.update(
                {  # keep order-by-only counts accessible for sorting
                    name: value
                    for name, value in extras.items()
                    if name.startswith("COUNT")
                }
            )
        records.append(record)
    return records


def _order(
    records: list[dict[str, Any]],
    order_by: list[tuple[AttrRef | CountExpr, bool]],
) -> list[dict[str, Any]]:
    """Stable multi-key ordering; NULLs sort first (last when DESC)."""

    def key_for(name: str):
        def key(record: dict[str, Any]):
            value = record[name]
            if value is None:
                return (0, 0)
            return (1, value)

        return key

    out = list(records)
    for item, descending in reversed(order_by):
        name = str(item)
        if out and name not in out[0]:
            raise QueryError(f"cannot ORDER BY {name}: not in the output")
        out.sort(key=key_for(name), reverse=descending)
    return out


def _check_attr(db: Database, relation: str, attribute: str) -> None:
    if not db.relation(relation).schema.has_column(attribute):
        raise QueryError(f"no attribute {attribute} in {relation}")


def _literal_conditions(
    conditions: list[Condition], alias: str
) -> list[Condition]:
    return [
        c for c in conditions if not c.is_join and c.left.table == alias
    ]


def _row_passes(row, conds: list[Condition]) -> bool:
    for cond in conds:
        value = row[cond.left.attribute]
        if cond.op == "LIKE":
            if value is None or not _like_to_regex(cond.right).match(str(value)):
                return False
        elif not _OPS[cond.op](value, cond.right):
            return False
    return True


def _scan_alias(
    db: Database, aliases: dict[str, str], alias: str, conds: list[Condition]
) -> Iterator:
    """All rows of *alias* satisfying its literal conditions, using an

    equality index when one matches."""
    relation = db.relation(aliases[alias])
    eq = next(
        (
            c
            for c in conds
            if c.op == "="
            and not isinstance(c.right, AttrRef)
            and relation.has_index(c.left.attribute)
        ),
        None,
    )
    if eq is not None:
        rest = [c for c in conds if c is not eq]
        for row in relation.fetch_many(
            sorted(relation.lookup(eq.left.attribute, eq.right))
        ):
            if _row_passes(row, rest):
                yield row
    else:
        for row in relation.scan():
            if _row_passes(row, conds):
                yield row


def _join_all(
    db: Database, aliases: dict[str, str], conditions: list[Condition]
) -> Iterator[_Binding]:
    """Greedy left-deep join of all aliases; yields complete bindings."""
    remaining = list(aliases)
    if not remaining:
        return iter(())

    def selectivity(alias: str) -> tuple:
        lits = _literal_conditions(conditions, alias)
        eq = sum(1 for c in lits if c.op == "=")
        return (-eq, -len(lits), len(db.relation(aliases[alias])))

    start = min(remaining, key=selectivity)
    order = [start]
    remaining.remove(start)
    # attach join-connected aliases first to avoid cartesian blowup
    while remaining:
        connected = None
        for alias in remaining:
            for cond in conditions:
                if not cond.is_join:
                    continue
                pair = {cond.left.table, cond.right.table}
                if alias in pair and pair & set(order):
                    connected = alias
                    break
            if connected:
                break
        chosen = connected or remaining[0]
        order.append(chosen)
        remaining.remove(chosen)

    def extend(binding: _Binding, depth: int) -> Iterator[_Binding]:
        if depth == len(order):
            yield binding
            return
        alias = order[depth]
        relation = db.relation(aliases[alias])
        bound = set(binding)
        lits = _literal_conditions(conditions, alias)
        # join conditions decidable now: other side already bound. When
        # the current alias sits on the condition's right, the operator
        # must be mirrored (a.x < b.y probed from b means b.y > a.x).
        mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
        joins = []
        for cond in conditions:
            if not cond.is_join:
                continue
            if cond.left.table == alias and cond.right.table in bound:
                joins.append((cond.left.attribute, cond.right, cond.op))
            elif cond.right.table == alias and cond.left.table in bound:
                joins.append(
                    (cond.right.attribute, cond.left, mirrored[cond.op])
                )

        probe = next(
            (
                (attr, other)
                for attr, other, op in joins
                if op == "=" and relation.has_index(attr)
            ),
            None,
        )
        if probe is not None:
            attr, other = probe
            value = binding[other.table][other.attribute]
            candidates = relation.fetch_many(sorted(relation.lookup(attr, value)))
        else:
            candidates = list(_scan_alias(db, aliases, alias, []))

        for row in candidates:
            if not _row_passes(row, lits):
                continue
            ok = True
            for attr, other, op in joins:
                left = row[attr]
                right = binding[other.table][other.attribute]
                if op == "LIKE":
                    ok = False  # LIKE between attributes is unsupported
                elif not _OPS[op](left, right):
                    ok = False
                if not ok:
                    break
            if not ok:
                continue
            child = _Binding(binding)
            child[alias] = row
            yield from extend(child, depth + 1)

    return extend(_Binding(), 0)
