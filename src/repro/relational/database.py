"""The database object: named relations + cross-relation integrity.

A :class:`Database` ties together a :class:`DatabaseSchema`, one
:class:`Relation` façade per relation schema (each backed by a
:class:`~repro.storage.base.TupleStore` from the database's storage
backend), a shared :class:`CostMeter`, and foreign-key enforcement. It
is the object both the précis engine and the baselines operate on, and
also the *type of a précis answer* — the paper's central point is that a
query produces "a whole new database, with its own schema, constraints,
and contents".

Storage backends are pluggable (see :mod:`repro.storage`): ``backend=``
accepts a name (``"memory"``, ``"sqlite"``, ``"sqlite:/path/to.db"``)
or a :class:`~repro.storage.base.StorageBackend` instance. The default
is the in-memory reference store.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..storage.base import StorageBackend
from ..storage.registry import resolve_backend
from .cost import CostMeter, CostParameters
from .errors import ForeignKeyViolation, SchemaError
from .relation import Relation
from .schema import DatabaseSchema, ForeignKey, RelationSchema

__all__ = ["Database"]


class Database:
    """A populated database following a :class:`DatabaseSchema`."""

    def __init__(
        self,
        schema: DatabaseSchema,
        cost_params: Optional[CostParameters] = None,
        enforce_foreign_keys: bool = True,
        backend: Union[str, StorageBackend, None] = None,
    ):
        self.schema = schema
        self.meter = CostMeter(cost_params)
        self.enforce_foreign_keys = enforce_foreign_keys
        self.backend = resolve_backend(backend)
        self._data_epoch = 0
        self._relations: dict[str, Relation] = {
            rs.name: Relation(
                rs,
                self.meter,
                self.backend.create_store(rs),
                on_mutate=self._bump_data_epoch,
            )
            for rs in schema
        }

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def data_epoch(self) -> int:
        """Monotonic mutation counter — the database's cache-validity
        token (see :mod:`repro.cache.versions`). Every insert, delete,
        in-place update or clear reaching any relation of this database
        bumps it, whether issued through the database or directly
        through a :class:`Relation` façade."""
        return self._data_epoch

    def _bump_data_epoch(self) -> None:
        self._data_epoch += 1

    def close(self) -> None:
        """Release backend resources (e.g. the SQLite connection)."""
        self.backend.close()

    # ------------------------------------------------------------------ access

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation {name} in database") from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def total_tuples(self) -> int:
        return sum(len(rel) for rel in self._relations.values())

    def cardinalities(self) -> dict[str, int]:
        return {name: len(rel) for name, rel in self._relations.items()}

    def __repr__(self):
        return (
            f"Database({len(self._relations)} relations, "
            f"{self.total_tuples()} tuples)"
        )

    # ------------------------------------------------------------------ writes

    def insert(
        self, relation: str, values: Mapping[str, Any] | Sequence[Any]
    ) -> int:
        """Insert a tuple, checking outbound foreign keys if enforcement

        is on. FK checks use the *target's* primary-key or secondary
        index, so bulk loads should insert parents before children.
        NULL foreign-key values are permitted (SQL semantics).
        """
        rel = self.relation(relation)
        tid = rel.insert(values)
        if self.enforce_foreign_keys:
            try:
                self._check_outbound_fks(relation, tid)
            except ForeignKeyViolation:
                rel.delete(tid)
                raise
        return tid

    def insert_many(
        self, relation: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> list[int]:
        return [self.insert(relation, row) for row in rows]

    def delete(self, relation: str, tid: int, cascade: bool = False) -> int:
        """Delete a tuple, protecting referential integrity.

        With enforcement on, deleting a tuple still referenced by child
        rows raises :class:`ForeignKeyViolation` — unless ``cascade``
        is set, in which case the referencing tuples are deleted too
        (recursively). Returns the number of tuples removed.
        """
        rel = self.relation(relation)
        removed = 0
        if self.enforce_foreign_keys:
            row = rel.fetch(tid)
            for fk in self.schema.foreign_keys_into(relation):
                value = row[fk.target_column]
                if value is None:
                    continue
                children = self.relation(fk.source).lookup(fk.column, value)
                if not children:
                    continue
                if not cascade:
                    raise ForeignKeyViolation(
                        f"{relation}#{tid} is referenced by "
                        f"{len(children)} tuple(s) of {fk.source}"
                    )
                # children are matched by join value; with a PK target
                # (the normal case) that is exactly this tuple's children
                for child_tid in sorted(children):
                    if child_tid in self.relation(fk.source):
                        removed += self.delete(
                            fk.source, child_tid, cascade=True
                        )
        rel.delete(tid)
        return removed + 1

    def update(
        self, relation: str, tid: int, changes: Mapping[str, Any]
    ) -> int:
        """Replace attribute values of one tuple in place; returns the
        (unchanged) tid.

        Unlike delete + re-insert, the tuple keeps its tid, so inbound
        foreign-key references stay valid. With enforcement on, two
        checks protect integrity: the new values must satisfy the
        relation's *outbound* foreign keys, and an attribute targeted by
        an *inbound* foreign key may not change value while child tuples
        still reference the old value (there is no cascade for updates).
        On violation the tuple is restored and
        :class:`ForeignKeyViolation` raised.
        """
        rel = self.relation(relation)
        old = rel.fetch(tid).as_dict()
        rel.update(tid, changes)
        if not self.enforce_foreign_keys:
            return tid
        try:
            new = rel.fetch(tid).as_dict()
            for fk in self.schema.foreign_keys_into(relation):
                old_value = old[fk.target_column]
                if old_value is None or old_value == new[fk.target_column]:
                    continue
                children = self.relation(fk.source).lookup(fk.column, old_value)
                if children:
                    raise ForeignKeyViolation(
                        f"{relation}#{tid}.{fk.target_column}={old_value!r} "
                        f"is referenced by {len(children)} tuple(s) of "
                        f"{fk.source} and cannot change value"
                    )
            self._check_outbound_fks(relation, tid)
        except ForeignKeyViolation:
            rel.update(tid, old)
            raise
        return tid

    def _check_outbound_fks(self, relation: str, tid: int) -> None:
        row = self.relation(relation).fetch(tid)
        for fk in self.schema.foreign_keys_of(relation):
            value = row[fk.column]
            if value is None:
                continue
            target = self.relation(fk.target)
            pk = target.schema.primary_key
            if len(pk) == 1 and pk[0] == fk.target_column:
                found = target.lookup_pk(value) is not None
            else:
                found = bool(target.lookup(fk.target_column, value))
            if not found:
                raise ForeignKeyViolation(
                    f"{relation}.{fk.column}={value!r} has no match in "
                    f"{fk.target}.{fk.target_column}"
                )

    # ------------------------------------------------------------------ indexes

    def create_join_indexes(self, kind: str = "hash") -> None:
        """Index every attribute that participates in a foreign key —

        the "indexes on all join attributes" setup of the paper's §6."""
        for fk in self.schema.foreign_keys:
            source = self.relation(fk.source)
            if not source.has_index(fk.column):
                source.create_index(fk.column, kind)
            target = self.relation(fk.target)
            if not target.has_index(fk.target_column):
                target.create_index(fk.target_column, kind)

    # ------------------------------------------------------------------ checks

    def integrity_violations(self) -> list[str]:
        """Exhaustively verify all declared foreign keys; returns a list

        of human-readable violations (empty = consistent). Used by the
        property tests to assert that précis result databases are
        internally consistent sub-databases.
        """
        problems: list[str] = []
        for fk in self.schema.foreign_keys:
            source = self.relation(fk.source)
            target = self.relation(fk.target)
            valid = target.distinct_values(fk.target_column)
            pos = source.schema.position(fk.column)
            for tid in source.tids():
                value = source.fetch(tid)[pos]
                if value is not None and value not in valid:
                    problems.append(
                        f"{fk.source}#{tid}.{fk.column}={value!r} "
                        f"dangling -> {fk.target}.{fk.target_column}"
                    )
        return problems

    def check_integrity(self) -> None:
        problems = self.integrity_violations()
        if problems:
            raise ForeignKeyViolation(
                f"{len(problems)} violations; first: {problems[0]}"
            )

    # ------------------------------------------------------------------ utility

    def snapshot_costs(self):
        return self.meter.snapshot()

    @classmethod
    def from_rows(
        cls,
        schema: DatabaseSchema,
        data: Mapping[str, Iterable[Mapping[str, Any] | Sequence[Any]]],
        enforce_foreign_keys: bool = True,
        create_indexes: bool = True,
        backend: Union[str, StorageBackend, None] = None,
    ) -> "Database":
        """Build and populate a database in one call.

        *data* maps relation name → iterable of rows. Relations are loaded
        in an order that respects foreign-key dependencies when possible
        (parents first); cycles fall back to declaration order with
        enforcement deferred until the end. *backend* selects the storage
        backend exactly as in the constructor.
        """
        db = cls(schema, enforce_foreign_keys=False, backend=backend)
        order = _topological_load_order(schema)
        for name in order:
            if name in data:
                db.insert_many(name, data[name])
        if create_indexes:
            db.create_join_indexes()
        db.enforce_foreign_keys = enforce_foreign_keys
        if enforce_foreign_keys:
            db.check_integrity()
        return db

    # ------------------------------------------------------------------ csv io

    def to_csv_dir(self, directory: Union[str, Path]) -> None:
        """Export schema + contents as a CSV directory (see ``csvio``)."""
        from .csvio import save_database

        save_database(self, directory)

    @classmethod
    def from_csv_dir(
        cls,
        directory: Union[str, Path],
        enforce_foreign_keys: bool = True,
        create_indexes: bool = True,
        backend: Union[str, StorageBackend, None] = None,
    ) -> "Database":
        """Load a database saved with :meth:`to_csv_dir`."""
        from .csvio import load_database

        return load_database(
            directory,
            enforce_foreign_keys=enforce_foreign_keys,
            create_indexes=create_indexes,
            backend=backend,
        )


def _topological_load_order(schema: DatabaseSchema) -> list[str]:
    """Relation names ordered parents-before-children where acyclic."""
    depends: dict[str, set[str]] = {name: set() for name in schema.relation_names}
    for fk in schema.foreign_keys:
        if fk.source != fk.target:
            depends[fk.source].add(fk.target)
    order: list[str] = []
    visited: dict[str, int] = {}  # 0 = in progress, 1 = done

    def visit(name: str) -> None:
        state = visited.get(name)
        if state is not None:
            return  # done, or cycle — either way stop descending
        visited[name] = 0
        for dep in depends[name]:
            if visited.get(dep) != 0:
                visit(dep)
        visited[name] = 1
        order.append(name)

    for name in schema.relation_names:
        visit(name)
    return order
