"""CSV import/export for databases.

Round-trips a :class:`~repro.relational.database.Database` through a
directory of one CSV file per relation plus a ``_schema.json`` manifest.
Useful for inspecting précis answers, for shipping the extracted test
databases of the §1 enterprise use case, and for the examples.

NULL handling: SQL NULL is written as the ``\\N`` marker (the MySQL
convention), so a NULL TEXT value and an empty string survive the round
trip as distinct values. A literal ``\\N`` string is escaped to
``\\\\N``. For files written before the marker existed, an empty field
in a non-TEXT column still loads as NULL (nothing else it could be);
an empty field in a TEXT column loads as the empty string.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..storage.base import StorageBackend
from .database import Database
from .datatypes import DataType, coerce, render
from .errors import SchemaError
from .schema import Column, DatabaseSchema, ForeignKey, RelationSchema

__all__ = ["save_database", "load_database", "schema_to_dict", "schema_from_dict"]

_MANIFEST = "_schema.json"
_NULL = "\\N"
_ESCAPED_NULL = "\\\\N"


def _to_field(value) -> str:
    if value is None:
        return _NULL
    text = render(value)
    return _ESCAPED_NULL if text == _NULL else text


def _from_field(text: str, dtype: DataType):
    if text == _NULL:
        return None
    if text == _ESCAPED_NULL:
        return _NULL
    if text == "" and dtype is not DataType.TEXT:
        return None  # legacy files: NULL was the empty field
    return coerce(text, dtype)


def schema_to_dict(schema: DatabaseSchema) -> dict:
    """Serialize a schema to plain JSON-compatible data."""
    return {
        "relations": [
            {
                "name": rs.name,
                "primary_key": list(rs.primary_key),
                "columns": [
                    {
                        "name": c.name,
                        "dtype": c.dtype.value,
                        "nullable": c.nullable,
                    }
                    for c in rs.columns
                ],
            }
            for rs in schema
        ],
        "foreign_keys": [
            {
                "source": fk.source,
                "column": fk.column,
                "target": fk.target,
                "target_column": fk.target_column,
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(data: dict) -> DatabaseSchema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        relations = [
            RelationSchema(
                rs["name"],
                [
                    Column(
                        c["name"],
                        DataType(c["dtype"]),
                        c.get("nullable", True),
                    )
                    for c in rs["columns"]
                ],
                rs.get("primary_key") or None,
            )
            for rs in data["relations"]
        ]
        fks = [
            ForeignKey(
                fk["source"], fk["column"], fk["target"], fk["target_column"]
            )
            for fk in data.get("foreign_keys", [])
        ]
    except (KeyError, ValueError) as exc:
        raise SchemaError(f"malformed schema manifest: {exc}") from exc
    return DatabaseSchema(relations, fks)


def save_database(db: Database, directory: Union[str, Path]) -> Path:
    """Write *db* to *directory* (created if missing); returns the path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    manifest = path / _MANIFEST
    manifest.write_text(json.dumps(schema_to_dict(db.schema), indent=2))
    for rel in db:
        names = rel.schema.attribute_names
        with open(path / f"{rel.name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for _tid, stored in rel.store.scan():  # unmetered: export
                writer.writerow([_to_field(v) for v in stored])
    return path


def load_database(
    directory: Union[str, Path],
    enforce_foreign_keys: bool = True,
    create_indexes: bool = True,
    backend: Union[str, StorageBackend, None] = None,
) -> Database:
    """Load a database previously written by :func:`save_database`."""
    path = Path(directory)
    manifest = path / _MANIFEST
    if not manifest.exists():
        raise SchemaError(f"no {_MANIFEST} manifest in {path}")
    schema = schema_from_dict(json.loads(manifest.read_text()))
    data: dict[str, list[list]] = {}
    for rs in schema:
        csv_path = path / f"{rs.name}.csv"
        rows: list[list] = []
        if csv_path.exists():
            with open(csv_path, newline="") as handle:
                reader = csv.reader(handle)
                header = next(reader, None)
                if header is None:
                    header = list(rs.attribute_names)
                order = [rs.position(name) for name in header]
                for record in reader:
                    values: list = [None] * len(rs)
                    for pos, text in zip(order, record):
                        col = rs.columns[pos]
                        values[pos] = _from_field(text, col.dtype)
                    rows.append(values)
        data[rs.name] = rows
    return Database.from_rows(
        schema,
        data,
        enforce_foreign_keys=enforce_foreign_keys,
        create_indexes=create_indexes,
        backend=backend,
    )
