"""Tuple storage for a single relation.

A :class:`Relation` stores tuples addressed by an engine-assigned integer
tuple id (*tid*) — the analogue of Oracle's ROWID that the paper's
generators use to re-fetch tuples found through the inverted index. It
enforces NOT NULL and primary-key uniqueness locally; referential
integrity spans relations and lives in
:class:`~repro.relational.database.Database`.

Cost charging policy (see :mod:`repro.relational.cost`):

* ``fetch`` / ``fetch_many`` charge one *tuple read* per tuple returned;
* ``lookup`` / ``lookup_in`` charge one *index lookup* per probe value
  when an index exists, or one *scan step* per tuple visited otherwise;
* ``scan`` charges one scan step per tuple visited.

This makes the modeled cost of one indexed retrieval exactly
``IndexTime + TupleTime``, the unit of the paper's Formula (2).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence

from .cost import CostMeter
from .datatypes import coerce
from .errors import (
    NotNullViolation,
    PrimaryKeyViolation,
    SchemaError,
    TypeMismatchError,
    UnknownTupleError,
)
from .index import HashIndex, SortedIndex
from .row import Row
from .schema import RelationSchema

__all__ = ["Relation"]


class Relation:
    """A populated relation following a :class:`RelationSchema`."""

    def __init__(self, schema: RelationSchema, meter: Optional[CostMeter] = None):
        self.schema = schema
        self.meter = meter or CostMeter()
        self._tuples: dict[int, tuple] = {}
        self._next_tid = 1
        self._pk_index: dict[tuple, int] = {}
        self._indexes: dict[str, HashIndex | SortedIndex] = {}

    # ------------------------------------------------------------------ basics

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._tuples)

    def tids(self) -> Iterator[int]:
        return iter(self._tuples)

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples

    def __repr__(self):
        return f"Relation({self.name}, {len(self)} tuples)"

    # ------------------------------------------------------------------ writes

    def _normalize(self, values: Mapping[str, Any] | Sequence[Any]) -> tuple:
        """Coerce input into a full-width storage tuple in schema order."""
        if isinstance(values, Mapping):
            unknown = set(values) - set(self.schema.attribute_names)
            if unknown:
                raise SchemaError(
                    f"unknown attributes for {self.name}: {sorted(unknown)}"
                )
            raw = [values.get(col.name) for col in self.schema.columns]
        else:
            raw = list(values)
            if len(raw) != len(self.schema):
                raise SchemaError(
                    f"{self.name} expects {len(self.schema)} values, "
                    f"got {len(raw)}"
                )
        out = []
        for col, value in zip(self.schema.columns, raw):
            try:
                value = coerce(value, col.dtype)
            except (ValueError, TypeError):
                raise TypeMismatchError(
                    self.name, col.name, col.dtype, value
                ) from None
            if value is None and (
                not col.nullable or col.name in self.schema.primary_key
            ):
                raise NotNullViolation(self.name, col.name)
            out.append(value)
        return tuple(out)

    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> int:
        """Insert one tuple; returns its tid.

        Raises on type mismatch, NULL in a required column, or duplicate
        primary key.
        """
        stored = self._normalize(values)
        pk_value = None
        if self.schema.primary_key:
            pk_pos = self.schema.positions(self.schema.primary_key)
            pk_value = tuple(stored[p] for p in pk_pos)
            if pk_value in self._pk_index:
                raise PrimaryKeyViolation(self.name, pk_value)
        tid = self._next_tid
        self._next_tid += 1
        self._tuples[tid] = stored
        if pk_value is not None:
            self._pk_index[pk_value] = tid
        for attr, index in self._indexes.items():
            index.insert(stored[self.schema.position(attr)], tid)
        return tid

    def insert_many(
        self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> list[int]:
        return [self.insert(row) for row in rows]

    def delete(self, tid: int) -> None:
        stored = self._tuples.pop(tid, None)
        if stored is None:
            raise UnknownTupleError(self.name, tid)
        if self.schema.primary_key:
            pk_pos = self.schema.positions(self.schema.primary_key)
            self._pk_index.pop(tuple(stored[p] for p in pk_pos), None)
        for attr, index in self._indexes.items():
            index.remove(stored[self.schema.position(attr)], tid)

    def clear(self) -> None:
        self._tuples.clear()
        self._pk_index.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------ indexes

    def create_index(self, attribute: str, kind: str = "hash") -> None:
        """Build (or rebuild) a secondary index on *attribute*."""
        self.schema.column(attribute)  # validates existence
        if kind == "hash":
            index: HashIndex | SortedIndex = HashIndex(self.name, attribute)
        elif kind == "sorted":
            index = SortedIndex(self.name, attribute)
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        pos = self.schema.position(attribute)
        for tid, stored in self._tuples.items():
            index.insert(stored[pos], tid)
        self._indexes[attribute] = index

    def has_index(self, attribute: str) -> bool:
        return attribute in self._indexes

    def index_on(self, attribute: str) -> HashIndex | SortedIndex:
        try:
            return self._indexes[attribute]
        except KeyError:
            raise SchemaError(
                f"no index on {self.name}.{attribute}"
            ) from None

    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    # ------------------------------------------------------------------ reads

    def fetch(self, tid: int, attributes: Optional[Sequence[str]] = None) -> Row:
        """Read one tuple by id, optionally projected."""
        stored = self._tuples.get(tid)
        if stored is None:
            raise UnknownTupleError(self.name, tid)
        self.meter.charge_tuple_read()
        if attributes is None:
            return Row(self.name, tid, self.schema.attribute_names, stored)
        pos = self.schema.positions(attributes)
        return Row(self.name, tid, attributes, tuple(stored[p] for p in pos))

    def fetch_many(
        self,
        tids: Iterable[int],
        attributes: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
    ) -> list[Row]:
        """Read tuples by id; unknown tids are skipped (they may have been

        deleted between index probe and fetch). ``limit`` truncates the
        result to an arbitrary prefix — the engine's equivalent of the
        ``RowNum`` trick the paper uses for NaïveQ.
        """
        out: list[Row] = []
        for tid in tids:
            if limit is not None and len(out) >= limit:
                break
            if tid not in self._tuples:
                continue
            out.append(self.fetch(tid, attributes))
        return out

    def scan(
        self, attributes: Optional[Sequence[str]] = None
    ) -> Iterator[Row]:
        """Full scan in tid order."""
        names = (
            self.schema.attribute_names if attributes is None else tuple(attributes)
        )
        pos = self.schema.positions(names)
        for tid, stored in self._tuples.items():
            self.meter.charge_scan_step()
            yield Row(self.name, tid, names, tuple(stored[p] for p in pos))

    # ------------------------------------------------------------------ probes

    def lookup(self, attribute: str, value: Any) -> set[int]:
        """Tids whose *attribute* equals *value* (index probe or scan)."""
        index = self._indexes.get(attribute)
        if index is not None:
            self.meter.charge_index_lookup()
            return set(index.lookup(value))
        pos = self.schema.position(attribute)
        out = set()
        for tid, stored in self._tuples.items():
            self.meter.charge_scan_step()
            if stored[pos] == value:
                out.add(tid)
        return out

    def lookup_in(self, attribute: str, values: Iterable[Any]) -> set[int]:
        """Tids whose *attribute* is in *values* (the IN-list probe)."""
        values = list(values)
        index = self._indexes.get(attribute)
        if index is not None:
            self.meter.charge_index_lookup(len(values))
            return index.lookup_many(values)
        pos = self.schema.position(attribute)
        wanted = set(values)
        out = set()
        for tid, stored in self._tuples.items():
            self.meter.charge_scan_step()
            if stored[pos] in wanted:
                out.add(tid)
        return out

    def lookup_pk(self, key: Any | tuple) -> Optional[int]:
        """Tid of the tuple with the given primary-key value, if any."""
        if not self.schema.primary_key:
            raise SchemaError(f"{self.name} has no primary key")
        if not isinstance(key, tuple):
            key = (key,)
        self.meter.charge_index_lookup()
        return self._pk_index.get(key)

    def distinct_values(self, attribute: str) -> set[Any]:
        """All distinct values of *attribute* (NULL excluded)."""
        index = self._indexes.get(attribute)
        if index is not None:
            return {v for v in index.distinct_values() if v is not None}
        pos = self.schema.position(attribute)
        return {
            stored[pos]
            for stored in self._tuples.values()
            if stored[pos] is not None
        }
