"""The relation façade: validation + cost accounting over a TupleStore.

A :class:`Relation` exposes tuples addressed by an engine-assigned
integer tuple id (*tid*) — the analogue of Oracle's ROWID that the
paper's generators use to re-fetch tuples found through the inverted
index. The actual storage lives behind the
:class:`~repro.storage.base.TupleStore` protocol (dict-based
``MemoryStore`` by default, SQLite optional); the façade owns what must
be backend-independent:

* input normalization — type coercion, NOT NULL and primary-key
  validation (referential integrity spans relations and lives in
  :class:`~repro.relational.database.Database`);
* :class:`~repro.relational.row.Row` construction and projection;
* **all** :class:`~repro.relational.cost.CostMeter` charging, so the
  modeled cost of a run is identical on every backend.

Cost charging policy (see :mod:`repro.relational.cost`):

* ``fetch`` / ``fetch_many`` charge one *tuple read* per tuple returned;
* ``lookup`` / ``lookup_in`` charge one *index lookup* per probe value
  when an index exists, or one *scan step* per stored tuple otherwise
  (an unindexed probe is a full scan on any backend);
* ``scan`` charges one scan step per tuple visited.

This makes the modeled cost of one indexed retrieval exactly
``IndexTime + TupleTime``, the unit of the paper's Formula (2).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from ..storage.base import TupleStore
from .cost import CostMeter
from .datatypes import coerce
from .errors import (
    NotNullViolation,
    PrimaryKeyViolation,
    SchemaError,
    TypeMismatchError,
    UnknownTupleError,
)
from .row import Row
from .schema import RelationSchema

__all__ = ["Relation"]

#: tids per get_many batch when a fetch limit may stop the read early
_FETCH_CHUNK = 512


class Relation:
    """A populated relation following a :class:`RelationSchema`."""

    def __init__(
        self,
        schema: RelationSchema,
        meter: Optional[CostMeter] = None,
        store: Optional[TupleStore] = None,
        on_mutate: Optional[Callable[[], None]] = None,
    ):
        self.schema = schema
        self.meter = meter or CostMeter()
        #: called after every successful write (insert/delete/update/
        #: clear) — the Database hooks its data-epoch bump here so cache
        #: validity tokens see mutations no matter which façade method
        #: performed them
        self.on_mutate = on_mutate
        #: the storage engine behind this relation. Direct access is
        #: *unmetered* — reserved for maintenance work that the paper's
        #: cost model excludes (index building, exports); queries must
        #: go through the façade methods.
        if store is None:
            # deferred import: repro.storage and repro.relational are
            # mutually referential and must load in either order
            from ..storage.memory import MemoryStore

            store = MemoryStore(schema)
        self.store: TupleStore = store

    # ------------------------------------------------------------------ basics

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.store)

    def tids(self) -> Iterator[int]:
        return self.store.tids()

    def __contains__(self, tid: int) -> bool:
        return tid in self.store

    def __repr__(self):
        return f"Relation({self.name}, {len(self)} tuples)"

    # ------------------------------------------------------------------ writes

    def _normalize(self, values: Mapping[str, Any] | Sequence[Any]) -> tuple:
        """Coerce input into a full-width storage tuple in schema order."""
        if isinstance(values, Mapping):
            unknown = set(values) - set(self.schema.attribute_names)
            if unknown:
                raise SchemaError(
                    f"unknown attributes for {self.name}: {sorted(unknown)}"
                )
            raw = [values.get(col.name) for col in self.schema.columns]
        else:
            raw = list(values)
            if len(raw) != len(self.schema):
                raise SchemaError(
                    f"{self.name} expects {len(self.schema)} values, "
                    f"got {len(raw)}"
                )
        out = []
        for col, value in zip(self.schema.columns, raw):
            try:
                value = coerce(value, col.dtype)
            except (ValueError, TypeError):
                raise TypeMismatchError(
                    self.name, col.name, col.dtype, value
                ) from None
            if value is None and (
                not col.nullable or col.name in self.schema.primary_key
            ):
                raise NotNullViolation(self.name, col.name)
            out.append(value)
        return tuple(out)

    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> int:
        """Insert one tuple; returns its tid.

        Raises on type mismatch, NULL in a required column, or duplicate
        primary key.
        """
        stored = self._normalize(values)
        if self.schema.primary_key:
            pk_pos = self.schema.positions(self.schema.primary_key)
            pk_value = tuple(stored[p] for p in pk_pos)
            # unmetered pre-check: loading is not part of Formula (2)
            if self.store.lookup_pk(pk_value) is not None:
                raise PrimaryKeyViolation(self.name, pk_value)
        tid = self.store.insert(stored)
        if self.on_mutate is not None:
            self.on_mutate()
        return tid

    def insert_many(
        self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> list[int]:
        return [self.insert(row) for row in rows]

    def update(self, tid: int, changes: Mapping[str, Any]) -> None:
        """Replace attribute values of one tuple *in place* (same tid).

        *changes* maps attribute names to new values; unmentioned
        attributes keep their current values. The merged tuple passes
        the same validation as an insert (type coercion, NOT NULL,
        primary-key uniqueness against every *other* tuple). Raises
        :class:`UnknownTupleError` when *tid* is absent. Referential
        integrity spans relations and lives in
        :meth:`~repro.relational.database.Database.update`.
        """
        current = self.store.get(tid)
        if current is None:
            raise UnknownTupleError(self.name, tid)
        unknown = set(changes) - set(self.schema.attribute_names)
        if unknown:
            raise SchemaError(
                f"unknown attributes for {self.name}: {sorted(unknown)}"
            )
        merged = {
            col.name: changes.get(col.name, current[pos])
            for pos, col in enumerate(self.schema.columns)
        }
        stored = self._normalize(merged)
        if self.schema.primary_key:
            pk_pos = self.schema.positions(self.schema.primary_key)
            pk_value = tuple(stored[p] for p in pk_pos)
            owner = self.store.lookup_pk(pk_value)
            if owner is not None and owner != tid:
                raise PrimaryKeyViolation(self.name, pk_value)
        self.store.update(tid, stored)
        if self.on_mutate is not None:
            self.on_mutate()

    def delete(self, tid: int) -> None:
        self.store.delete(tid)
        if self.on_mutate is not None:
            self.on_mutate()

    def clear(self) -> None:
        self.store.clear()
        if self.on_mutate is not None:
            self.on_mutate()

    # ------------------------------------------------------------------ indexes

    def create_index(self, attribute: str, kind: str = "hash") -> None:
        """Build (or rebuild) a secondary index on *attribute*."""
        self.schema.column(attribute)  # validates existence
        if kind not in ("hash", "sorted"):
            raise SchemaError(f"unknown index kind {kind!r}")
        self.store.create_index(attribute, kind)

    def has_index(self, attribute: str) -> bool:
        return self.store.has_index(attribute)

    def index_on(self, attribute: str):
        """The backend's index handle (an object with a ``kind``)."""
        return self.store.index_on(attribute)

    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        return self.store.indexed_attributes

    # ------------------------------------------------------------------ reads

    def _row(
        self, tid: int, stored: tuple, attributes: Optional[Sequence[str]]
    ) -> Row:
        if attributes is None:
            return Row(self.name, tid, self.schema.attribute_names, stored)
        pos = self.schema.positions(attributes)
        return Row(self.name, tid, attributes, tuple(stored[p] for p in pos))

    def fetch(self, tid: int, attributes: Optional[Sequence[str]] = None) -> Row:
        """Read one tuple by id, optionally projected."""
        stored = self.store.get(tid)
        if stored is None:
            raise UnknownTupleError(self.name, tid)
        self.meter.charge_tuple_read()
        return self._row(tid, stored, attributes)

    def fetch_many(
        self,
        tids: Iterable[int],
        attributes: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
    ) -> list[Row]:
        """Read tuples by id; unknown tids are skipped (they may have been

        deleted between index probe and fetch). ``limit`` truncates the
        result to an arbitrary prefix — the engine's equivalent of the
        ``RowNum`` trick the paper uses for NaïveQ. Reads are batched
        through the store (one ``IN``-query per chunk on SQLite) rather
        than issued per tid.
        """
        tid_list = list(tids)
        out: list[Row] = []
        for start in range(0, len(tid_list), _FETCH_CHUNK):
            if limit is not None and len(out) >= limit:
                break
            chunk = tid_list[start : start + _FETCH_CHUNK]
            found = self.store.get_many(chunk)
            for tid in chunk:
                if limit is not None and len(out) >= limit:
                    break
                stored = found.get(tid)
                if stored is None:
                    continue
                self.meter.charge_tuple_read()
                out.append(self._row(tid, stored, attributes))
        return out

    def scan(
        self, attributes: Optional[Sequence[str]] = None
    ) -> Iterator[Row]:
        """Full scan in tid order."""
        names = (
            self.schema.attribute_names if attributes is None else tuple(attributes)
        )
        pos = self.schema.positions(names)
        for tid, stored in self.store.scan():
            self.meter.charge_scan_step()
            yield Row(self.name, tid, names, tuple(stored[p] for p in pos))

    # ------------------------------------------------------------------ probes

    def lookup(self, attribute: str, value: Any) -> set[int]:
        """Tids whose *attribute* equals *value* (index probe or scan)."""
        self.schema.position(attribute)  # validates existence
        if self.store.has_index(attribute):
            self.meter.charge_index_lookup()
        else:
            self.meter.charge_scan_step(len(self.store))
        return self.store.lookup(attribute, value)

    def lookup_in(self, attribute: str, values: Iterable[Any]) -> set[int]:
        """Tids whose *attribute* is in *values* (the IN-list probe)."""
        values = list(values)
        self.schema.position(attribute)  # validates existence
        if self.store.has_index(attribute):
            self.meter.charge_index_lookup(len(values))
        else:
            self.meter.charge_scan_step(len(self.store))
        return self.store.lookup_in(attribute, values)

    def lookup_pk(self, key: Any | tuple) -> Optional[int]:
        """Tid of the tuple with the given primary-key value, if any."""
        if not self.schema.primary_key:
            raise SchemaError(f"{self.name} has no primary key")
        if not isinstance(key, tuple):
            key = (key,)
        self.meter.charge_index_lookup()
        if len(key) != len(self.schema.primary_key):
            return None  # arity mismatch can never match a stored key
        return self.store.lookup_pk(key)

    def distinct_values(self, attribute: str) -> set[Any]:
        """All distinct values of *attribute* (NULL excluded)."""
        self.schema.position(attribute)  # validates existence
        return self.store.distinct_values(attribute)
