"""Secondary indexes over relations.

The paper assumes "indexes on all join attributes" (§6, cost model). The
engine provides a classic unclustered hash index mapping attribute value →
set of tuple ids. Index maintenance is transparent: the owning
:class:`~repro.relational.relation.Relation` notifies its indexes on every
insert and delete.

A sorted index (value-ordered) is also provided; the précis algorithms do
not need range scans, but the DISCOVER/BANKS baselines and the mini-SQL
executor benefit from ordered access, and the index/scan-equivalence
property tests exercise both.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """Unclustered equality index: value -> set of tuple ids."""

    kind = "hash"

    def __init__(self, relation: str, attribute: str):
        self.relation = relation
        self.attribute = attribute
        self._buckets: dict[Any, set[int]] = {}

    # -- maintenance ----------------------------------------------------------

    def insert(self, value: Any, tid: int) -> None:
        self._buckets.setdefault(value, set()).add(tid)

    def remove(self, value: Any, tid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.discard(tid)
        if not bucket:
            del self._buckets[value]

    def clear(self) -> None:
        self._buckets.clear()

    # -- probing ----------------------------------------------------------------

    def lookup(self, value: Any) -> frozenset[int]:
        """Tuple ids whose indexed attribute equals *value*."""
        return frozenset(self._buckets.get(value, ()))

    def lookup_many(self, values: Iterable[Any]) -> set[int]:
        """Union of lookups over *values* (the IN-list probe the Result

        Database Generator issues for every executed join edge)."""
        out: set[int] = set()
        for value in values:
            bucket = self._buckets.get(value)
            if bucket:
                out.update(bucket)
        return out

    def distinct_values(self) -> Iterator[Any]:
        return iter(self._buckets)

    def __len__(self):
        return len(self._buckets)

    def __contains__(self, value: Any) -> bool:
        return value in self._buckets

    def __repr__(self):
        return (
            f"HashIndex({self.relation}.{self.attribute}, "
            f"{len(self._buckets)} distinct values)"
        )


class SortedIndex:
    """Value-ordered index supporting equality and range probes.

    Keeps a sorted list of distinct values alongside a hash map to tid
    sets; insertion is O(log n) amortized for already-seen values and
    O(n) worst case for new ones, which is fine for the bulk-load-then-
    query usage pattern of this repository.
    """

    kind = "sorted"

    def __init__(self, relation: str, attribute: str):
        self.relation = relation
        self.attribute = attribute
        self._values: list[Any] = []
        self._buckets: dict[Any, set[int]] = {}

    def insert(self, value: Any, tid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is None:
            if value is not None:
                bisect.insort(self._values, value)
            self._buckets[value] = {tid}
        else:
            bucket.add(tid)

    def remove(self, value: Any, tid: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is None:
            return
        bucket.discard(tid)
        if not bucket:
            del self._buckets[value]
            if value is not None:
                pos = bisect.bisect_left(self._values, value)
                if pos < len(self._values) and self._values[pos] == value:
                    del self._values[pos]

    def clear(self) -> None:
        self._values.clear()
        self._buckets.clear()

    def lookup(self, value: Any) -> frozenset[int]:
        return frozenset(self._buckets.get(value, ()))

    def lookup_many(self, values: Iterable[Any]) -> set[int]:
        out: set[int] = set()
        for value in values:
            bucket = self._buckets.get(value)
            if bucket:
                out.update(bucket)
        return out

    def range(self, low: Any = None, high: Any = None) -> set[int]:
        """Tuple ids with ``low <= value <= high`` (either bound optional).

        NULLs never match a range probe.
        """
        lo = 0 if low is None else bisect.bisect_left(self._values, low)
        hi = (
            len(self._values)
            if high is None
            else bisect.bisect_right(self._values, high)
        )
        out: set[int] = set()
        for value in self._values[lo:hi]:
            out.update(self._buckets[value])
        return out

    def distinct_values(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self):
        return len(self._buckets)

    def __contains__(self, value: Any) -> bool:
        return value in self._buckets

    def __repr__(self):
        return (
            f"SortedIndex({self.relation}.{self.attribute}, "
            f"{len(self._buckets)} distinct values)"
        )
