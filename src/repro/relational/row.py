"""Row objects returned by the engine's operators.

A :class:`Row` is an immutable, schema-aware view over a tuple of values.
It behaves both like a mapping (``row["title"]``) and like a sequence
(``row[0]``, iteration yields values in schema order), and carries the
tuple id (*tid*) it was read from so that downstream stages — notably the
Result Database Generator, which re-fetches join partners by id lists —
can refer back to storage.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from .errors import SchemaError

__all__ = ["Row"]


class Row:
    """One tuple of a relation, projected on an explicit attribute list."""

    __slots__ = ("relation", "tid", "attributes", "values", "_index")

    def __init__(
        self,
        relation: str,
        tid: int,
        attributes: Sequence[str],
        values: Sequence[Any],
    ):
        if len(attributes) != len(values):
            raise SchemaError(
                f"row arity mismatch in {relation}: "
                f"{len(attributes)} attributes, {len(values)} values"
            )
        self.relation = relation
        self.tid = tid
        self.attributes = tuple(attributes)
        self.values = tuple(values)
        self._index = {name: pos for pos, name in enumerate(self.attributes)}

    # -- access --------------------------------------------------------------

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self.values[key]
        try:
            return self.values[self._index[key]]
        except KeyError:
            raise SchemaError(
                f"row of {self.relation} has no attribute {key!r}"
            ) from None

    def get(self, key: str, default: Any = None) -> Any:
        pos = self._index.get(key)
        return default if pos is None else self.values[pos]

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self.attributes, self.values))

    def project(self, attributes: Sequence[str]) -> "Row":
        """A new row restricted to *attributes* (in the given order)."""
        return Row(
            self.relation,
            self.tid,
            attributes,
            tuple(self[a] for a in attributes),
        )

    # -- equality / hashing ----------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, Row):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.attributes == other.attributes
            and self.values == other.values
        )

    def __hash__(self):
        return hash((self.relation, self.attributes, self.values))

    def __repr__(self):
        pairs = ", ".join(
            f"{a}={v!r}" for a, v in zip(self.attributes, self.values)
        )
        return f"Row({self.relation}#{self.tid}: {pairs})"
