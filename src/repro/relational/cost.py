"""Cost accounting for the engine — the substrate for the paper's Formula (2).

The paper models the Result Database Generator's cost as::

    Cost(D') = sum_i card(R'_i) * (IndexTime + TupleTime)        (1)
             = c_R * n_R * (IndexTime + TupleTime)               (2)

where ``IndexTime`` is the time to find a tuple id from an index given a
value, and ``TupleTime`` is the time to read a tuple given its id. Our
engine charges exactly those two unit operations to a :class:`CostMeter`,
so the modeled cost of any run is directly observable and Formula (2) can
be validated analytically as well as by wall clock.

The meter is deliberately *not* global: every :class:`~repro.relational.
database.Database` owns one, and scopes can be nested via
:meth:`CostMeter.measure`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParameters", "CostMeter", "CostSnapshot"]


@dataclass(frozen=True)
class CostParameters:
    """Abstract unit costs (the paper's ``IndexTime`` and ``TupleTime``).

    The defaults are arbitrary but fixed; only their sum matters for the
    shape of Formula (2). ``scan_time`` prices a full-scan step (per tuple
    visited without an index) — the paper assumes indexes on all join
    attributes, so scans only show up when that assumption is violated.
    """

    index_time: float = 1.0
    tuple_time: float = 2.0
    scan_time: float = 0.5

    @property
    def unit_fetch(self) -> float:
        """Cost of one indexed tuple retrieval: IndexTime + TupleTime."""
        return self.index_time + self.tuple_time


@dataclass
class CostSnapshot:
    """Immutable-ish view of counter values at one point in time."""

    index_lookups: int = 0
    tuple_reads: int = 0
    scan_steps: int = 0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            self.index_lookups - other.index_lookups,
            self.tuple_reads - other.tuple_reads,
            self.scan_steps - other.scan_steps,
        )

    def modeled_cost(self, params: CostParameters) -> float:
        """Total modeled cost in abstract time units."""
        return (
            self.index_lookups * params.index_time
            + self.tuple_reads * params.tuple_time
            + self.scan_steps * params.scan_time
        )


class CostMeter:
    """Mutable accumulator of unit operations performed by the engine."""

    def __init__(self, params: CostParameters | None = None):
        self.params = params or CostParameters()
        self.index_lookups = 0
        self.tuple_reads = 0
        self.scan_steps = 0

    # -- charging (called by the engine) -----------------------------------

    def charge_index_lookup(self, count: int = 1) -> None:
        self.index_lookups += count

    def charge_tuple_read(self, count: int = 1) -> None:
        self.tuple_reads += count

    def charge_scan_step(self, count: int = 1) -> None:
        self.scan_steps += count

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(self.index_lookups, self.tuple_reads, self.scan_steps)

    def modeled_cost(self) -> float:
        return self.snapshot().modeled_cost(self.params)

    def reset(self) -> None:
        self.index_lookups = 0
        self.tuple_reads = 0
        self.scan_steps = 0

    def measure(self) -> "_Measurement":
        """Context manager yielding the delta accumulated inside the block.

        >>> meter = CostMeter()
        >>> with meter.measure() as m:
        ...     meter.charge_tuple_read(3)
        >>> m.delta.tuple_reads
        3
        """
        return _Measurement(self)

    def __repr__(self):
        return (
            f"CostMeter(index_lookups={self.index_lookups}, "
            f"tuple_reads={self.tuple_reads}, scan_steps={self.scan_steps})"
        )


class _Measurement:
    """Result object of :meth:`CostMeter.measure`."""

    def __init__(self, meter: CostMeter):
        self._meter = meter
        self._start: CostSnapshot | None = None
        self.delta: CostSnapshot = CostSnapshot()

    def __enter__(self) -> "_Measurement":
        self._start = self._meter.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb):
        assert self._start is not None
        self.delta = self._meter.snapshot() - self._start
        return False

    @property
    def modeled_cost(self) -> float:
        return self.delta.modeled_cost(self._meter.params)
