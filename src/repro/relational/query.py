"""Query operators used by the précis generators and the baselines.

The Result Database Generator never executes actual joins: it fetches
tuples of one relation whose join attribute takes values drawn from
already-retrieved tuples of another (paper §5.2, the queries
``σ_Ids(R_j)[π(R_j)]``). The operators here implement exactly those
access paths, plus the two subset strategies the paper compares:

* :func:`select_by_tids` — ``σ_Tids(R)[π(R)]`` with an optional limit
  (**NaïveQ** over an id list: keep an arbitrary prefix, Oracle-RowNum
  style);
* :func:`select_in` — the IN-list probe, again with optional limit;
* :class:`RoundRobinScans` — one open scan of joining tuples per driving
  value, consumed one tuple per scan per round (**RoundRobin**).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from .relation import Relation
from .row import Row

__all__ = [
    "select_by_tids",
    "select_eq",
    "select_in",
    "top_n",
    "RoundRobinScans",
]


def select_by_tids(
    relation: Relation,
    tids: Iterable[int],
    attributes: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> list[Row]:
    """Fetch the tuples with the given ids, projected, optionally truncated.

    Tids are visited in sorted order so that results are deterministic
    across runs (sets have no stable order in CPython across processes).
    """
    return relation.fetch_many(sorted(tids), attributes, limit)


def select_eq(
    relation: Relation,
    attribute: str,
    value: Any,
    attributes: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> list[Row]:
    """``σ_{attribute=value}(R)[attributes]`` via index when available."""
    tids = relation.lookup(attribute, value)
    return select_by_tids(relation, tids, attributes, limit)


def select_in(
    relation: Relation,
    attribute: str,
    values: Iterable[Any],
    attributes: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
) -> list[Row]:
    """``σ_{attribute IN values}(R)[attributes]`` — the NaïveQ join probe.

    With ``limit`` set, an arbitrary (but deterministic) prefix is kept;
    for 1-to-n joins this is exactly the paper's risk case where some
    driving tuples may end up with no join partners.
    """
    tids = relation.lookup_in(attribute, values)
    return select_by_tids(relation, tids, attributes, limit)


def top_n(rows: Iterable[Row], n: Optional[int]) -> list[Row]:
    """Keep the first *n* rows (all of them if *n* is None)."""
    if n is None:
        return list(rows)
    out = []
    for row in rows:
        if len(out) >= n:
            break
        out.append(row)
    return out


class RoundRobinScans:
    """The paper's RoundRobin retrieval strategy (§5.2).

    For each driving value (a join-attribute value found in the
    already-retrieved tuples of the source relation) a scan of joining
    tuples is opened in the target relation. Each round retrieves at most
    one tuple per open scan, as long as the budget holds; exhausted scans
    close. This spreads the retrieved tuples evenly over the driving
    tuples, so no driving tuple is left joinless while others hoard the
    budget.

    >>> # scans over values [1, 2] with budget 3 returns 2 tuples for
    >>> # value 1 and 1 for value 2 only if value 2 runs out first.
    """

    def __init__(
        self,
        relation: Relation,
        attribute: str,
        driving_values: Iterable[Any],
        attributes: Optional[Sequence[str]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ):
        """*should_stop* is an optional zero-argument callable polled
        periodically while the per-value scans open (one index probe per
        driving value — the only unbounded work here). Returning True
        stops opening further scans; the scans opened so far behave
        normally. The engine passes a deadline check through it without
        this layer knowing what a deadline is."""
        self.relation = relation
        self.attribute = attribute
        self.attributes = attributes
        # One ordered queue of matching tids per distinct driving value.
        # dict.fromkeys preserves first-seen order while deduplicating.
        self._queues: list[list[int]] = []
        for i, value in enumerate(dict.fromkeys(driving_values)):
            if should_stop is not None and i % 256 == 0 and i and should_stop():
                break
            tids = sorted(relation.lookup(attribute, value))
            if tids:
                # reversed so .pop() yields ascending-tid order
                self._queues.append(list(reversed(tids)))
        self._cursor = 0

    @property
    def open_scans(self) -> int:
        return len(self._queues)

    def exhausted(self) -> bool:
        return not self._queues

    def next_tuple(self) -> Optional[Row]:
        """Retrieve one tuple from the next open scan, round-robin.

        Each call charges one scan step on top of the tuple read: the
        paper's RoundRobin issues one cursor advance per tuple (rather
        than one batched IN-list query), and that per-fetch overhead is
        what makes it measurably slower than NaïveQ in Figure 9.
        """
        if not self._queues:
            return None
        self.relation.meter.charge_scan_step()
        if self._cursor >= len(self._queues):
            self._cursor = 0
        queue = self._queues[self._cursor]
        tid = queue.pop()
        if queue:
            self._cursor += 1
        else:
            del self._queues[self._cursor]
        return self.relation.fetch(tid, self.attributes)

    def take(self, budget: Optional[int]) -> list[Row]:
        """Retrieve up to *budget* tuples (all matches if None).

        Duplicate tids across driving values (possible when two driving
        values hash to overlapping tid sets — cannot happen for equality
        probes, but kept safe) are filtered out.
        """
        out: list[Row] = []
        seen: set[int] = set()
        while not self.exhausted():
            if budget is not None and len(out) >= budget:
                break
            row = self.next_tuple()
            if row is not None and row.tid not in seen:
                seen.add(row.tid)
                out.append(row)
        return out
