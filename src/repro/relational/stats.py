"""Database statistics: cardinalities, distinct counts, join fan-outs.

Used by the benchmark harness to characterize workloads (is a join
1-to-1 or 1-to-n? how skewed?), by the examples to describe the
databases they carve up, and available to applications to pick
cardinality constraints intelligently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .database import Database
from .schema import ForeignKey

__all__ = ["RelationStats", "FanoutStats", "relation_stats", "fanout_stats",
           "database_summary"]


@dataclass(frozen=True)
class RelationStats:
    """Basic statistics of one relation."""

    relation: str
    cardinality: int
    distinct: dict[str, int]  # attribute -> number of distinct non-NULL
    nulls: dict[str, int]  # attribute -> number of NULLs

    def selectivity(self, attribute: str) -> float:
        """Average tuples per distinct value (1.0 = unique)."""
        d = self.distinct.get(attribute, 0)
        non_null = self.cardinality - self.nulls.get(attribute, 0)
        return non_null / d if d else 0.0


@dataclass(frozen=True)
class FanoutStats:
    """Fan-out of a foreign-key join: children per referenced parent."""

    fk: ForeignKey
    min_fanout: int
    max_fanout: int
    mean_fanout: float
    orphans: int  # parents with no children

    @property
    def is_skewed(self) -> bool:
        """Max fan-out more than double the mean — NaïveQ's risk zone."""
        return self.mean_fanout > 0 and self.max_fanout > 2 * self.mean_fanout


def relation_stats(db: Database, relation: str) -> RelationStats:
    rel = db.relation(relation)
    names = rel.schema.attribute_names
    seen: dict[str, set] = {name: set() for name in names}
    nulls: dict[str, int] = {name: 0 for name in names}
    for row in rel.scan():
        for name, value in zip(names, row.values):
            if value is None:
                nulls[name] += 1
            else:
                seen[name].add(value)
    return RelationStats(
        relation=relation,
        cardinality=len(rel),
        distinct={name: len(values) for name, values in seen.items()},
        nulls=nulls,
    )


def fanout_stats(db: Database, fk: ForeignKey) -> FanoutStats:
    """Children-per-parent distribution of one foreign key."""
    parent = db.relation(fk.target)
    child = db.relation(fk.source)
    counts: dict = {
        value: 0 for value in parent.distinct_values(fk.target_column)
    }
    pos = child.schema.position(fk.column)
    for tid in child.tids():
        value = child.fetch(tid)[pos]
        if value in counts:
            counts[value] += 1
    if not counts:
        return FanoutStats(fk, 0, 0, 0.0, 0)
    values = list(counts.values())
    return FanoutStats(
        fk=fk,
        min_fanout=min(values),
        max_fanout=max(values),
        mean_fanout=sum(values) / len(values),
        orphans=sum(1 for v in values if v == 0),
    )


def database_summary(db: Database) -> str:
    """Multi-line text summary of a database (used by the examples)."""
    lines = [f"{len(db.relation_names)} relations, {db.total_tuples()} tuples"]
    for relation in db.relation_names:
        stats = relation_stats(db, relation)
        keys = ", ".join(
            f"{a}:{stats.distinct[a]}" for a in stats.distinct
        )
        lines.append(f"  {relation}: {stats.cardinality} tuples ({keys})")
    for fk in db.schema.foreign_keys:
        fan = fanout_stats(db, fk)
        skew = " SKEWED" if fan.is_skewed else ""
        lines.append(
            f"  {fk}: fan-out {fan.min_fanout}–{fan.max_fanout} "
            f"(mean {fan.mean_fanout:.2f}){skew}"
        )
    return "\n".join(lines)
