"""Column data types for the relational engine.

The engine supports a deliberately small set of scalar types — the précis
algorithms only ever compare values for equality (point selections, IN-list
selections and foreign-key joins), so rich type algebra is unnecessary.
What *is* needed, and provided here, is strict validation on insert,
canonical coercion (so that values loaded from CSV compare equal to values
inserted programmatically), and stable text rendering for the translator.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

__all__ = ["DataType", "coerce", "validate", "render"]


class DataType(enum.Enum):
    """Scalar types storable in a column."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"
    BOOL = "bool"

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_TRUE_WORDS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_WORDS = frozenset({"false", "f", "no", "n", "0"})


def coerce(value: Any, dtype: DataType) -> Any:
    """Coerce *value* into the canonical Python representation of *dtype*.

    ``None`` passes through unchanged (NULL handling is the schema's job).
    Raises :class:`ValueError` if the value cannot be represented in the
    target type; the caller wraps this into a
    :class:`~repro.relational.errors.TypeMismatchError` with context.
    """
    if value is None:
        return None
    if dtype is DataType.INT:
        if isinstance(value, bool):
            raise ValueError("bool is not an INT")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            return int(value.strip())
        raise ValueError(f"cannot coerce {value!r} to INT")
    if dtype is DataType.FLOAT:
        if isinstance(value, bool):
            raise ValueError("bool is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            return float(value.strip())
        raise ValueError(f"cannot coerce {value!r} to FLOAT")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise ValueError(f"cannot coerce {value!r} to TEXT")
    if dtype is DataType.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return datetime.date.fromisoformat(value.strip())
        raise ValueError(f"cannot coerce {value!r} to DATE")
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            word = value.strip().lower()
            if word in _TRUE_WORDS:
                return True
            if word in _FALSE_WORDS:
                return False
        raise ValueError(f"cannot coerce {value!r} to BOOL")
    raise ValueError(f"unknown data type {dtype!r}")  # pragma: no cover


def validate(value: Any, dtype: DataType) -> bool:
    """Return True iff *value* is already in canonical form for *dtype*."""
    if value is None:
        return True
    if dtype is DataType.INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if dtype is DataType.FLOAT:
        return isinstance(value, float)
    if dtype is DataType.TEXT:
        return isinstance(value, str)
    if dtype is DataType.DATE:
        return isinstance(value, datetime.date) and not isinstance(
            value, datetime.datetime
        )
    if dtype is DataType.BOOL:
        return isinstance(value, bool)
    return False  # pragma: no cover


def render(value: Any) -> str:
    """Render a stored value as text for CSV export and the NL translator.

    NULL renders as the empty string; dates render ISO-8601; everything
    else uses ``str``. The rendering round-trips through :func:`coerce`.
    """
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)
