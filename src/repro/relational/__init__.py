"""An in-memory relational engine — the storage substrate for précis queries.

The paper ran on Oracle 9i; this package replaces it with a small,
fully-tested engine exposing exactly what the précis algorithms need:
typed schemas with primary/foreign keys, tuple-id addressed storage,
hash/sorted indexes on join attributes, IN-list and tid-list selections
with limits (NaïveQ), round-robin scan cursors, per-operation cost
accounting matching the paper's ``IndexTime``/``TupleTime`` model, CSV
round-tripping, and a conjunctive mini-SQL layer for the baselines.
"""

from .cost import CostMeter, CostParameters, CostSnapshot
from .database import Database
from .ddl import create_schema_sql, create_table_sql, parse_ddl
from .datatypes import DataType
from .errors import (
    ConstraintViolation,
    ForeignKeyViolation,
    NotNullViolation,
    PrimaryKeyViolation,
    QueryError,
    RelationalError,
    SchemaError,
    SQLSyntaxError,
    TypeMismatchError,
    UnknownTupleError,
)
from .index import HashIndex, SortedIndex
from .query import RoundRobinScans, select_by_tids, select_eq, select_in, top_n
from .relation import Relation
from .stats import FanoutStats, RelationStats, database_summary, fanout_stats, relation_stats
from .row import Row
from .schema import Column, DatabaseSchema, ForeignKey, RelationSchema

__all__ = [
    "CostMeter",
    "CostParameters",
    "CostSnapshot",
    "Database",
    "DataType",
    "Column",
    "DatabaseSchema",
    "ForeignKey",
    "RelationSchema",
    "Relation",
    "Row",
    "HashIndex",
    "SortedIndex",
    "RoundRobinScans",
    "select_by_tids",
    "select_eq",
    "select_in",
    "top_n",
    "RelationalError",
    "SchemaError",
    "TypeMismatchError",
    "ConstraintViolation",
    "PrimaryKeyViolation",
    "ForeignKeyViolation",
    "NotNullViolation",
    "UnknownTupleError",
    "QueryError",
    "SQLSyntaxError",
    "create_table_sql",
    "create_schema_sql",
    "parse_ddl",
    "RelationStats",
    "FanoutStats",
    "relation_stats",
    "fanout_stats",
    "database_summary",
]
