"""Schema objects: columns, relation schemas, foreign keys, database schemas.

Mirrors the data model of the paper (§3.1): a relation schema
``R_i(A_1i, …, A_ki)`` with a (non-composite, per the paper's simplifying
assumption) primary key, and join edges that "arise naturally due to
foreign key constraints". Composite keys are nevertheless supported by the
engine — the précis layer simply never needs them for the paper's schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .datatypes import DataType
from .errors import SchemaError

__all__ = ["Column", "ForeignKey", "RelationSchema", "DatabaseSchema"]


@dataclass(frozen=True)
class Column:
    """A single attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation.
    dtype:
        One of :class:`~repro.relational.datatypes.DataType`.
    nullable:
        Whether NULL values are accepted. Primary-key columns are always
        implicitly non-nullable regardless of this flag.
    """

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A referential constraint: ``source.column -> target.column``.

    The précis schema graph derives its join edges from these constraints
    (one edge in each direction, possibly with different weights).
    """

    source: str
    column: str
    target: str
    target_column: str

    def __str__(self):
        return (
            f"{self.source}.{self.column} -> "
            f"{self.target}.{self.target_column}"
        )


class RelationSchema:
    """Schema of a single relation: ordered columns plus a primary key."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[Sequence[str] | str] = None,
    ):
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid relation name {name!r}")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"relation {name} must have at least one column")
        self._by_name = {}
        self._positions = {}
        for pos, col in enumerate(self.columns):
            if col.name in self._by_name:
                raise SchemaError(f"duplicate column {col.name} in {name}")
            self._by_name[col.name] = col
            self._positions[col.name] = pos
        if primary_key is None:
            pk: tuple[str, ...] = ()
        elif isinstance(primary_key, str):
            pk = (primary_key,)
        else:
            pk = tuple(primary_key)
        for attr in pk:
            if attr not in self._by_name:
                raise SchemaError(f"primary key column {attr} not in {name}")
        self.primary_key: tuple[str, ...] = pk

    # -- lookups ----------------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column {name} in {self.name}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def position(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(f"no column {name} in {self.name}") from None

    def positions(self, names: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.position(n) for n in names)

    def __len__(self):
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __repr__(self):
        cols = ", ".join(
            f"{c.name}*" if c.name in self.primary_key else c.name
            for c in self.columns
        )
        return f"RelationSchema({self.name}: {cols})"

    def __eq__(self, other):
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self.primary_key == other.primary_key
        )

    def __hash__(self):
        return hash((self.name, self.columns, self.primary_key))

    def project(self, attributes: Sequence[str]) -> "RelationSchema":
        """Derive a schema keeping only *attributes* (schema subsetting,

        query-model requirement 2 of the paper: each result relation keeps
        a subset of its original attributes). The primary key survives only
        if all of its columns survive.
        """
        attrs = list(dict.fromkeys(attributes))
        cols = [self.column(a) for a in attrs]
        pk = self.primary_key if all(k in attrs for k in self.primary_key) else ()
        return RelationSchema(self.name, cols, pk)


class DatabaseSchema:
    """A set of relation schemas plus the foreign keys linking them."""

    def __init__(
        self,
        relations: Sequence[RelationSchema] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ):
        self._relations: dict[str, RelationSchema] = {}
        self._foreign_keys: list[ForeignKey] = []
        for rel in relations:
            self.add_relation(rel)
        for fk in foreign_keys:
            self.add_foreign_key(fk)

    # -- construction ------------------------------------------------------

    def add_relation(self, schema: RelationSchema) -> None:
        if schema.name in self._relations:
            raise SchemaError(f"duplicate relation {schema.name}")
        self._relations[schema.name] = schema

    def add_foreign_key(self, fk: ForeignKey) -> None:
        src = self.relation(fk.source)
        tgt = self.relation(fk.target)
        if not src.has_column(fk.column):
            raise SchemaError(f"foreign key column missing: {fk}")
        if not tgt.has_column(fk.target_column):
            raise SchemaError(f"foreign key target column missing: {fk}")
        if src.column(fk.column).dtype != tgt.column(fk.target_column).dtype:
            raise SchemaError(f"foreign key type mismatch: {fk}")
        self._foreign_keys.append(fk)

    # -- lookups ------------------------------------------------------------

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    @property
    def relations(self) -> tuple[RelationSchema, ...]:
        return tuple(self._relations.values())

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation {name} in schema") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def foreign_keys_of(self, relation: str) -> list[ForeignKey]:
        """Foreign keys whose *source* is the given relation."""
        return [fk for fk in self._foreign_keys if fk.source == relation]

    def foreign_keys_into(self, relation: str) -> list[ForeignKey]:
        """Foreign keys whose *target* is the given relation."""
        return [fk for fk in self._foreign_keys if fk.target == relation]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self):
        return len(self._relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __repr__(self):
        return (
            f"DatabaseSchema({len(self._relations)} relations, "
            f"{len(self._foreign_keys)} foreign keys)"
        )
