"""Exception hierarchy for the relational engine.

Every error raised by :mod:`repro.relational` derives from
:class:`RelationalError`, so callers can catch substrate failures with a
single ``except`` clause while still being able to discriminate finer
failure classes (schema misuse, constraint violations, type errors).
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all errors raised by the relational engine."""


class SchemaError(RelationalError):
    """A schema definition is malformed or referenced incorrectly.

    Raised for duplicate relation/attribute names, unknown relations or
    attributes, and foreign keys that reference non-existent columns.
    """


class TypeMismatchError(RelationalError):
    """A value does not conform to the declared type of its column."""

    def __init__(self, relation, attribute, expected, value):
        self.relation = relation
        self.attribute = attribute
        self.expected = expected
        self.value = value
        super().__init__(
            f"{relation}.{attribute}: expected {expected.name}, "
            f"got {type(value).__name__} ({value!r})"
        )


class ConstraintViolation(RelationalError):
    """Base class for integrity constraint violations."""


class PrimaryKeyViolation(ConstraintViolation):
    """An insert would duplicate an existing primary key value."""

    def __init__(self, relation, key):
        self.relation = relation
        self.key = key
        super().__init__(f"duplicate primary key {key!r} in {relation}")


class ForeignKeyViolation(ConstraintViolation):
    """An insert or delete would break referential integrity."""

    def __init__(self, message):
        super().__init__(message)


class NotNullViolation(ConstraintViolation):
    """A required (non-nullable) column received NULL."""

    def __init__(self, relation, attribute):
        self.relation = relation
        self.attribute = attribute
        super().__init__(f"{relation}.{attribute} may not be NULL")


class UnknownTupleError(RelationalError):
    """A tuple id does not exist in the relation it was looked up in."""

    def __init__(self, relation, tid):
        self.relation = relation
        self.tid = tid
        super().__init__(f"no tuple with id {tid} in {relation}")


class QueryError(RelationalError):
    """A query (operator call or SQL string) is malformed."""


class SQLSyntaxError(QueryError):
    """The mini-SQL parser could not parse the input string."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
