"""A bounded, versioned LRU cache with first-class statistics.

The building block of :mod:`repro.cache`: a plain-dict LRU (Python
dicts preserve insertion order; recency is maintained by re-inserting
on access) whose entries carry the *validity token* they were computed
under. A lookup must present the current token — an entry stored under
an older token is dropped on sight and counted as an **invalidation**,
which is how graph/index/data epochs (see :mod:`repro.cache.versions`)
turn mutation into cache eviction without any notification plumbing.

Bounds: ``max_entries`` caps the entry count; ``max_bytes`` (optional)
caps the sum of per-entry sizes as reported by the ``sizer`` callable.
Both bounds evict least-recently-used entries first and count
**evictions**. Sizes are estimates — the byte bound exists to keep an
answer cache from hoarding arbitrarily large result databases, not to
account memory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

__all__ = ["MISSING", "CacheStats", "LRUCache"]

#: sentinel returned by :meth:`LRUCache.get` when the key is absent or
#: stale (``None`` is a legitimate cached value)
MISSING = object()


@dataclass
class CacheStats:
    """Monotonic counters describing one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache was never consulted)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self):
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, "
            f"invalidations={self.invalidations})"
        )


class _Entry:
    __slots__ = ("version", "value", "size")

    def __init__(self, version: Hashable, value: Any, size: int):
        self.version = version
        self.value = value
        self.size = size


class LRUCache:
    """Versioned LRU mapping with entry- and byte-count bounds.

    Parameters
    ----------
    max_entries:
        Maximum number of live entries (must be positive).
    max_bytes:
        Optional cap on the summed ``sizer`` estimates of live values.
        A single value larger than the whole budget is simply not
        cached.
    sizer:
        ``value -> int`` size estimator; only consulted when
        *max_bytes* is set. Defaults to counting every value as 1 (so a
        bare *max_bytes* degenerates into a second entry bound).
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: Optional[int] = None,
        sizer: Optional[Callable[[Any], int]] = None,
    ):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._sizer = sizer or (lambda value: 1)
        self._entries: dict[Hashable, _Entry] = {}
        self._bytes = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def current_bytes(self) -> int:
        """Summed size estimates of the live entries."""
        return self._bytes

    def get(self, key: Hashable, version: Hashable = None) -> Any:
        """The live value under *key*, or :data:`MISSING`.

        An entry stored under a different *version* is stale: it is
        removed, counted as an invalidation, and the lookup is a miss.
        A hit refreshes the entry's recency.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return MISSING
        if entry.version != version:
            self._remove(key, entry)
            self.stats.invalidations += 1
            self.stats.misses += 1
            return MISSING
        # refresh recency: move to the most-recent end
        del self._entries[key]
        self._entries[key] = entry
        self.stats.hits += 1
        return entry.value

    # ------------------------------------------------------------- writes

    def put(self, key: Hashable, value: Any, version: Hashable = None) -> None:
        """Store *value* under *key* at *version*, evicting LRU entries
        as needed to respect both bounds."""
        size = self._sizer(value) if self.max_bytes is not None else 0
        if self.max_bytes is not None and size > self.max_bytes:
            return  # would evict everything and still not fit
        old = self._entries.get(key)
        if old is not None:
            self._remove(key, old)
        self._entries[key] = _Entry(version, value, size)
        self._bytes += size
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None and self._bytes > self.max_bytes
        ):
            lru_key = next(iter(self._entries))
            self._remove(lru_key, self._entries[lru_key])
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True iff it existed."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        self._remove(key, entry)
        self.stats.invalidations += 1
        return True

    def clear(self) -> int:
        """Drop every entry (each counted as an invalidation); returns
        the number dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._bytes = 0
        self.stats.invalidations += dropped
        return dropped

    def _remove(self, key: Hashable, entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= entry.size

    def __repr__(self):
        bound = f"{self.max_entries} entries"
        if self.max_bytes is not None:
            bound += f", {self.max_bytes} bytes"
        return f"LRUCache({len(self)} live, bound {bound}, {self.stats!r})"
