"""repro.cache — versioned, invalidation-aware caching.

The subsystem that makes repeated précis traffic cheap *and* correct
under live updates. The old ad-hoc plan cache was documented as "never
coherent with graph mutation"; this package replaces it with:

* :class:`LRUCache` — a bounded (entries and/or bytes) LRU whose
  entries carry the validity token they were computed under, with
  hit / miss / eviction / invalidation counters
  (:class:`CacheStats`);
* :mod:`~repro.cache.versions` — validity tokens composed from the
  monotonic epochs on :class:`~repro.relational.database.Database`
  (``data_epoch``), :class:`~repro.text.inverted_index.InvertedIndex`
  (``epoch``) and :class:`~repro.graph.schema_graph.SchemaGraph`
  (``version``), so mutation invalidates by construction — there is no
  notification to lose;
* :class:`EngineCache` / :class:`CacheConfig` — the two layers wired
  into :class:`~repro.core.engine.PrecisEngine`: a plan cache keyed by
  canonical (sorted relations, degree) and an opt-in answer cache that
  short-circuits ``ask`` for repeated queries.

Quickstart::

    from repro import CacheConfig, PrecisEngine

    engine = PrecisEngine(db, cache=CacheConfig(answers=True))
    engine.ask('"Woody Allen"')   # cold: runs the pipeline
    engine.ask('"Woody Allen"')   # warm: served from the answer cache
    engine.cache.stats()          # {"plans": {...}, "answers": {...}}

See ``docs/caching.md`` for the coherence contract.
"""

from .engine_cache import (
    CacheConfig,
    EngineCache,
    answer_key,
    answer_size_estimate,
    plan_key,
)
from .lru import MISSING, CacheStats, LRUCache
from .versions import answer_token, plan_token

__all__ = [
    "LRUCache",
    "CacheStats",
    "MISSING",
    "CacheConfig",
    "EngineCache",
    "plan_key",
    "answer_key",
    "answer_size_estimate",
    "plan_token",
    "answer_token",
]
