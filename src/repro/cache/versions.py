"""Cache validity tokens composed from engine-state epochs.

Coherence contract
------------------

Every state a cached plan or answer depends on exposes a monotonically
increasing counter:

* :attr:`repro.relational.database.Database.data_epoch` — bumped by
  every tuple insert / delete / in-place update reaching any relation
  of the database (the :class:`~repro.relational.relation.Relation`
  façade notifies its owner on each write);
* :attr:`repro.text.inverted_index.InvertedIndex.epoch` — bumped by
  ``add_value`` / ``remove_value`` (and therefore by every
  :class:`~repro.text.maintenance.SynchronizedWriter` write);
* :attr:`repro.graph.schema_graph.SchemaGraph.version` — bumped by
  every structural or weight mutation of the graph.

A *validity token* is the tuple of the counters a cached artifact read
from. Cache entries store the token they were computed under; a lookup
presents the current token, and any difference makes the entry stale
(see :meth:`repro.cache.lru.LRUCache.get`). Staleness is therefore
impossible to miss by construction: there is no invalidation message to
lose — mutation changes the token, and the next lookup discards the
entry.

Result-schema plans depend only on the graph; full answers additionally
depend on the database contents and the inverted index.
"""

from __future__ import annotations

from typing import Hashable

__all__ = ["plan_token", "answer_token"]


def _counter(obj, attribute: str) -> int:
    """Read a counter, tolerating objects predating the epoch contract
    (a third-party graph/index without the attribute never invalidates
    — callers decide whether that is acceptable)."""
    return getattr(obj, attribute, 0) if obj is not None else 0


def plan_token(graph) -> Hashable:
    """Validity token for a cached result schema: the graph version."""
    return (_counter(graph, "version"),)


def answer_token(db, index, graph) -> Hashable:
    """Validity token for a cached answer: (data, index, graph) epochs."""
    return (
        _counter(db, "data_epoch"),
        _counter(index, "epoch"),
        _counter(graph, "version"),
    )
