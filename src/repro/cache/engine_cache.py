"""Engine-facing cache layers: configuration, canonical keys, stats.

Two layers sit in front of the précis pipeline (see
:class:`repro.core.engine.PrecisEngine`):

* the **plan cache** memoizes result schemas — the §5.1 Result Schema
  Generator output — keyed by the *canonical* (sorted token relations,
  degree constraint) pair, valid for one graph version;
* the **answer cache** (opt-in) memoizes whole
  :class:`~repro.core.answer.PrecisAnswer` objects keyed by the full
  query signature, valid for one (data, index, graph) epoch triple —
  a hit short-circuits ``ask`` entirely.

Both are :class:`~repro.cache.lru.LRUCache` instances, so hit / miss /
eviction / invalidation counters come for free and mutation-driven
invalidation follows the token contract of :mod:`repro.cache.versions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from .lru import LRUCache

__all__ = [
    "CacheConfig",
    "EngineCache",
    "plan_key",
    "answer_key",
    "answer_size_estimate",
]


# ------------------------------------------------------------------ keys


def plan_key(
    token_relations: Iterable[str], degree, fingerprint: Optional[str] = None
) -> tuple:
    """Canonical plan-cache key.

    Token relations are *sorted and deduplicated*: the result schema is
    a function of the relation **set** (plus the degree constraint), so
    ``("movies", "actors")`` and ``("actors", "movies")`` must share one
    entry — the discovery-ordered key of the old ad-hoc cache treated
    them as distinct and answered the same query twice.

    *fingerprint* is the canonical weight fingerprint of the graph the
    plan is generated over (:func:`repro.graph.weight_fingerprint`):
    ``None`` for the engine's base graph, the overlay digest for a
    tenant's :class:`~repro.graph.overlay.WeightOverlay`. Tenants whose
    effective weights coincide therefore share one plan entry; the base
    graph and every distinct overlay get disjoint entries in the same
    cache.
    """
    return (tuple(sorted(set(token_relations))), degree, fingerprint)


def answer_key(
    query,
    degree,
    cardinality,
    strategy: str,
    fingerprint: Optional[str],
    translate: bool,
    path_scoped: bool,
) -> tuple:
    """Canonical answer-cache key for one ``ask`` signature.

    *fingerprint* is the canonical weight fingerprint of the effective
    graph (profile weights + query-time overrides flattened into one
    overlay — see :func:`repro.graph.weight_fingerprint`). Keying on
    the fingerprint instead of the profile identity means (a) a mutated
    registered profile can never serve its old answer (its weights, and
    hence the digest, changed) and (b) two tenants whose overlays
    coincide share one cached answer, while an ε-different weight
    splits them. Profile default constraints are already resolved into
    *degree*/*cardinality* by the engine before this is called. Raises
    TypeError if any component is unhashable (callers treat that as
    uncacheable).
    """
    key = (
        query.tokens,
        degree,
        cardinality,
        strategy,
        fingerprint,
        bool(translate),
        bool(path_scoped),
    )
    hash(key)  # surface unhashable constraints to the caller
    return key


def answer_size_estimate(answer) -> int:
    """Rough in-memory footprint of one cached answer, in bytes.

    Deliberately cheap and deliberately approximate: ~128 bytes per
    result tuple plus the narrative text. Used by the answer cache's
    ``max_bytes`` bound to keep huge result databases from monopolizing
    the cache — not for exact memory accounting.
    """
    size = 256 + answer.total_tuples() * 128
    if answer.narrative:
        size += 2 * len(answer.narrative)
    return size


# ------------------------------------------------------------------ config


@dataclass(frozen=True)
class CacheConfig:
    """What to cache and how much of it to keep."""

    #: memoize result schemas (cheap to hold, safe under the epoch contract)
    plans: bool = True
    #: memoize whole answers (opt-in: answers can be large)
    answers: bool = False
    plan_entries: int = 256
    answer_entries: int = 128
    #: optional byte budget for the answer cache
    #: (see :func:`answer_size_estimate`)
    answer_bytes: Optional[int] = None

    def __post_init__(self):
        if self.plan_entries <= 0:
            raise ValueError("plan_entries must be positive")
        if self.answer_entries <= 0:
            raise ValueError("answer_entries must be positive")


class EngineCache:
    """The two cache layers of one :class:`PrecisEngine`, plus stats."""

    def __init__(self, config: Optional[CacheConfig] = None):
        self.config = config or CacheConfig()
        self.plans: Optional[LRUCache] = (
            LRUCache(self.config.plan_entries) if self.config.plans else None
        )
        self.answers: Optional[LRUCache] = (
            LRUCache(
                self.config.answer_entries,
                max_bytes=self.config.answer_bytes,
                sizer=answer_size_estimate,
            )
            if self.config.answers
            else None
        )

    def clear(self) -> int:
        """Drop every cached plan and answer; returns entries dropped."""
        dropped = 0
        for cache in (self.plans, self.answers):
            if cache is not None:
                dropped += cache.clear()
        return dropped

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-layer counter snapshot: ``{"plans": {...}, "answers": {...}}``."""
        out: dict[str, dict[str, int]] = {}
        if self.plans is not None:
            out["plans"] = self.plans.stats.as_dict()
        if self.answers is not None:
            out["answers"] = self.answers.stats.as_dict()
        return out

    def __repr__(self):
        layers = []
        if self.plans is not None:
            layers.append(f"plans={len(self.plans)}")
        if self.answers is not None:
            layers.append(f"answers={len(self.answers)}")
        return f"EngineCache({', '.join(layers) or 'disabled'})"
