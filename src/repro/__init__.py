"""repro — Précis queries over relational databases.

A complete, from-scratch reproduction of

    G. Koutrika, A. Simitsis, Y. Ioannidis.
    "Précis: The Essence of a Query Answer." ICDE 2006.

A *précis query* is a set of free-form tokens; its answer is not a flat
ranked tuple list but an entire logically connected sub-database — plus,
optionally, a natural-language synthesis. The package layout:

=====================  =====================================================
``repro.relational``   in-memory relational engine (the Oracle substitute)
``repro.text``         tokenizer + positional inverted index
``repro.graph``        weighted database schema graph and paths
``repro.core``         constraints, the two generators, the engine facade
``repro.personalization``  user weight profiles
``repro.nlg``          template language and translator
``repro.baselines``    DISCOVER- and BANKS-style keyword search comparators
``repro.datasets``     the paper's movies schema + synthetic generators
``repro.bench``        §6 experiment harness helpers
``repro.obs``          tracing, service metrics + exporters, EXPLAIN records
``repro.cache``        versioned, invalidation-aware plan/answer caching
=====================  =====================================================

Quickstart::

    from repro import PrecisEngine, WeightThreshold, MaxTuplesPerRelation
    from repro.datasets import (
        paper_instance, movies_graph, movies_translation_spec,
    )
    from repro.nlg import Translator

    engine = PrecisEngine(
        paper_instance(),
        graph=movies_graph(),
        translator=Translator(movies_translation_spec()),
    )
    answer = engine.ask(
        '"Woody Allen"',
        degree=WeightThreshold(0.9),
        cardinality=MaxTuplesPerRelation(3),
    )
    print(answer.narrative)
"""

from .cache import CacheConfig, EngineCache
from .core import (
    CompositeCardinality,
    CompositeDegree,
    MaxPathLength,
    MaxTotalTuples,
    MaxTuplesPerRelation,
    PrecisAnswer,
    PrecisEngine,
    PrecisQuery,
    ResultSchema,
    TopRProjections,
    Unlimited,
    WeightThreshold,
    cardinality_for_response_time,
)
from .graph import SchemaGraph, graph_from_schema
from .obs import (
    NULL_TRACER,
    EngineMetrics,
    InMemorySink,
    MetricsRegistry,
    QueryStats,
    Tracer,
    prometheus_text,
)
from .personalization import Profile
from .relational import Database, DatabaseSchema

__version__ = "1.0.0"

__all__ = [
    "PrecisEngine",
    "PrecisQuery",
    "PrecisAnswer",
    "ResultSchema",
    "TopRProjections",
    "WeightThreshold",
    "MaxPathLength",
    "CompositeDegree",
    "MaxTotalTuples",
    "MaxTuplesPerRelation",
    "CompositeCardinality",
    "Unlimited",
    "cardinality_for_response_time",
    "SchemaGraph",
    "graph_from_schema",
    "Profile",
    "Database",
    "DatabaseSchema",
    "CacheConfig",
    "EngineCache",
    "Tracer",
    "NULL_TRACER",
    "InMemorySink",
    "QueryStats",
    "EngineMetrics",
    "MetricsRegistry",
    "prometheus_text",
    "__version__",
]
