"""A BANKS-style keyword-search baseline over the *data graph*.

BANKS (Bhalotia et al., ICDE'02 — reference [5] of the paper) models the
database as a graph whose nodes are tuples and whose edges connect tuples
related by foreign keys, then answers a keyword query with rooted
*connection trees*: a root tuple with a path to at least one matching
tuple per keyword, ranked by total path cost (smaller trees first).

We implement the backward-expanding search: one Dijkstra frontier grows
from each keyword's set of matching tuples along reversed edges; a node
reached by *every* frontier becomes the root of an answer tree.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

from ..graph.schema_graph import SchemaGraph
from ..relational.database import Database
from ..text.inverted_index import InvertedIndex, build_index

__all__ = ["TupleNode", "ConnectionTree", "BanksSearch"]


#: a node of the data graph: one tuple of one relation
TupleNode = tuple[str, int]


@dataclass
class ConnectionTree:
    """One BANKS answer: a root joining paths to each keyword group."""

    root: TupleNode
    #: per keyword, the path (list of nodes) from root to a matching tuple
    paths: dict[str, list[TupleNode]]
    cost: float

    @property
    def nodes(self) -> set[TupleNode]:
        out = {self.root}
        for path in self.paths.values():
            out.update(path)
        return out

    @property
    def size(self) -> int:
        return len(self.nodes)

    def __repr__(self):
        return (
            f"ConnectionTree(root={self.root[0]}#{self.root[1]}, "
            f"cost={self.cost:g}, {self.size} tuples)"
        )


class BanksSearch:
    """Backward-expanding keyword search on the tuple-level data graph."""

    def __init__(
        self,
        db: Database,
        graph: SchemaGraph,
        index: Optional[InvertedIndex] = None,
    ):
        self.db = db
        self.graph = graph
        self.index = index if index is not None else build_index(db)
        self._adjacency: Optional[dict[TupleNode, list[tuple[TupleNode, float]]]] = None

    # --------------------------------------------------------------- graph

    def _edge_cost(self, weight: float) -> float:
        """Schema-graph weight (significance) → traversal cost."""
        return 2.0 - weight  # heavier edges are cheaper to cross

    def data_graph(self) -> dict[TupleNode, list[tuple[TupleNode, float]]]:
        """Build (lazily, once) the undirected tuple-level graph."""
        if self._adjacency is not None:
            return self._adjacency
        adjacency: dict[TupleNode, list[tuple[TupleNode, float]]] = {}
        for relation in self.db:
            for tid in relation.tids():
                adjacency[(relation.name, tid)] = []
        for edge in self.graph.all_join_edges():
            # each undirected tuple pair appears once per schema direction;
            # keep the cheaper cost by processing both directions
            source = self.db.relation(edge.source)
            target = self.db.relation(edge.target)
            cost = self._edge_cost(edge.weight)
            src_pos = source.schema.position(edge.source_attribute)
            for tid in source.tids():
                value = source.fetch(tid)[src_pos]
                if value is None:
                    continue
                for other in target.lookup(edge.target_attribute, value):
                    adjacency[(edge.source, tid)].append(
                        ((edge.target, other), cost)
                    )
        self._adjacency = adjacency
        return adjacency

    # --------------------------------------------------------------- search

    def search(
        self,
        keywords: Sequence[str],
        top_k: int = 10,
        max_cost: float = 20.0,
    ) -> list[ConnectionTree]:
        """Top-k connection trees for *keywords* (AND semantics)."""
        groups: list[set[TupleNode]] = []
        for keyword in keywords:
            nodes: set[TupleNode] = set()
            for occurrence in self.index.lookup_token(keyword):
                nodes.update(
                    (occurrence.relation, tid) for tid in occurrence.tids
                )
            if not nodes:
                return []
            groups.append(nodes)

        adjacency = self.data_graph()
        n_groups = len(groups)

        # one Dijkstra per keyword group
        dist: list[dict[TupleNode, float]] = [dict() for __ in range(n_groups)]
        parent: list[dict[TupleNode, Optional[TupleNode]]] = [
            dict() for __ in range(n_groups)
        ]
        heap: list[tuple[float, int, int, TupleNode]] = []
        counter = 0
        for gi, nodes in enumerate(groups):
            for node in sorted(nodes):
                dist[gi][node] = 0.0
                parent[gi][node] = None
                heapq.heappush(heap, (0.0, counter, gi, node))
                counter += 1

        answers: dict[TupleNode, ConnectionTree] = {}
        while heap:
            cost, __, gi, node = heapq.heappop(heap)
            if cost > dist[gi].get(node, float("inf")):
                continue
            if cost > max_cost:
                break
            # is `node` now reached by all groups?
            if node not in answers and all(
                node in dist[g] for g in range(n_groups)
            ):
                answers[node] = self._build_tree(
                    node, keywords, dist, parent
                )
                if len(answers) >= top_k * 3:
                    break
            for neighbour, edge_cost in adjacency.get(node, ()):
                new_cost = cost + edge_cost
                if new_cost < dist[gi].get(neighbour, float("inf")):
                    dist[gi][neighbour] = new_cost
                    parent[gi][neighbour] = node
                    heapq.heappush(heap, (new_cost, counter, gi, neighbour))
                    counter += 1

        trees = sorted(answers.values(), key=lambda t: (t.cost, t.root))
        return self._deduplicate(trees)[:top_k]

    def _build_tree(
        self,
        root: TupleNode,
        keywords: Sequence[str],
        dist: list[dict[TupleNode, float]],
        parent: list[dict[TupleNode, Optional[TupleNode]]],
    ) -> ConnectionTree:
        paths: dict[str, list[TupleNode]] = {}
        total = 0.0
        for gi, keyword in enumerate(keywords):
            path = [root]
            node = root
            while parent[gi].get(node) is not None:
                node = parent[gi][node]  # type: ignore[assignment]
                path.append(node)
            paths[keyword] = path
            total += dist[gi][root]
        return ConnectionTree(root=root, paths=paths, cost=total)

    @staticmethod
    def _deduplicate(trees: list[ConnectionTree]) -> list[ConnectionTree]:
        """Drop trees whose node set duplicates a cheaper tree's."""
        seen: set[frozenset[TupleNode]] = set()
        out = []
        for tree in trees:
            key = frozenset(tree.nodes)
            if key not in seen:
                seen.add(key)
                out.append(tree)
        return out
