"""Baseline keyword-search systems the paper positions against.

* :class:`~repro.baselines.discover.DiscoverSearch` — schema-graph
  candidate networks returning flattened joined rows (DISCOVER /
  DBXplorer style, references [7, 8] of the paper);
* :class:`~repro.baselines.banks.BanksSearch` — data-graph backward
  expanding search returning rooted connection trees (BANKS style,
  reference [5]).

Both share the précis system's inverted index and schema graph, so the
comparison isolates the *answer model* — flat rows / tuple trees vs an
entire sub-database.
"""

from .banks import BanksSearch, ConnectionTree
from .discover import CandidateNetwork, DiscoverSearch, JoinedResult

__all__ = [
    "DiscoverSearch",
    "CandidateNetwork",
    "JoinedResult",
    "BanksSearch",
    "ConnectionTree",
]
