"""A DISCOVER/DBXplorer-style keyword-search baseline.

The related-work systems the paper positions against (Hristidis &
Papakonstantinou's DISCOVER, VLDB'02; Agrawal, Chaudhuri & Das's
DBXplorer, ICDE'02) answer a keyword query with *flattened rows*: they
enumerate **candidate networks** — minimal connected sub-trees of the
schema join graph whose relations collectively cover all keywords — then
execute each network as a join restricted to the keyword-matching tuples,
ranking answers by the number of joins (fewer = better).

This module implements that pipeline over our engine so the précis system
has a real comparator: same inverted index, same schema graph, radically
different answer shape (tuples, not a sub-database).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..graph.schema_graph import SchemaGraph
from ..relational.database import Database
from ..relational.row import Row
from ..text.inverted_index import InvertedIndex

__all__ = ["CandidateNetwork", "JoinedResult", "DiscoverSearch"]


@dataclass(frozen=True)
class CandidateNetwork:
    """A connected set of relations covering all keywords.

    ``assignment`` maps each keyword to the relation (within the network)
    whose tuples must contain it.
    """

    relations: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]  # undirected (a, b) with a < b
    assignment: tuple[tuple[str, str], ...]  # (keyword, relation)

    @property
    def size(self) -> int:
        return len(self.relations)

    @property
    def joins(self) -> int:
        return len(self.edges)

    def __repr__(self):
        return (
            f"CandidateNetwork({' ⋈ '.join(self.relations)}, "
            f"{self.joins} joins)"
        )


@dataclass
class JoinedResult:
    """One flattened answer row: a tuple per network relation."""

    network: CandidateNetwork
    rows: dict[str, Row]
    #: DISCOVER-style score: fewer joins rank higher
    score: int = field(init=False)
    #: IR-style score (reference [9]): higher TF·IDF ranks higher;
    #: populated when the search runs with ranking="ir"
    ir_score: float = 0.0

    def __post_init__(self):
        self.score = self.network.joins

    def flat(self) -> dict[str, object]:
        out: dict[str, object] = {}
        for relation, row in self.rows.items():
            for attr, value in zip(row.attributes, row.values):
                out[f"{relation}.{attr}"] = value
        return out


class DiscoverSearch:
    """Keyword search returning ranked joined tuples (the baseline)."""

    def __init__(
        self,
        db: Database,
        graph: SchemaGraph,
        index: Optional[InvertedIndex] = None,
        max_network_size: int = 4,
        ranking: str = "joins",
    ):
        """*ranking* picks the answer order: ``"joins"`` (DISCOVER /

        DBXplorer: fewer joins first) or ``"ir"`` (reference [9]:
        TF·IDF relevance of the keyword tuples, descending)."""
        from ..text.inverted_index import build_index

        if ranking not in ("joins", "ir"):
            raise ValueError(f"unknown ranking {ranking!r}")
        self.db = db
        self.graph = graph
        self.index = index if index is not None else build_index(db)
        self.max_network_size = max_network_size
        self.ranking = ranking
        self._scorer = None
        if ranking == "ir":
            from ..text.scoring import TfIdfScorer

            self._scorer = TfIdfScorer(self.index)
        # undirected adjacency over the schema graph's join edges
        self._adjacent: dict[str, set[str]] = {
            name: set() for name in graph.relations
        }
        for edge in graph.all_join_edges():
            self._adjacent[edge.source].add(edge.target)
            self._adjacent[edge.target].add(edge.source)

    # ---------------------------------------------------------------- search

    def search(
        self, keywords: Sequence[str], limit: Optional[int] = 20
    ) -> list[JoinedResult]:
        """All joined answers for *keywords*, ranked by ascending joins."""
        matches = self._match_keywords(keywords)
        if any(not relations for relations in matches.values()):
            return []  # some keyword matches nothing: no answer (AND)
        results: list[JoinedResult] = []
        for network in self.candidate_networks(matches):
            results.extend(self._execute(network, matches))
        if self.ranking == "ir":
            assert self._scorer is not None
            for result in results:
                result.ir_score = sum(
                    self._scorer.score_tuple(
                        keyword, relation, result.rows[relation].tid
                    )
                    for keyword, relation in result.network.assignment
                )
            results.sort(
                key=lambda r: (-r.ir_score, r.score, tuple(sorted(r.rows)))
            )
        else:
            results.sort(key=lambda r: (r.score, tuple(sorted(r.rows))))
        return results[:limit] if limit is not None else results

    def _match_keywords(
        self, keywords: Sequence[str]
    ) -> dict[str, dict[str, set[int]]]:
        """keyword -> relation -> matching tids."""
        out: dict[str, dict[str, set[int]]] = {}
        for keyword in keywords:
            per_relation: dict[str, set[int]] = {}
            for occurrence in self.index.lookup_token(keyword):
                per_relation.setdefault(occurrence.relation, set()).update(
                    occurrence.tids
                )
            out[keyword] = per_relation
        return out

    # ----------------------------------------------------- network generation

    def candidate_networks(
        self, matches: dict[str, dict[str, set[int]]]
    ) -> list[CandidateNetwork]:
        """Enumerate minimal connected relation sets covering all keywords.

        Exhaustive over connected subsets up to ``max_network_size``
        relations (fine for schema graphs of tens of relations — the
        published systems use the same bounded enumeration).
        """
        keywords = list(matches)
        keyword_relations = {
            kw: set(per_relation) for kw, per_relation in matches.items()
        }
        networks: list[CandidateNetwork] = []
        seen: set[tuple[str, ...]] = set()
        for subset in self._connected_subsets():
            key = tuple(sorted(subset))
            if key in seen:
                continue
            seen.add(key)
            # every keyword must be assignable to some relation in subset
            options = [
                sorted(keyword_relations[kw] & set(subset)) for kw in keywords
            ]
            if any(not opts for opts in options):
                continue
            if not self._is_minimal(set(subset), keyword_relations):
                continue
            edges = self._spanning_edges(key)
            for combo in itertools.product(*options):
                networks.append(
                    CandidateNetwork(
                        relations=key,
                        edges=edges,
                        assignment=tuple(zip(keywords, combo)),
                    )
                )
        networks.sort(key=lambda n: (n.joins, n.relations))
        return networks

    def _connected_subsets(self) -> Iterable[frozenset[str]]:
        """All connected relation subsets of size ≤ max_network_size."""
        found: set[frozenset[str]] = set()
        frontier = [frozenset({name}) for name in self.graph.relations]
        found.update(frontier)
        for __ in range(self.max_network_size - 1):
            new: list[frozenset[str]] = []
            for subset in frontier:
                reachable = set().union(
                    *(self._adjacent[name] for name in subset)
                )
                for neighbour in reachable - set(subset):
                    grown = subset | {neighbour}
                    if grown not in found:
                        found.add(grown)
                        new.append(grown)
            frontier = new
        return sorted(found, key=lambda s: (len(s), tuple(sorted(s))))

    def _is_minimal(
        self, subset: set[str], keyword_relations: dict[str, set[str]]
    ) -> bool:
        """A network is minimal if dropping any relation either breaks

        coverage or disconnects the remainder."""
        if len(subset) == 1:
            return True
        for relation in subset:
            rest = subset - {relation}
            covers = all(
                keyword_relations[kw] & rest for kw in keyword_relations
            )
            if covers and self._is_connected(rest):
                return False
        return True

    def _is_connected(self, relations: set[str]) -> bool:
        if not relations:
            return False
        start = next(iter(relations))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in self._adjacent[node] & relations:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen == relations

    def _spanning_edges(
        self, relations: tuple[str, ...]
    ) -> tuple[tuple[str, str], ...]:
        """A spanning tree of the subset (join graph restricted to it)."""
        included = {relations[0]}
        edges: list[tuple[str, str]] = []
        pending = set(relations[1:])
        while pending:
            progressed = False
            for node in sorted(pending):
                anchors = self._adjacent[node] & included
                if anchors:
                    anchor = sorted(anchors)[0]
                    edges.append(tuple(sorted((anchor, node))))  # type: ignore[arg-type]
                    included.add(node)
                    pending.discard(node)
                    progressed = True
                    break
            if not progressed:  # pragma: no cover - subsets are connected
                break
        return tuple(edges)

    # ------------------------------------------------------------- execution

    def _join_attrs(self, a: str, b: str) -> Optional[tuple[str, str]]:
        """Join attributes for the undirected pair (a, b)."""
        if self.graph.has_join(a, b):
            edge = self.graph.join_edge(a, b)
            return edge.source_attribute, edge.target_attribute
        if self.graph.has_join(b, a):
            edge = self.graph.join_edge(b, a)
            return edge.target_attribute, edge.source_attribute
        return None

    def _execute(
        self,
        network: CandidateNetwork,
        matches: dict[str, dict[str, set[int]]],
    ) -> list[JoinedResult]:
        """Nested-loop execution of one candidate network."""
        assignment = dict(network.assignment)
        required: dict[str, set[int]] = {}
        for keyword, relation in assignment.items():
            tids = matches[keyword].get(relation, set())
            required[relation] = (
                required[relation] & tids if relation in required else set(tids)
            )
        if any(not tids for tids in required.values()):
            return []

        order = list(network.relations)
        # visit relations in spanning-tree order starting from a keyword one
        order.sort(key=lambda r: (r not in required, r))
        ordered = self._tree_order(order, network)

        results: list[JoinedResult] = []

        def candidates(relation: str, binding: dict[str, Row]) -> list[Row]:
            rel = self.db.relation(relation)
            tid_filter = required.get(relation)
            probes = []
            for bound_name, bound_row in binding.items():
                attrs = self._join_attrs(bound_name, relation)
                if attrs is not None:
                    probes.append((attrs[1], bound_row[attrs[0]]))
            if probes:
                tids: Optional[set[int]] = None
                for attribute, value in probes:
                    found = rel.lookup(attribute, value)
                    tids = found if tids is None else tids & found
                assert tids is not None
            else:
                tids = set(rel.tids())
            if tid_filter is not None:
                tids &= tid_filter
            return rel.fetch_many(sorted(tids))

        def extend(depth: int, binding: dict[str, Row]) -> None:
            if depth == len(ordered):
                results.append(JoinedResult(network, dict(binding)))
                return
            relation = ordered[depth]
            for row in candidates(relation, binding):
                binding[relation] = row
                extend(depth + 1, binding)
                del binding[relation]

        extend(0, {})
        return results

    def _tree_order(
        self, preferred: list[str], network: CandidateNetwork
    ) -> list[str]:
        """Order relations so each (after the first) joins a previous one."""
        adjacency: dict[str, set[str]] = {r: set() for r in network.relations}
        for a, b in network.edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        ordered = [preferred[0]]
        remaining = set(network.relations) - {preferred[0]}
        while remaining:
            nxt = next(
                (
                    r
                    for r in preferred
                    if r in remaining and adjacency[r] & set(ordered)
                ),
                None,
            )
            if nxt is None:
                nxt = sorted(remaining)[0]
            ordered.append(nxt)
            remaining.discard(nxt)
        return ordered
