"""Workload builders for the §6 experiments.

The paper's evaluation machinery, rebuilt:

* Figure 7 needs query tokens "contained in a single relation R_o" and
  "20 randomly generated sets of weights" — see
  :func:`tokens_in_single_relation` and
  :func:`repro.graph.weights.random_weight_assignments`;
* Figures 8–9 need "sets of 4 relations, making sure that there is no
  relation in any set that does not join with another relation of this
  set" and, for each start relation, "5 random sets of tuples as the
  seed" — see :func:`connected_relation_sets` and :func:`random_seed_tids`;
* Figure 9 scales the number of relations ``n_R`` in the answer from 1
  to 8, which exceeds the movies schema, so a synthetic **chain
  database** ``R1 → R2 → … → Rn`` with controllable fan-out provides the
  substrate (:func:`chain_database` / :func:`chain_graph`) — every join
  is 1-to-n with the same fan-out, which makes the NaïveQ/RoundRobin
  comparison clean.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..graph.schema_graph import SchemaGraph
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import (
    Column,
    DatabaseSchema,
    ForeignKey,
    RelationSchema,
)
from ..text.inverted_index import InvertedIndex

__all__ = [
    "tokens_in_single_relation",
    "connected_relation_sets",
    "random_seed_tids",
    "chain_schema",
    "chain_database",
    "chain_graph",
    "random_schema_graph",
]


def tokens_in_single_relation(
    index: InvertedIndex, relation: str, limit: int = 50
) -> list[str]:
    """Words whose *only* occurrences lie in the given relation.

    The Figure 7 setup requires tokens contained in a single relation
    ``R_o``; this mines the inverted index for suitable words.
    """
    out = []
    # Walk the vocabulary through the public lookup API per word found
    # in the relation's attributes.
    words = sorted(index._postings)  # noqa: SLF001 - intimate by design
    for word in words:
        occurrences = index.lookup_word(word)
        relations = {occ.relation for occ in occurrences}
        if relations == {relation}:
            out.append(word)
            if len(out) >= limit:
                break
    return out


def connected_relation_sets(
    graph: SchemaGraph,
    size: int,
    count: int,
    seed: int = 0,
) -> list[tuple[str, ...]]:
    """Random connected relation subsets of the join graph.

    Mirrors the paper's "sets of 4 relations … no relation in any set
    that does not join with another relation of this set". Sampling is
    by random connected growth; duplicates are filtered; raises if the
    graph cannot host a connected set of the requested size.
    """
    rng = random.Random(seed)
    adjacency: dict[str, set[str]] = {name: set() for name in graph.relations}
    for edge in graph.all_join_edges():
        adjacency[edge.source].add(edge.target)
        adjacency[edge.target].add(edge.source)

    found: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    attempts = 0
    max_attempts = max(200, count * 50)
    while len(found) < count and attempts < max_attempts:
        attempts += 1
        start = rng.choice(list(graph.relations))
        subset = {start}
        while len(subset) < size:
            frontier = sorted(
                set().union(*(adjacency[r] for r in subset)) - subset
            )
            if not frontier:
                break
            subset.add(rng.choice(frontier))
        if len(subset) != size:
            continue
        key = tuple(sorted(subset))
        if key not in seen:
            seen.add(key)
            found.append(key)
    if not found:
        raise ValueError(
            f"no connected relation set of size {size} exists in the graph"
        )
    # if the graph has fewer distinct sets than requested, cycle them
    while len(found) < count:
        found.append(found[len(found) % len(seen)])
    return found


def random_seed_tids(
    db: Database, relation: str, count: int, rng: random.Random
) -> list[int]:
    """A random sample of tuple ids from *relation* (the §6 seeds)."""
    tids = list(db.relation(relation).tids())
    if not tids:
        return []
    if len(tids) <= count:
        return tids
    return sorted(rng.sample(tids, count))


# ------------------------------------------------------------------ chain


def chain_schema(n_relations: int) -> DatabaseSchema:
    """``R1(ID, VAL) ← R2(ID, REF, VAL) ← … ← Rn``: each ``R_{i+1}.REF``

    references ``R_i.ID``, so the join ``R_i → R_{i+1}`` is 1-to-n."""
    if n_relations < 1:
        raise ValueError("need at least one relation")
    relations = []
    fks = []
    for i in range(1, n_relations + 1):
        columns = [
            Column("ID", DataType.INT, nullable=False),
            Column("VAL", DataType.TEXT),
        ]
        if i > 1:
            columns.insert(1, Column("REF", DataType.INT, nullable=False))
            fks.append(ForeignKey(f"R{i}", "REF", f"R{i - 1}", "ID"))
        relations.append(RelationSchema(f"R{i}", columns, primary_key="ID"))
    return DatabaseSchema(relations, fks)


def chain_database(
    n_relations: int,
    roots: int = 20,
    fanout: int = 4,
    seed: int = 0,
    max_tuples_per_relation: Optional[int] = 20000,
    backend=None,
) -> Database:
    """Populate a chain: ``roots`` tuples in R1, each tuple of ``R_i``

    fanning out to ``fanout`` children in ``R_{i+1}`` (capped so deep
    chains don't explode combinatorially: once a level reaches the cap,
    children are spread round-robin over the parents)."""
    if fanout < 1 or roots < 1:
        raise ValueError("roots and fanout must be positive")
    rng = random.Random(seed)
    schema = chain_schema(n_relations)
    data: dict[str, list[dict]] = {}
    next_id = 1
    parents = list(range(1, roots + 1))
    data["R1"] = [
        {"ID": pid, "VAL": f"alpha{pid} token{rng.randint(0, 9)}"}
        for pid in parents
    ]
    next_id = roots + 1
    for i in range(2, n_relations + 1):
        desired = len(parents) * fanout
        if max_tuples_per_relation is not None:
            desired = min(desired, max_tuples_per_relation)
        rows = []
        ids = []
        for j in range(desired):
            ref = parents[j % len(parents)]
            rows.append(
                {
                    "ID": next_id,
                    "REF": ref,
                    "VAL": f"level{i} item{next_id}",
                }
            )
            ids.append(next_id)
            next_id += 1
        data[f"R{i}"] = rows
        parents = ids
    return Database.from_rows(schema, data, backend=backend)


def random_schema_graph(
    n_relations: int = 30,
    attrs_per_relation: int = 8,
    extra_joins: int = 15,
    seed: int = 0,
) -> SchemaGraph:
    """A random connected schema graph, IMDB-dump-scale.

    The paper's Figure 7 sweeps the degree constraint up to large
    attribute counts over the IMDB schema; the 7-relation movies schema
    saturates too early, so this builds a synthetic graph of
    ``n_relations × attrs_per_relation`` attribute nodes: a random
    spanning tree (guaranteeing connectivity) plus ``extra_joins``
    random chords, all edges in both directions. Weights default to 0.5
    everywhere; the Figure 7 harness overlays random weight sets.
    """
    if n_relations < 1 or attrs_per_relation < 1:
        raise ValueError("need at least one relation and one attribute")
    rng = random.Random(seed)
    graph = SchemaGraph()
    names = [f"T{i}" for i in range(1, n_relations + 1)]
    for name in names:
        graph.add_relation(name)
        for j in range(1, attrs_per_relation + 1):
            graph.add_attribute(name, f"A{j}", 0.5)

    def connect(a: str, b: str) -> None:
        if not graph.has_join(a, b):
            graph.add_join(a, b, "A1", "A1", 0.5)
        if not graph.has_join(b, a):
            graph.add_join(b, a, "A1", "A1", 0.5)

    for i in range(1, n_relations):
        connect(names[i], names[rng.randrange(i)])  # spanning tree
    for __ in range(extra_joins):
        a, b = rng.sample(names, 2)
        connect(a, b)
    return graph


def chain_graph(
    n_relations: int,
    join_weight: float = 1.0,
    projection_weight: float = 1.0,
) -> SchemaGraph:
    """Schema graph for the chain, forward join edges only, flat weights

    (so a weight-threshold degree constraint keeps the whole chain)."""
    graph = SchemaGraph()
    for i in range(1, n_relations + 1):
        name = f"R{i}"
        graph.add_relation(name)
        graph.add_attribute(name, "ID", projection_weight)
        graph.add_attribute(name, "VAL", projection_weight)
        if i > 1:
            graph.add_attribute(name, "REF", projection_weight)
            graph.add_join(
                f"R{i - 1}", name, "ID", "REF", join_weight
            )
    return graph
