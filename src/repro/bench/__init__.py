"""Benchmark harness support: §6 workload builders and measurement."""

from .measurement import (
    LinearFit,
    fit_linear,
    print_series,
    print_stage_breakdown,
    stage_breakdown,
    time_call,
    trace_stages,
)
from .workloads import (
    chain_database,
    chain_graph,
    chain_schema,
    connected_relation_sets,
    random_schema_graph,
    random_seed_tids,
    tokens_in_single_relation,
)

__all__ = [
    "time_call",
    "trace_stages",
    "stage_breakdown",
    "print_stage_breakdown",
    "fit_linear",
    "LinearFit",
    "print_series",
    "tokens_in_single_relation",
    "connected_relation_sets",
    "random_seed_tids",
    "chain_schema",
    "chain_database",
    "chain_graph",
    "random_schema_graph",
]
