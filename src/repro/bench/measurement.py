"""Measurement helpers shared by the benchmark suite.

The paper reports wall-clock seconds on 2005 Oracle hardware; absolute
numbers cannot be matched, so every bench reports *both* wall time and
the engine's modeled cost (abstract I/O units, see
:mod:`repro.relational.cost`) and asserts on the reproducible *shapes*:
linearity in ``c_R`` and ``n_R``, and the NaïveQ < RoundRobin ordering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..obs import InMemorySink, QueryStats, Tracer, format_stats

__all__ = [
    "time_call",
    "trace_stages",
    "stage_breakdown",
    "print_stage_breakdown",
    "fit_linear",
    "LinearFit",
    "print_series",
]


def time_call(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-*repeat* wall time of ``fn()`` in seconds."""
    best = float("inf")
    for __ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def trace_stages(
    fn: Callable[[Tracer], object],
) -> tuple[object, Optional[QueryStats]]:
    """Run *fn* under a fresh tracer; return its result + per-stage stats.

    *fn* receives the tracer (pass it to ``engine.ask(..., tracer=t)``
    or construct the engine with it). Stats come from the last root span
    the call produced — for one ``ask`` that is the whole query — or
    None if the call opened no spans.

    >>> answer, stats = trace_stages(lambda t: engine.ask(q, tracer=t))
    >>> stats.stage("database_generator").duration_ms   # doctest: +SKIP
    """
    sink = InMemorySink()
    tracer = Tracer([sink])
    result = fn(tracer)
    if not sink.spans:
        return result, None
    return result, QueryStats.from_span(sink.spans[-1])


def stage_breakdown(
    fn: Callable[[Tracer], object], repeat: int = 3
) -> Optional[QueryStats]:
    """Per-stage stats of the *fastest* of *repeat* traced runs —
    the tracing analogue of :func:`time_call`, so benches can report
    where the best-case latency goes instead of one end-to-end number.
    """
    best: Optional[QueryStats] = None
    for __ in range(repeat):
        ___, stats = trace_stages(fn)
        if stats is None:
            continue
        if best is None or stats.duration_s < best.duration_s:
            best = stats
    return best


def print_stage_breakdown(title: str, stats: Optional[QueryStats]) -> None:
    """Print one run's per-stage table under a series-style header."""
    print(f"\n== {title} ==")
    if stats is None:
        print("(no spans recorded)")
        return
    print(format_stats(stats))


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line through a series."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit; ``r_squared`` close to 1 certifies the

    "increases almost linearly" claims of Figures 8 and 9."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x series")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope, intercept, r_squared)


def print_series(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print one experiment's series as an aligned table (the benches'

    stdout mirrors the paper's figures as numbers)."""
    widths = [len(h) for h in header]
    text_rows = []
    for row in rows:
        text_row = [
            f"{v:.6g}" if isinstance(v, float) else str(v) for v in row
        ]
        widths = [max(w, len(t)) for w, t in zip(widths, text_row)]
        text_rows.append(text_row)
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for text_row in text_rows:
        print("  ".join(t.ljust(w) for t, w in zip(text_row, widths)))
