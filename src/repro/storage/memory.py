"""The in-memory reference store — the seed engine's dict storage, extracted.

Tuples live in an insertion-ordered ``dict[tid, tuple]`` (tid order ==
insertion order == ascending, since tids are assigned monotonically),
the primary key in a ``dict[pk tuple, tid]``, and secondary indexes as
:class:`~repro.relational.index.HashIndex` /
:class:`~repro.relational.index.SortedIndex` objects maintained on every
insert and delete. This is the semantics reference every other backend
is property-tested against.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from ..relational.errors import PrimaryKeyViolation, SchemaError, UnknownTupleError
from ..relational.index import HashIndex, SortedIndex
from ..relational.schema import RelationSchema
from .base import StorageBackend, TupleStore

__all__ = ["MemoryStore", "MemoryBackend"]


class MemoryStore(TupleStore):
    """Dict-backed tuple storage (the engine's original behavior)."""

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self._tuples: dict[int, tuple] = {}
        self._next_tid = 1
        self._pk_positions = (
            schema.positions(schema.primary_key) if schema.primary_key else ()
        )
        self._pk_index: dict[tuple, int] = {}
        self._indexes: dict[str, HashIndex | SortedIndex] = {}

    # ------------------------------------------------------------- writes

    def _pk_of(self, stored: tuple) -> Optional[tuple]:
        if not self._pk_positions:
            return None
        return tuple(stored[p] for p in self._pk_positions)

    def insert(self, stored: tuple) -> int:
        pk_value = self._pk_of(stored)
        if pk_value is not None and pk_value in self._pk_index:
            raise PrimaryKeyViolation(self.schema.name, pk_value)
        tid = self._next_tid
        self._next_tid += 1
        self._tuples[tid] = stored
        if pk_value is not None:
            self._pk_index[pk_value] = tid
        for attr, index in self._indexes.items():
            index.insert(stored[self.schema.position(attr)], tid)
        return tid

    def update(self, tid: int, stored: tuple) -> None:
        old = self._tuples.get(tid)
        if old is None:
            raise UnknownTupleError(self.schema.name, tid)
        new_pk = self._pk_of(stored)
        if new_pk is not None:
            owner = self._pk_index.get(new_pk)
            if owner is not None and owner != tid:
                raise PrimaryKeyViolation(self.schema.name, new_pk)
        old_pk = self._pk_of(old)
        if old_pk is not None and old_pk != new_pk:
            self._pk_index.pop(old_pk, None)
        if new_pk is not None:
            self._pk_index[new_pk] = tid
        # replace in place: dict ordering (== tid order) is unaffected
        self._tuples[tid] = stored
        for attr, index in self._indexes.items():
            pos = self.schema.position(attr)
            if old[pos] != stored[pos]:
                index.remove(old[pos], tid)
                index.insert(stored[pos], tid)

    def delete(self, tid: int) -> None:
        stored = self._tuples.pop(tid, None)
        if stored is None:
            raise UnknownTupleError(self.schema.name, tid)
        pk_value = self._pk_of(stored)
        if pk_value is not None:
            self._pk_index.pop(pk_value, None)
        for attr, index in self._indexes.items():
            index.remove(stored[self.schema.position(attr)], tid)

    def clear(self) -> None:
        self._tuples.clear()
        self._pk_index.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------- reads

    def get(self, tid: int) -> Optional[tuple]:
        return self._tuples.get(tid)

    def get_many(self, tids: Sequence[int]) -> dict[int, tuple]:
        tuples = self._tuples
        return {tid: tuples[tid] for tid in tids if tid in tuples}

    def scan(self) -> Iterator[tuple[int, tuple]]:
        return iter(self._tuples.items())

    def tids(self) -> Iterator[int]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples

    # ------------------------------------------------------------- probes

    def lookup(self, attribute: str, value: Any) -> set[int]:
        index = self._indexes.get(attribute)
        if index is not None:
            return set(index.lookup(value))
        pos = self.schema.position(attribute)
        return {
            tid for tid, stored in self._tuples.items() if stored[pos] == value
        }

    def lookup_in(self, attribute: str, values: Iterable[Any]) -> set[int]:
        index = self._indexes.get(attribute)
        if index is not None:
            return index.lookup_many(values)
        pos = self.schema.position(attribute)
        wanted = set(values)
        return {
            tid
            for tid, stored in self._tuples.items()
            if stored[pos] in wanted
        }

    def lookup_pk(self, key: tuple) -> Optional[int]:
        return self._pk_index.get(key)

    def distinct_values(self, attribute: str) -> set[Any]:
        index = self._indexes.get(attribute)
        if index is not None:
            return {v for v in index.distinct_values() if v is not None}
        pos = self.schema.position(attribute)
        return {
            stored[pos]
            for stored in self._tuples.values()
            if stored[pos] is not None
        }

    # ------------------------------------------------------------- indexes

    def create_index(self, attribute: str, kind: str = "hash") -> None:
        if kind == "hash":
            index: HashIndex | SortedIndex = HashIndex(
                self.schema.name, attribute
            )
        elif kind == "sorted":
            index = SortedIndex(self.schema.name, attribute)
        else:
            raise SchemaError(f"unknown index kind {kind!r}")
        pos = self.schema.position(attribute)
        for tid, stored in self._tuples.items():
            index.insert(stored[pos], tid)
        self._indexes[attribute] = index

    def has_index(self, attribute: str) -> bool:
        return attribute in self._indexes

    def index_on(self, attribute: str) -> HashIndex | SortedIndex:
        try:
            return self._indexes[attribute]
        except KeyError:
            raise SchemaError(
                f"no index on {self.schema.name}.{attribute}"
            ) from None

    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    def __repr__(self):
        return f"MemoryStore({self.schema.name}, {len(self)} tuples)"


class MemoryBackend(StorageBackend):
    """One :class:`MemoryStore` per relation; no shared state."""

    name = "memory"

    def create_store(self, schema: RelationSchema) -> MemoryStore:
        return MemoryStore(schema)
