"""Pluggable storage backends for the relational substrate.

The précis pipeline only ever touches tuples through the
:class:`~repro.storage.base.TupleStore` protocol — seed lookups, tid
fetches, ordered scans, IN-list join probes, index creation — so the
same engine runs unchanged over any backend implementing it. Two ship
in-tree:

* ``"memory"`` — :class:`~repro.storage.memory.MemoryStore`, the
  dict-based reference implementation (the seed engine's storage,
  extracted);
* ``"sqlite"`` — :class:`~repro.storage.sqlite.SQLiteStore`, stdlib
  ``sqlite3``, one table per relation, real indexes, optionally
  file-persistent.

Backend selection threads through
:class:`~repro.relational.database.Database`::

    Database(schema, backend="sqlite")
    Database.from_rows(schema, data, backend=SQLiteBackend("precis.db"))

See ``docs/storage.md`` for the protocol contract and how to write a
third backend.
"""

from __future__ import annotations

from .base import (
    PermanentStorageError,
    StorageBackend,
    StorageError,
    TransientStorageError,
    TupleStore,
)
from .memory import MemoryBackend, MemoryStore
from .registry import BACKEND_NAMES, register_backend, resolve_backend
from .sqlite import SQLiteBackend, SQLiteStore

__all__ = [
    "TupleStore",
    "StorageBackend",
    "StorageError",
    "TransientStorageError",
    "PermanentStorageError",
    "MemoryStore",
    "MemoryBackend",
    "SQLiteStore",
    "SQLiteBackend",
    "BACKEND_NAMES",
    "resolve_backend",
    "register_backend",
]
