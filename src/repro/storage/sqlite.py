"""SQLite-backed tuple storage (stdlib ``sqlite3``).

One table per relation, sharing a single connection per
:class:`SQLiteBackend` (per database). The engine-assigned tuple id is
an ``INTEGER PRIMARY KEY AUTOINCREMENT`` column ``_tid`` — monotonically
increasing and never reused, matching :class:`~repro.storage.memory.
MemoryStore`'s tid discipline exactly, so the two backends produce
identical tids (and therefore identical, deterministic précis answers)
for identical insertion sequences.

Representation
--------------

===========  ==================  =====================================
DataType     SQLite column       value mapping
===========  ==================  =====================================
INT          INTEGER             as-is
FLOAT        REAL                as-is
TEXT         TEXT                as-is
DATE         TEXT                ISO-8601 via ``date.isoformat()``
BOOL         INTEGER             0 / 1
===========  ==================  =====================================

Probe values are translated with the same mapping — with guards that
reject probes the in-memory reference semantics would never match (a
string probe on an INT column, a string on a DATE column), because
SQLite's type-affinity comparisons are *more* permissive than Python
``==`` and would otherwise produce phantom matches.

The relation's declared primary key becomes a ``UNIQUE`` index, real
secondary indexes back :meth:`SQLiteStore.create_index` (both the
``"hash"`` and ``"sorted"`` kinds map to SQLite b-trees), and
``lookup_in`` executes as batched ``IN (...)`` queries chunked below
SQLite's bound-variable limit.
"""

from __future__ import annotations

import datetime
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from ..relational.datatypes import DataType
from ..relational.errors import (
    PrimaryKeyViolation,
    SchemaError,
    UnknownTupleError,
)
from ..relational.schema import RelationSchema
from .base import (
    PermanentStorageError,
    StorageBackend,
    TransientStorageError,
    TupleStore,
)

__all__ = ["SQLiteStore", "SQLiteBackend"]

#: OperationalError fragments that signal contention, not breakage —
#: the retryable class (`database is locked`, `database table is
#: locked`, `cannot start a transaction`, SQLITE_BUSY/SQLITE_LOCKED)
_TRANSIENT_MARKERS = ("locked", "busy", "interrupted")


def _run(conn: sqlite3.Connection, sql: str, params: Sequence[Any] = ()):
    """Execute *sql*, classifying driver failures for the retry layer.

    ``IntegrityError`` passes through untouched (the callers turn it
    into the semantic :class:`PrimaryKeyViolation`); lock/busy
    ``OperationalError``s become :class:`TransientStorageError` (safe to
    retry — the statement never ran); everything else the driver raises
    becomes :class:`PermanentStorageError`.
    """
    try:
        return conn.execute(sql, params)
    except sqlite3.IntegrityError:
        raise
    except sqlite3.OperationalError as exc:
        message = str(exc)
        lowered = message.lower()
        if any(marker in lowered for marker in _TRANSIENT_MARKERS):
            raise TransientStorageError(message) from exc
        raise PermanentStorageError(message) from exc
    except sqlite3.Error as exc:
        raise PermanentStorageError(str(exc)) from exc

#: tuple-id column added to every relation table
_TID = "_tid"

#: stay safely below SQLITE_MAX_VARIABLE_NUMBER (999 on older builds)
_CHUNK = 500

_SQL_TYPES = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.TEXT: "TEXT",
    DataType.DATE: "TEXT",
    DataType.BOOL: "INTEGER",
}

#: sentinel distinguishing "probe can never match" from a None SQL value
_NO_MATCH = object()


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _to_sql(value: Any, dtype: DataType) -> Any:
    """Canonical Python value → SQLite storage value."""
    if value is None:
        return None
    if dtype is DataType.DATE:
        return value.isoformat()
    if dtype is DataType.BOOL:
        return int(value)
    return value


def _from_sql(value: Any, dtype: DataType) -> Any:
    """SQLite storage value → canonical Python value."""
    if value is None:
        return None
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(value)
    if dtype is DataType.BOOL:
        return bool(value)
    return value


def _probe_sql(value: Any, dtype: DataType) -> Any:
    """Probe value → SQLite comparison value, or ``_NO_MATCH``.

    Mirrors the reference semantics (Python ``==`` against the canonical
    stored value): numeric cross-matches are allowed (``2005.0`` equals
    INT ``2005``; ``True`` equals ``1``), string probes never match
    non-TEXT columns, and only exact ``datetime.date`` objects (not
    datetimes, not ISO strings) match a DATE column.
    """
    if value is None:
        return None
    if dtype in (DataType.INT, DataType.FLOAT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            return value
        return _NO_MATCH
    if dtype is DataType.TEXT:
        return value if isinstance(value, str) else _NO_MATCH
    if dtype is DataType.DATE:
        if isinstance(value, datetime.date) and not isinstance(
            value, datetime.datetime
        ):
            return value.isoformat()
        return _NO_MATCH
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            return value  # True == 1 and False == 0 in the reference
        return _NO_MATCH
    return _NO_MATCH  # pragma: no cover - exhaustive over DataType


class _SQLIndexInfo:
    """Index handle returned by :meth:`SQLiteStore.index_on`."""

    __slots__ = ("relation", "attribute", "kind", "sql_name")

    def __init__(self, relation: str, attribute: str, kind: str, sql_name: str):
        self.relation = relation
        self.attribute = attribute
        self.kind = kind
        self.sql_name = sql_name

    def __repr__(self):
        return (
            f"_SQLIndexInfo({self.relation}.{self.attribute}, "
            f"kind={self.kind!r})"
        )


class SQLiteStore(TupleStore):
    """One relation stored as one SQLite table."""

    def __init__(
        self,
        schema: RelationSchema,
        connection: sqlite3.Connection,
        fresh: bool = True,
    ):
        if _TID in schema.attribute_names:
            raise SchemaError(
                f"{schema.name} has a column named {_TID!r}, which is "
                "reserved by the SQLite backend"
            )
        self.schema = schema
        self._conn = connection
        self._table = _quote(schema.name)
        self._columns = ", ".join(_quote(c.name) for c in schema.columns)
        self._dtypes = tuple(c.dtype for c in schema.columns)
        self._indexes: dict[str, _SQLIndexInfo] = {}
        if fresh:
            self._execute(f"DROP TABLE IF EXISTS {self._table}")
        self._create_table()

    def _execute(self, sql: str, params: Sequence[Any] = ()):
        return _run(self._conn, sql, params)

    def _create_table(self) -> None:
        cols = [f"{_quote(_TID)} INTEGER PRIMARY KEY AUTOINCREMENT"]
        cols.extend(
            f"{_quote(c.name)} {_SQL_TYPES[c.dtype]}" for c in self.schema.columns
        )
        self._execute(
            f"CREATE TABLE IF NOT EXISTS {self._table} ({', '.join(cols)})"
        )
        if self.schema.primary_key:
            pk_cols = ", ".join(_quote(a) for a in self.schema.primary_key)
            pk_name = _quote(f"pk_{self.schema.name}")
            self._execute(
                f"CREATE UNIQUE INDEX IF NOT EXISTS {pk_name} "
                f"ON {self._table} ({pk_cols})"
            )

    # ------------------------------------------------------------- writes

    def insert(self, stored: tuple) -> int:
        params = [
            _to_sql(value, dtype) for value, dtype in zip(stored, self._dtypes)
        ]
        placeholders = ", ".join("?" for _ in params)
        try:
            cursor = self._execute(
                f"INSERT INTO {self._table} ({self._columns}) "
                f"VALUES ({placeholders})",
                params,
            )
        except sqlite3.IntegrityError:
            pk_pos = self.schema.positions(self.schema.primary_key)
            raise PrimaryKeyViolation(
                self.schema.name, tuple(stored[p] for p in pk_pos)
            ) from None
        return int(cursor.lastrowid)

    def update(self, tid: int, stored: tuple) -> None:
        assignments = ", ".join(
            f"{_quote(c.name)} = ?" for c in self.schema.columns
        )
        params = [
            _to_sql(value, dtype) for value, dtype in zip(stored, self._dtypes)
        ]
        params.append(tid)
        try:
            cursor = self._execute(
                f"UPDATE {self._table} SET {assignments} "
                f"WHERE {_quote(_TID)} = ?",
                params,
            )
        except sqlite3.IntegrityError:
            pk_pos = self.schema.positions(self.schema.primary_key)
            raise PrimaryKeyViolation(
                self.schema.name, tuple(stored[p] for p in pk_pos)
            ) from None
        if cursor.rowcount == 0:
            raise UnknownTupleError(self.schema.name, tid)

    def delete(self, tid: int) -> None:
        cursor = self._execute(
            f"DELETE FROM {self._table} WHERE {_quote(_TID)} = ?", (tid,)
        )
        if cursor.rowcount == 0:
            raise UnknownTupleError(self.schema.name, tid)

    def clear(self) -> None:
        # the sqlite_sequence entry survives, so AUTOINCREMENT keeps
        # counting upward — same discipline as MemoryStore._next_tid
        self._execute(f"DELETE FROM {self._table}")

    # ------------------------------------------------------------- reads

    def _decode(self, record: Sequence[Any]) -> tuple:
        return tuple(
            _from_sql(value, dtype)
            for value, dtype in zip(record, self._dtypes)
        )

    def get(self, tid: int) -> Optional[tuple]:
        record = self._execute(
            f"SELECT {self._columns} FROM {self._table} "
            f"WHERE {_quote(_TID)} = ?",
            (tid,),
        ).fetchone()
        return None if record is None else self._decode(record)

    def get_many(self, tids: Sequence[int]) -> dict[int, tuple]:
        out: dict[int, tuple] = {}
        tid_list = list(dict.fromkeys(tids))
        for start in range(0, len(tid_list), _CHUNK):
            chunk = tid_list[start : start + _CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            for record in self._execute(
                f"SELECT {_quote(_TID)}, {self._columns} FROM {self._table} "
                f"WHERE {_quote(_TID)} IN ({placeholders})",
                chunk,
            ):
                out[record[0]] = self._decode(record[1:])
        return out

    def scan(self) -> Iterator[tuple[int, tuple]]:
        cursor = self._execute(
            f"SELECT {_quote(_TID)}, {self._columns} FROM {self._table} "
            f"ORDER BY {_quote(_TID)}"
        )
        for record in cursor:
            yield record[0], self._decode(record[1:])

    def tids(self) -> Iterator[int]:
        cursor = self._execute(
            f"SELECT {_quote(_TID)} FROM {self._table} "
            f"ORDER BY {_quote(_TID)}"
        )
        return (record[0] for record in cursor)

    def __len__(self) -> int:
        return self._execute(
            f"SELECT COUNT(*) FROM {self._table}"
        ).fetchone()[0]

    def __contains__(self, tid: int) -> bool:
        return (
            self._execute(
                f"SELECT 1 FROM {self._table} WHERE {_quote(_TID)} = ?",
                (tid,),
            ).fetchone()
            is not None
        )

    # ------------------------------------------------------------- probes

    def _dtype_of(self, attribute: str) -> DataType:
        return self.schema.column(attribute).dtype

    def lookup(self, attribute: str, value: Any) -> set[int]:
        col = _quote(attribute)
        if value is None:
            sql = (
                f"SELECT {_quote(_TID)} FROM {self._table} "
                f"WHERE {col} IS NULL"
            )
            return {r[0] for r in self._execute(sql)}
        probe = _probe_sql(value, self._dtype_of(attribute))
        if probe is _NO_MATCH:
            return set()
        sql = f"SELECT {_quote(_TID)} FROM {self._table} WHERE {col} = ?"
        return {r[0] for r in self._execute(sql, (probe,))}

    def lookup_in(self, attribute: str, values: Iterable[Any]) -> set[int]:
        dtype = self._dtype_of(attribute)
        want_null = False
        probes: list[Any] = []
        for value in dict.fromkeys(values):
            if value is None:
                want_null = True
                continue
            probe = _probe_sql(value, dtype)
            if probe is not _NO_MATCH:
                probes.append(probe)
        col = _quote(attribute)
        out: set[int] = set()
        for start in range(0, len(probes), _CHUNK):
            chunk = probes[start : start + _CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            out.update(
                r[0]
                for r in self._execute(
                    f"SELECT {_quote(_TID)} FROM {self._table} "
                    f"WHERE {col} IN ({placeholders})",
                    chunk,
                )
            )
        if want_null:
            out.update(
                r[0]
                for r in self._execute(
                    f"SELECT {_quote(_TID)} FROM {self._table} "
                    f"WHERE {col} IS NULL"
                )
            )
        return out

    def lookup_pk(self, key: tuple) -> Optional[int]:
        clauses = []
        params = []
        for attr, value in zip(self.schema.primary_key, key):
            probe = _probe_sql(value, self._dtype_of(attr))
            if probe is _NO_MATCH or probe is None:
                return None
            clauses.append(f"{_quote(attr)} = ?")
            params.append(probe)
        record = self._execute(
            f"SELECT {_quote(_TID)} FROM {self._table} "
            f"WHERE {' AND '.join(clauses)}",
            params,
        ).fetchone()
        return None if record is None else record[0]

    def distinct_values(self, attribute: str) -> set[Any]:
        dtype = self._dtype_of(attribute)
        col = _quote(attribute)
        return {
            _from_sql(r[0], dtype)
            for r in self._execute(
                f"SELECT DISTINCT {col} FROM {self._table} "
                f"WHERE {col} IS NOT NULL"
            )
        }

    # ------------------------------------------------------------- indexes

    def create_index(self, attribute: str, kind: str = "hash") -> None:
        if kind not in ("hash", "sorted"):
            raise SchemaError(f"unknown index kind {kind!r}")
        sql_name = f"idx_{self.schema.name}_{attribute}"
        self._execute(
            f"CREATE INDEX IF NOT EXISTS {_quote(sql_name)} "
            f"ON {self._table} ({_quote(attribute)})"
        )
        self._indexes[attribute] = _SQLIndexInfo(
            self.schema.name, attribute, kind, sql_name
        )

    def has_index(self, attribute: str) -> bool:
        return attribute in self._indexes

    def index_on(self, attribute: str) -> _SQLIndexInfo:
        try:
            return self._indexes[attribute]
        except KeyError:
            raise SchemaError(
                f"no index on {self.schema.name}.{attribute}"
            ) from None

    @property
    def indexed_attributes(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    def __repr__(self):
        return f"SQLiteStore({self.schema.name}, {len(self)} tuples)"


class SQLiteBackend(StorageBackend):
    """One SQLite connection shared by all relations of a database.

    Parameters
    ----------
    path:
        Database file; ``None`` (default) uses a private in-memory
        database. A file path makes the store persistent and
        inspectable with the ``sqlite3`` CLI.
    fresh:
        Drop and recreate each relation's table when its store is
        created (default). This keeps loads deterministic — reloading a
        CSV directory into an existing file never duplicates rows — at
        the price of treating the file as a cache of the source data
        rather than the source of truth.
    """

    name = "sqlite"

    def __init__(
        self, path: Union[str, Path, None] = None, fresh: bool = True
    ):
        self.path = str(path) if path is not None else None
        self.fresh = fresh
        # With a serialized (threadsafety == 3) sqlite3 build the module
        # itself locks around every statement, so one connection may be
        # shared across the service layer's worker threads; on lesser
        # builds keep the stdlib's same-thread guard.
        share = sqlite3.threadsafety == 3
        self._conn = sqlite3.connect(
            self.path or ":memory:", check_same_thread=not share
        )
        # autocommit + relaxed durability: this is a query engine's
        # working store, not a system of record
        self._conn.isolation_level = None
        self._execute("PRAGMA synchronous = OFF")
        self._execute("PRAGMA journal_mode = MEMORY")

    def _execute(self, sql: str, params: Sequence[Any] = ()):
        return _run(self._conn, sql, params)

    @property
    def connection(self) -> sqlite3.Connection:
        return self._conn

    def create_store(self, schema: RelationSchema) -> SQLiteStore:
        return SQLiteStore(schema, self._conn, fresh=self.fresh)

    def close(self) -> None:
        self._conn.close()

    def __repr__(self):
        target = self.path or ":memory:"
        return f"SQLiteBackend({target!r})"
