"""The storage protocol: what the précis pipeline needs from a backend.

The paper's engine treats the source database as an abstract tuple and
index service: seed lookups through the inverted index, tid fetches
(``σ_Tids(R)[π(R)]``), IN-list probes for the executed join edges, and
per-driving-tuple scans for RoundRobin (§5.2). :class:`TupleStore`
captures exactly those primitives, so the relational layer can run over
any engine that can insert, delete, fetch-by-id, scan in id order and
probe by attribute value.

Division of labour
------------------

* :class:`~repro.relational.relation.Relation` (the façade) owns
  validation — type coercion, NOT NULL, primary-key uniqueness — plus
  :class:`~repro.relational.row.Row` construction and **all**
  :class:`~repro.relational.cost.CostMeter` charging. Stores never touch
  the meter; the modeled cost of a query is therefore identical across
  backends by construction.
* A :class:`TupleStore` works in *storage tuples*: full-width tuples of
  canonical Python values in schema order (what
  ``Relation._normalize`` produces). It assigns monotonically increasing
  integer tuple ids starting at 1 (never reused, even across
  :meth:`TupleStore.clear`), keeps the primary-key mapping, and maintains
  any secondary indexes created through :meth:`TupleStore.create_index`.
* A :class:`StorageBackend` is the per-database factory: one store per
  relation schema, sharing whatever resources the backend needs (the
  SQLite backend shares one connection across all relations of a
  database).

Equality semantics
------------------

``lookup``/``lookup_in``/``lookup_pk``/``distinct_values`` must match
the in-memory reference semantics: Python ``==`` between the canonical
stored value and the probe (so ``2005.0`` matches an INT ``2005``, and a
``None`` probe matches NULLs), and *no* cross-type coercion beyond that
(a string probe never matches an INT or DATE column). Backends that
store values in a foreign representation (SQLite stores dates as ISO
text) must guard their probes accordingly.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Sequence

from ..relational.errors import RelationalError

if TYPE_CHECKING:  # import cycle: relational.relation builds on this module
    from ..relational.schema import RelationSchema

__all__ = [
    "TupleStore",
    "StorageBackend",
    "StorageError",
    "TransientStorageError",
    "PermanentStorageError",
]


class StorageError(RelationalError):
    """A backend failed to execute a storage operation.

    Distinct from the *semantic* errors of
    :mod:`repro.relational.errors` (constraint violations, unknown
    tuples — those describe the data); a StorageError describes the
    *infrastructure*. The split into transient vs. permanent is what the
    serving layer's retry policy keys on (:mod:`repro.service.retry`).
    """


class TransientStorageError(StorageError):
    """A failure that may succeed on retry (lock contention, busy
    database, interrupted I/O). The serving layer retries these with
    backoff."""


class PermanentStorageError(StorageError):
    """A failure retrying cannot fix (corrupt file, schema mismatch,
    disk full). Surfaced to the caller immediately."""


class TupleStore(abc.ABC):
    """Tid-addressed tuple storage for one relation.

    Concrete stores receive the :class:`RelationSchema` at construction
    and expose it as :attr:`schema`.
    """

    schema: RelationSchema

    # ------------------------------------------------------------- writes

    @abc.abstractmethod
    def insert(self, stored: tuple) -> int:
        """Store one full-width canonical tuple; return its new tid.

        The façade has already validated types, NOT NULL and primary-key
        uniqueness; stores may additionally enforce the primary key (and
        raise :class:`~repro.relational.errors.PrimaryKeyViolation`) as a
        defence in depth.
        """

    @abc.abstractmethod
    def update(self, tid: int, stored: tuple) -> None:
        """Replace the full-width canonical tuple at *tid* **in place**:
        the tid is preserved, so references held elsewhere (inbound
        foreign keys, inverted-index postings) stay addressable. Raise
        :class:`~repro.relational.errors.UnknownTupleError` if absent.
        The façade has already validated the new tuple (including
        primary-key uniqueness against other tuples); stores may enforce
        the primary key again as a defence in depth and must keep the
        pk mapping and any secondary indexes coherent.
        """

    @abc.abstractmethod
    def delete(self, tid: int) -> None:
        """Remove one tuple; raise
        :class:`~repro.relational.errors.UnknownTupleError` if absent."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Remove every tuple (indexes stay defined; tids are not reused)."""

    # ------------------------------------------------------------- reads

    @abc.abstractmethod
    def get(self, tid: int) -> Optional[tuple]:
        """The full-width stored tuple for *tid*, or None if absent."""

    @abc.abstractmethod
    def get_many(self, tids: Sequence[int]) -> dict[int, tuple]:
        """Batch :meth:`get`: tid → stored tuple, absent tids omitted."""

    @abc.abstractmethod
    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(tid, stored)`` pairs in ascending tid order."""

    @abc.abstractmethod
    def tids(self) -> Iterator[int]:
        """All tids in ascending order."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    def __contains__(self, tid: int) -> bool:
        return self.get(tid) is not None

    # ------------------------------------------------------------- probes

    @abc.abstractmethod
    def lookup(self, attribute: str, value: Any) -> set[int]:
        """Tids whose *attribute* equals *value* (None matches NULLs)."""

    @abc.abstractmethod
    def lookup_in(self, attribute: str, values: Iterable[Any]) -> set[int]:
        """Tids whose *attribute* equals any of *values* (IN-list probe)."""

    @abc.abstractmethod
    def lookup_pk(self, key: tuple) -> Optional[int]:
        """Tid of the tuple whose primary key equals *key* (a tuple of
        values in primary-key column order), or None."""

    @abc.abstractmethod
    def distinct_values(self, attribute: str) -> set[Any]:
        """All distinct non-NULL values of *attribute*."""

    # ------------------------------------------------------------- indexes

    @abc.abstractmethod
    def create_index(self, attribute: str, kind: str = "hash") -> None:
        """Build (or rebuild) a secondary index on *attribute*.

        *kind* is ``"hash"`` or ``"sorted"``; backends without distinct
        physical structures (SQLite b-trees serve both) record the kind
        and provide equivalent probe behavior.
        """

    @abc.abstractmethod
    def has_index(self, attribute: str) -> bool: ...

    @abc.abstractmethod
    def index_on(self, attribute: str):
        """The index handle for *attribute* — any object with a ``kind``
        attribute; raise :class:`~repro.relational.errors.SchemaError`
        when no index exists."""

    @property
    @abc.abstractmethod
    def indexed_attributes(self) -> tuple[str, ...]: ...

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release per-store resources (no-op by default)."""


class StorageBackend(abc.ABC):
    """Factory for the stores of one database.

    ``Database`` asks its backend for one store per relation schema and
    calls :meth:`close` when the database is closed. Backends own any
    shared resources (files, connections).
    """

    #: short machine-readable backend name ("memory", "sqlite", ...)
    name: str = "?"

    @abc.abstractmethod
    def create_store(self, schema: RelationSchema) -> TupleStore: ...

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    def __repr__(self):
        return f"{type(self).__name__}()"
