"""Backend registry: names → :class:`StorageBackend` factories.

Lives in its own module (not the package ``__init__``) so that
:mod:`repro.relational.database` can import :func:`resolve_backend`
without forcing the whole storage package — the two packages are
mutually referential and must bootstrap in either import order. The
built-in factories import their backend classes lazily for the same
reason.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Union

from .base import StorageBackend

__all__ = ["BACKEND_NAMES", "register_backend", "resolve_backend"]


def _memory_factory(path=None) -> StorageBackend:
    from .memory import MemoryBackend

    return MemoryBackend()


def _sqlite_factory(path=None) -> StorageBackend:
    from .sqlite import SQLiteBackend

    return SQLiteBackend(path)


#: name -> factory; the optional ``path`` keyword is forwarded when given
_REGISTRY: dict[str, Callable[..., StorageBackend]] = {
    "memory": _memory_factory,
    "sqlite": _sqlite_factory,
}

#: the built-in backend names, for CLI choices and test parametrization
BACKEND_NAMES = ("memory", "sqlite")


def register_backend(name: str, factory: Callable[..., StorageBackend]) -> None:
    """Register a third-party backend under *name*.

    *factory* is called as ``factory(path=...)`` where *path* is the
    optional location argument (None for ephemeral stores).
    """
    _REGISTRY[name] = factory


def resolve_backend(
    spec: Union[str, StorageBackend, None] = None,
    path: Union[str, Path, None] = None,
) -> StorageBackend:
    """Turn a backend specification into a :class:`StorageBackend`.

    *spec* may be None (→ memory, or sqlite when *path* is given), a
    registered name (``"memory"``, ``"sqlite"``), or an already-built
    :class:`StorageBackend` instance (returned as-is; *path* must then
    be None). A ``"sqlite:"``-prefixed spec carries the file path
    inline: ``"sqlite:/tmp/precis.db"``.
    """
    if spec is None:
        spec = "memory" if path is None else "sqlite"
    if isinstance(spec, StorageBackend):
        if path is not None:
            raise ValueError("path= cannot be combined with a backend instance")
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be a name or StorageBackend, got {type(spec).__name__}"
        )
    name = spec
    if ":" in spec:
        name, _, inline_path = spec.partition(":")
        if path is not None and inline_path:
            raise ValueError("path given both inline and as argument")
        path = path or (inline_path or None)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown storage backend {name!r} (known: {known})"
        ) from None
    return factory(path=path)
