"""Service-level objectives computed from the metrics registry.

An SLO is a target over an indicator: "99% of requests are answered"
(availability) or "95% of answered requests finish under 500 ms"
(latency). This module evaluates both kinds directly from the
counters and histograms :class:`~repro.obs.metrics.ServiceMetrics`
already maintains — no second measurement pipeline, no extra work on
the request path — and reports the *error-budget burn rate*: how fast
the service is spending its allowance of bad events relative to the
target. Burn 1.0 means exactly on budget; 2.0 means the budget is
going twice as fast as the objective allows; 0.0 means no bad events.

Latency compliance is read from the cumulative bucket counts of the
``precis_service_seconds`` histogram at the first bound >= the
threshold — the same conservative rounding Prometheus alerting uses,
so a dashboard built on the text exposition agrees with
:meth:`SLOTracker.snapshot`.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry

__all__ = ["SLObjective", "SLOTracker"]


class SLObjective:
    """One objective: availability, or latency under a threshold."""

    __slots__ = ("name", "kind", "target", "threshold_ms", "histogram")

    def __init__(
        self,
        name: str,
        kind: str,
        target: float,
        threshold_ms: Optional[float] = None,
        histogram: str = "precis_service_seconds",
    ):
        if kind not in ("availability", "latency"):
            raise ValueError(f"unknown objective kind {kind!r}")
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        if kind == "latency" and threshold_ms is None:
            raise ValueError("latency objectives need threshold_ms")
        self.name = name
        self.kind = kind
        self.target = target
        self.threshold_ms = threshold_ms
        self.histogram = histogram

    def __repr__(self):
        threshold = (
            f", <= {self.threshold_ms:g}ms" if self.threshold_ms else ""
        )
        return (
            f"SLObjective({self.name!r}, {self.kind}, "
            f"{self.target:.4g}{threshold})"
        )


def default_objectives() -> list[SLObjective]:
    """The stock pair: 99% answered, 95% under 500 ms."""
    return [
        SLObjective("availability-99", "availability", 0.99),
        SLObjective(
            "latency-p95-500ms", "latency", 0.95, threshold_ms=500.0
        ),
    ]


def _counter_total(registry: MetricsRegistry, name: str) -> int:
    """Sum of one counter family over all its label children (0 when
    the family has never been touched)."""
    for family in registry.families():
        if family.name == name and family.kind == "counter":
            return sum(child.value for child in family.children.values())
    return 0


def _histogram_compliance(
    registry: MetricsRegistry, name: str, threshold_s: float
) -> tuple[Optional[float], int]:
    """(fraction of observations <= the first bound >= threshold, total
    count); (None, 0) when the histogram is absent or empty."""
    for family in registry.families():
        if family.name == name and family.kind == "histogram":
            metric = family.children.get(())
            if metric is None or metric.count == 0:
                return None, 0
            buckets = metric.buckets()
            for bound, cumulative in buckets:
                if bound >= threshold_s:
                    return cumulative / metric.count, metric.count
            return 1.0, metric.count
    return None, 0


class SLOTracker:
    """Evaluates objectives against a shared metrics registry.

    >>> from repro.obs import MetricsRegistry, ServiceMetrics
    >>> from repro.obs.slo import SLOTracker
    >>> registry = MetricsRegistry()
    >>> metrics = ServiceMetrics(registry)
    >>> metrics.admitted(); metrics.service_time(0.002)
    >>> tracker = SLOTracker(registry)
    >>> tracker.snapshot()["objectives"][0]["compliance"]
    1.0
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: Optional[list[SLObjective]] = None,
    ):
        self.registry = registry
        self.objectives = (
            list(objectives) if objectives is not None else default_objectives()
        )

    # --------------------------------------------------------- evaluation

    def _availability(self) -> tuple[Optional[float], int, int]:
        """(fraction answered, bad events, total offered)."""
        admitted = _counter_total(
            self.registry, "precis_service_requests_total"
        )
        shed = _counter_total(self.registry, "precis_service_shed_total")
        failed = _counter_total(
            self.registry, "precis_service_failures_total"
        )
        total = admitted + shed
        if total == 0:
            return None, 0, 0
        bad = min(shed + failed, total)
        return 1.0 - bad / total, bad, total

    def evaluate(self, objective: SLObjective) -> dict:
        """One objective's current standing as a JSON-compatible dict."""
        if objective.kind == "availability":
            compliance, bad, total = self._availability()
        else:
            compliance, total = _histogram_compliance(
                self.registry,
                objective.histogram,
                objective.threshold_ms / 1e3,
            )
            bad = (
                int(round((1.0 - compliance) * total))
                if compliance is not None
                else 0
            )
        budget = 1.0 - objective.target
        if compliance is None:
            burn = 0.0
            met = True  # no traffic: nothing has violated the objective
        else:
            burn = (1.0 - compliance) / budget if budget > 0 else (
                0.0 if compliance >= 1.0 else float("inf")
            )
            met = compliance >= objective.target
        return {
            "name": objective.name,
            "kind": objective.kind,
            "target": objective.target,
            "threshold_ms": objective.threshold_ms,
            "compliance": compliance,
            "met": met,
            "error_budget": budget,
            "burn_rate": burn,
            "bad_events": bad,
            "total_events": total,
        }

    def snapshot(self) -> dict:
        """All objectives plus a one-line verdict — the artifact CI
        uploads next to the sample trace."""
        objectives = [self.evaluate(obj) for obj in self.objectives]
        return {
            "objectives": objectives,
            "all_met": all(entry["met"] for entry in objectives),
            "max_burn_rate": max(
                (entry["burn_rate"] for entry in objectives), default=0.0
            ),
        }

    def __repr__(self):
        return f"SLOTracker({len(self.objectives)} objectives)"
