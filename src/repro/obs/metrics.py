"""Service-level metrics — the fleet view of the précis pipeline.

Where :mod:`repro.obs.tracer` answers "where did *this* query spend its
time", this module answers the production questions: what are the
latency percentiles across thousands of asks, how is the cache hit
ratio trending, which queries are the slow outliers. It provides:

* :class:`MetricsRegistry` — a process-lifetime, thread-safe registry
  of named :class:`Counter`, :class:`Gauge` and :class:`Histogram`
  instruments (with optional label sets, Prometheus-style);
* :class:`Histogram` — log-bucketed latency/size distribution with
  p50/p95/p99 summaries interpolated from the buckets;
* :class:`SlowQueryLog` — a bounded record of the N slowest asks seen,
  each with its per-stage breakdown;
* :class:`EngineMetrics` — the engine-facing façade that digests one
  closed ``ask`` span tree into the registry and the slow-query log;
* two exporters — :func:`prometheus_text` (text exposition format) and
  :meth:`MetricsRegistry.snapshot` (a JSON-compatible dict).

Everything is opt-in: an engine built without ``metrics=`` touches none
of this, so the untraced hot path stays byte-identical to PR 3.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterable, Mapping, Optional, TextIO, Union

from .context import current_trace_id as _current_trace_id
from .tracer import Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "SlowQuery",
    "EngineMetrics",
    "ServiceMetrics",
    "FrontDoorMetrics",
    "prometheus_text",
    "write_metrics",
]

#: label tuples are the canonical child key: sorted (name, value) pairs
LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count (asks served, tuples emitted)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self):
        return f"Counter({self._value})"


class Gauge:
    """A value that can go up and down (cache size, current epoch)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self):
        return f"Gauge({self._value})"


def _default_bounds() -> tuple[float, ...]:
    """Log-spaced latency buckets: 1 µs … ~137 s, factor 2 per bucket.

    28 buckets cover nine decades, so one histogram shape serves both
    sub-millisecond index probes and multi-second cold scans.
    """
    bounds = []
    value = 1e-6
    for __ in range(28):
        bounds.append(value)
        value *= 2.0
    return tuple(bounds)


class Histogram:
    """Log-bucketed distribution with percentile summaries.

    Observations land in the first bucket whose upper bound is >= the
    value (one +Inf overflow bucket catches the rest). Percentiles are
    interpolated linearly inside the owning bucket — exact enough for
    dashboards while storing only ``len(bounds)+1`` integers regardless
    of traffic volume.

    An observation may carry an *exemplar* — a trace id
    (:mod:`repro.obs.context`) — in which case the owning bucket
    remembers it (last writer wins). That is the aggregate → trace
    link: a bad p99 bucket names a concrete request whose full span
    tree is one :meth:`~repro.obs.context.TraceBuffer.find` away.
    """

    __slots__ = (
        "bounds",
        "_counts",
        "_exemplars",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds: tuple[float, ...] = (
            tuple(sorted(bounds)) if bounds is not None else _default_bounds()
        )
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # +1: overflow (+Inf)
        self._exemplars: list[Optional[str]] = [None] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            if exemplar is not None:
                self._exemplars[index] = exemplar
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    # ------------------------------------------------------------- queries

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, Prometheus-style;
        the final bound is ``float('inf')``."""
        out = []
        cumulative = 0
        for bound, count in zip(self.bounds, self._counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + self._counts[-1]))
        return out

    def exemplars(self) -> list[Optional[str]]:
        """Per-bucket exemplar trace ids, aligned with :meth:`buckets`
        (last observation carrying one per bucket; None elsewhere)."""
        with self._lock:
            return list(self._exemplars)

    def exemplar_for(self, value: float) -> Optional[str]:
        """The exemplar of the bucket *value* would land in."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            return self._exemplars[index]

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]) by linear
        interpolation inside the owning bucket; 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q / 100.0 * self._count
            cumulative = 0
            for index, count in enumerate(self._counts):
                if count == 0:
                    continue
                if cumulative + count >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else (self._max if self._max is not None else lower)
                    )
                    upper = max(upper, lower)
                    fraction = (rank - cumulative) / count
                    value = lower + (upper - lower) * fraction
                    # the empirical extremes are tighter than bucket edges
                    if self._min is not None:
                        value = max(value, self._min)
                    if self._max is not None:
                        value = min(value, self._max)
                    return value
                cumulative += count
            return self._max if self._max is not None else 0.0

    def summary(self) -> dict:
        """count/sum/min/max plus the p50/p95/p99 dashboard trio."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self):
        return f"Histogram(count={self._count}, sum={self._sum:.6g})"


class _Family:
    """One named metric and its labelled children."""

    __slots__ = ("name", "kind", "help", "children", "maker")

    def __init__(self, name: str, kind: str, help_text: str, maker):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: dict[LabelSet, object] = {}
        self.maker = maker

    def child(self, labels: LabelSet):
        child = self.children.get(labels)
        if child is None:
            child = self.maker()
            self.children[labels] = child
        return child


class MetricsRegistry:
    """Process-lifetime, thread-safe home of every service metric.

    >>> registry = MetricsRegistry()
    >>> registry.counter("precis_asks_total").inc()
    >>> registry.histogram("precis_ask_seconds").observe(0.004)
    >>> sorted(registry.snapshot()["counters"])
    ['precis_asks_total']
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------- access

    def _family(self, name: str, kind: str, help_text: str, maker) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, maker)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        family = self._family(name, "counter", help, Counter)
        with self._lock:
            return family.child(_label_key(labels))

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        family = self._family(name, "gauge", help, Gauge)
        with self._lock:
            return family.child(_label_key(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        maker = (lambda: Histogram(bounds)) if bounds is not None else Histogram
        family = self._family(name, "histogram", help, maker)
        with self._lock:
            return family.child(_label_key(labels))

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------- export

    def snapshot(self) -> dict:
        """JSON-compatible dump: counters/gauges by labelled name,
        histograms with bucket lists and percentile summaries."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for family in self.families():
            for labels, metric in sorted(family.children.items()):
                full = family.name + _label_suffix(labels)
                if family.kind == "counter":
                    counters[full] = metric.value
                elif family.kind == "gauge":
                    gauges[full] = metric.value
                else:
                    entry = metric.summary()
                    exemplars = metric.exemplars()
                    entry["buckets"] = [
                        {"le": bound, "count": count}
                        if exemplar is None
                        else {
                            "le": bound,
                            "count": count,
                            "exemplar": exemplar,
                        }
                        for (bound, count), exemplar in zip(
                            metric.buckets(), exemplars
                        )
                    ]
                    histograms[full] = entry
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def __repr__(self):
        return f"MetricsRegistry({len(self._families)} families)"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4):

    ``# HELP``/``# TYPE`` headers, cumulative ``_bucket{le=...}`` series
    plus ``_sum``/``_count`` per histogram, one sample per line.
    """

    def fmt(value: float) -> str:
        if value == float("inf"):
            return "+Inf"
        return repr(value) if isinstance(value, float) else str(value)

    lines: list[str] = []
    for family in registry.families():
        if not family.children:
            # a family registered but never observed would emit a bare
            # # TYPE header with no samples — skip it entirely so the
            # exposition carries no dangling series
            continue
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, metric in sorted(family.children.items()):
            if family.kind in ("counter", "gauge"):
                lines.append(
                    f"{family.name}{_label_suffix(labels)} {fmt(metric.value)}"
                )
                continue
            for bound, count in metric.buckets():
                bucket_labels = labels + (("le", fmt(bound)),)
                lines.append(
                    f"{family.name}_bucket{_label_suffix(bucket_labels)} "
                    f"{count}"
                )
            suffix = _label_suffix(labels)
            lines.append(f"{family.name}_sum{suffix} {fmt(metric.sum)}")
            lines.append(f"{family.name}_count{suffix} {metric.count}")
    if not lines:
        # an empty registry exposes *nothing*: "\n" would be a blank
        # line, which strict exposition parsers reject
        return ""
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------- slow queries


class SlowQuery:
    """One slow-query log entry: the ask, its total time, its stages.

    When the ask ran inside a traced request (:mod:`repro.obs.context`)
    the entry carries its ``trace_id`` — a slow-query line is then one
    grep away from the full trace in the buffer or a JSONL export.
    """

    __slots__ = ("query", "duration_s", "stages", "counters", "trace_id")

    def __init__(
        self,
        query: str,
        duration_s: float,
        stages: Mapping[str, float],
        counters: Mapping[str, int],
        trace_id: Optional[str] = None,
    ):
        self.query = query
        self.duration_s = duration_s
        self.stages = dict(stages)
        self.counters = dict(counters)
        self.trace_id = trace_id

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "duration_s": self.duration_s,
            "stages": dict(self.stages),
            "counters": dict(self.counters),
            "trace_id": self.trace_id,
        }

    def __repr__(self):
        trace = f", trace={self.trace_id}" if self.trace_id else ""
        return (
            f"SlowQuery({self.query!r}, "
            f"{self.duration_s * 1e3:.3f}ms{trace})"
        )


class SlowQueryLog:
    """Bounded, thread-safe record of the slowest asks seen.

    Keeps at most *capacity* entries, always the slowest so far; asks
    faster than *threshold_ms* are never recorded. ``threshold_ms=0``
    records everything (until faster entries are displaced).
    """

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 32):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: list[SlowQuery] = []  # kept sorted slowest-first

    def record(
        self,
        query: str,
        duration_s: float,
        stages: Mapping[str, float],
        counters: Mapping[str, int],
        trace_id: Optional[str] = None,
    ) -> bool:
        """Record one ask; returns True iff the entry was kept."""
        if duration_s * 1e3 < self.threshold_ms:
            return False
        with self._lock:
            if (
                len(self._entries) >= self.capacity
                and duration_s <= self._entries[-1].duration_s
            ):
                return False
            entry = SlowQuery(query, duration_s, stages, counters, trace_id)
            self._entries.append(entry)
            self._entries.sort(key=lambda e: -e.duration_s)
            del self._entries[self.capacity :]
            return True

    def entries(self) -> list[SlowQuery]:
        """Snapshot of the kept entries, slowest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self):
        return len(self._entries)

    def __repr__(self):
        return (
            f"SlowQueryLog({len(self._entries)}/{self.capacity} entries, "
            f">= {self.threshold_ms:g} ms)"
        )


# ------------------------------------------------------------- engine glue

#: span-tree counters promoted to service counters on every ask
_PROMOTED_COUNTERS = (
    "tokens_matched",
    "relations_expanded",
    "seed_tuples",
    "joins_executed",
    "joins_skipped",
    "tuples_emitted",
    "paths_pushed",
    "paths_popped",
    "paths_admitted",
    "paths_pruned",
    "paragraphs_emitted",
)

#: stage spans whose durations get their own labelled histogram series
_STAGE_NAMES = (
    "match",
    "schema",
    "schema_generator",
    "database_generator",
    "translate",
    "cache",
    "build_index",
)


class EngineMetrics:
    """The engine-side façade: digests closed span trees into a
    :class:`MetricsRegistry` and a :class:`SlowQueryLog`.

    One instance may be shared by several engines (one service process,
    many shards) — everything underneath is thread-safe.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        slow_query_ms: Optional[float] = None,
        slow_log_capacity: int = 32,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slow_queries: Optional[SlowQueryLog] = (
            SlowQueryLog(slow_query_ms, slow_log_capacity)
            if slow_query_ms is not None
            else None
        )

    # --------------------------------------------------------- recording

    def observe_ask(
        self,
        root: Span,
        query_text: str,
        trace_id: Optional[str] = None,
    ) -> None:
        """Digest one closed ``ask`` (or ``ask_per_occurrence``) root.

        *trace_id* (defaulting to the active request context's, so
        engine call sites need no plumbing) lands as the exemplar on
        every histogram bucket this ask touches and on its slow-query
        entry."""
        if trace_id is None:
            trace_id = _current_trace_id()
        registry = self.registry
        registry.counter(
            "precis_asks_total", "précis queries answered"
        ).inc()
        registry.histogram(
            "precis_ask_seconds", "end-to-end ask latency"
        ).observe(root.duration_s, exemplar=trace_id)

        stages: dict[str, float] = {}
        for span, __ in root.walk():
            if span is root:
                continue
            if span.name in _STAGE_NAMES:
                stages[span.name] = stages.get(span.name, 0.0) + span.duration_s
                registry.histogram(
                    "precis_stage_seconds",
                    "per-stage latency",
                    stage=span.name,
                ).observe(span.duration_s, exemplar=trace_id)

        totals = root.total_counters()
        for name in _PROMOTED_COUNTERS:
            value = totals.get(name, 0)
            if value:
                registry.counter(
                    f"precis_{name}_total", f"total {name} across asks"
                ).inc(value)
        for layer, hit_key, miss_key in (
            ("plan", "cache_hit", "cache_miss"),
            ("answer", "answer_cache_hit", "answer_cache_miss"),
        ):
            for outcome, key in (("hit", hit_key), ("miss", miss_key)):
                value = totals.get(key, 0)
                if value:
                    registry.counter(
                        "precis_cache_requests_total",
                        "cache lookups by layer and outcome",
                        layer=layer,
                        outcome=outcome,
                    ).inc(value)
        invalidations = totals.get("cache_invalidation", 0)
        if invalidations:
            registry.counter(
                "precis_cache_invalidations_total",
                "cache entries discarded for a stale epoch token",
            ).inc(invalidations)

        if self.slow_queries is not None:
            self.slow_queries.record(
                query_text, root.duration_s, stages, totals,
                trace_id=trace_id,
            )

    def observe_index_build(self, root: Span) -> None:
        """Digest one closed ``build_index`` root span."""
        self.registry.histogram(
            "precis_stage_seconds", "per-stage latency", stage="build_index"
        ).observe(root.duration_s)
        totals = root.total_counters()
        for name in ("attributes_indexed", "values_indexed"):
            value = totals.get(name, 0)
            if value:
                self.registry.counter(
                    f"precis_{name}_total", f"total {name} across builds"
                ).inc(value)

    def observe_cache_stats(self, stats: Mapping[str, Mapping[str, int]]) -> None:
        """Mirror the engine's per-layer cache counters as gauges
        (cumulative engine-lifetime values, so ``set`` not ``inc``)."""
        for layer, counters in stats.items():
            for key, value in counters.items():
                self.registry.gauge(
                    "precis_cache_state",
                    "engine cache counters by layer",
                    layer=layer,
                    counter=key,
                ).set(value)

    # --------------------------------------------------------- export

    def snapshot(self) -> dict:
        """JSON-compatible snapshot: the registry plus the slow-query
        log (the ``--metrics-out`` payload)."""
        out = self.registry.snapshot()
        out["slow_queries"] = (
            [entry.to_dict() for entry in self.slow_queries.entries()]
            if self.slow_queries is not None
            else []
        )
        return out

    def prometheus(self) -> str:
        return prometheus_text(self.registry)

    def __repr__(self):
        return f"EngineMetrics({self.registry!r}, slow={self.slow_queries!r})"


class ServiceMetrics:
    """The serving-layer façade (:mod:`repro.service`): admission,
    shedding, deadline and retry series over a :class:`MetricsRegistry`.

    Shares a registry with :class:`EngineMetrics` so one Prometheus
    scrape (or one ``--metrics-out`` file) carries both the pipeline
    and the serving picture. Everything underneath is thread-safe; the
    facade itself holds no state beyond the registry.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: requests currently queued or executing (admission → response)
        self.queue_depth = self.registry.gauge(
            "precis_service_queue_depth",
            "requests admitted but not yet answered",
        )

    # --------------------------------------------------------- recording
    #
    # The optional *tenant* on the recorders below adds a tenant-labelled
    # series NEXT TO the unlabelled fleet series (never instead of it):
    # fleet dashboards keep their exact pre-tenant semantics, and the
    # per-tenant view only exists for requests that named a tenant.

    def admitted(self, tenant: Optional[str] = None) -> None:
        self.registry.counter(
            "precis_service_requests_total", "requests admitted to the queue"
        ).inc()
        if tenant is not None:
            self.registry.counter(
                "precis_service_tenant_requests_total",
                "requests admitted per tenant",
                tenant=tenant,
            ).inc()
        self.queue_depth.add(1)

    def shed(self, reason: str, tenant: Optional[str] = None) -> None:
        """A request refused without running (``reason``: ``"full"`` for
        queue overflow, ``"stale"`` for a deadline that expired while
        queued, ``"closed"`` for submission after shutdown,
        ``"tenant_quota"`` for a tenant over its in-flight slots)."""
        self.registry.counter(
            "precis_service_shed_total",
            "requests shed without running",
            reason=reason,
        ).inc()
        if tenant is not None:
            self.registry.counter(
                "precis_service_tenant_shed_total",
                "requests shed without running, per tenant",
                tenant=tenant,
                reason=reason,
            ).inc()

    def finished(self) -> None:
        self.queue_depth.add(-1)

    def queue_wait(
        self, seconds: float, trace_id: Optional[str] = None
    ) -> None:
        if trace_id is None:
            trace_id = _current_trace_id()
        self.registry.histogram(
            "precis_service_queue_wait_seconds",
            "time from admission to a worker picking the request up",
        ).observe(seconds, exemplar=trace_id)

    def service_time(
        self,
        seconds: float,
        tenant: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        """End-to-end request latency: admission to response. The
        request's trace id (explicit or from the active context) lands
        as the exemplar on the bucket this observation fills."""
        if trace_id is None:
            trace_id = _current_trace_id()
        self.registry.histogram(
            "precis_service_seconds",
            "end-to-end request latency including queueing",
        ).observe(seconds, exemplar=trace_id)
        if tenant is not None:
            self.registry.histogram(
                "precis_service_tenant_seconds",
                "end-to-end request latency per tenant",
                tenant=tenant,
            ).observe(seconds, exemplar=trace_id)

    def degraded(self, stage: str, tenant: Optional[str] = None) -> None:
        """An answer served partial because its deadline expired."""
        self.registry.counter(
            "precis_service_degraded_total",
            "answers served partial under an expired deadline",
            stage=stage,
        ).inc()
        if tenant is not None:
            self.registry.counter(
                "precis_service_tenant_degraded_total",
                "partial answers per tenant",
                tenant=tenant,
            ).inc()

    def timeout(self) -> None:
        self.registry.counter(
            "precis_service_timeouts_total",
            "requests whose deadline expired before or during execution",
        ).inc()

    def retried(self) -> None:
        self.registry.counter(
            "precis_service_retries_total",
            "transient storage failures retried",
        ).inc()

    def retries_exhausted(self) -> None:
        self.registry.counter(
            "precis_service_retry_exhausted_total",
            "requests failed after the retry budget ran out",
        ).inc()

    def failed(self, kind: str) -> None:
        self.registry.counter(
            "precis_service_failures_total",
            "requests that raised instead of answering",
            kind=kind,
        ).inc()

    # --------------------------------------------------------- export

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def prometheus(self) -> str:
        return prometheus_text(self.registry)

    def __repr__(self):
        return f"ServiceMetrics({self.registry!r})"


class FrontDoorMetrics:
    """The async front door's façade (:mod:`repro.service.frontdoor`):
    per-priority-class admission, coalescing, shedding and latency
    series over a :class:`MetricsRegistry`.

    Shares a registry with :class:`ServiceMetrics` (the front door
    passes the wrapped service's registry in), so one scrape carries
    the whole stack: engine stages, thread-pool admission, and the
    asyncio front door.

    Accounting granularity, deliberately mixed:

    * **per waiter** — ``requests``/``answered``/``degraded``/
      ``failed`` counters and the latency histogram: every caller that
      submitted, including coalesced followers, shows up once, so
      goodput is measured in user-visible answers;
    * **per logical execution** — ``executions`` and flight-level
      ``shed`` outcomes (``full``, ``stale``, ``preempted``,
      ``tenant_quota``, ``closed``): a shed flight with ten coalesced
      waiters failed *once* upstream and counts once, matching the
      serving layer's own shed counters. The single waiter-level shed
      is a follower that outlived its own deadline while waiting
      (reason ``stale_follower``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: logical flights admitted but not yet resolved (pending or
        #: executing)
        self.pending = self.registry.gauge(
            "precis_frontdoor_pending",
            "front-door flights admitted but not yet resolved",
        )

    # --------------------------------------------------------- recording

    def admitted(self, priority: str) -> None:
        self.registry.counter(
            "precis_frontdoor_requests_total",
            "requests submitted to the front door",
            priority=priority,
        ).inc()

    def coalesced(self, priority: str) -> None:
        """A follower merged into an identical in-flight execution."""
        self.registry.counter(
            "precis_frontdoor_coalesced_total",
            "requests coalesced into an in-flight identical ask",
            priority=priority,
        ).inc()

    def executed(self) -> None:
        """One logical flight handed to the serving layer."""
        self.registry.counter(
            "precis_frontdoor_executions_total",
            "logical engine executions dispatched",
        ).inc()

    def shed(self, reason: str, priority: str) -> None:
        self.registry.counter(
            "precis_frontdoor_shed_total",
            "front-door requests shed without an answer",
            reason=reason,
            priority=priority,
        ).inc()

    def answered(self, priority: str, degraded: bool = False) -> None:
        self.registry.counter(
            "precis_frontdoor_answered_total",
            "front-door requests answered (per waiter)",
            priority=priority,
        ).inc()
        if degraded:
            self.registry.counter(
                "precis_frontdoor_degraded_total",
                "front-door answers served partial",
                priority=priority,
            ).inc()

    def failed(self, priority: str, kind: str) -> None:
        self.registry.counter(
            "precis_frontdoor_failures_total",
            "front-door requests that raised instead of answering",
            priority=priority,
            kind=kind,
        ).inc()

    def latency(
        self,
        seconds: float,
        priority: str,
        trace_id: Optional[str] = None,
    ) -> None:
        """Submit-to-resolution latency of one waiter."""
        if trace_id is None:
            trace_id = _current_trace_id()
        self.registry.histogram(
            "precis_frontdoor_seconds",
            "front-door request latency, submit to resolution",
            priority=priority,
        ).observe(seconds, exemplar=trace_id)

    # --------------------------------------------------------- export

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def prometheus(self) -> str:
        return prometheus_text(self.registry)

    def __repr__(self):
        return f"FrontDoorMetrics({self.registry!r})"


def write_metrics(
    metrics: EngineMetrics,
    target: Union[str, TextIO],
    format: str = "json",
) -> None:
    """Write one exporter payload to a path or open stream."""
    if format == "json":
        payload = json.dumps(metrics.snapshot(), indent=2, sort_keys=True)
    elif format == "prometheus":
        payload = metrics.prometheus()
    else:
        raise ValueError(f"unknown metrics format {format!r}")
    if hasattr(target, "write"):
        target.write(payload + ("" if payload.endswith("\n") else "\n"))
    else:
        with open(target, "w", encoding="utf-8") as stream:
            stream.write(payload + ("" if payload.endswith("\n") else "\n"))
