"""Hot-path profiling: where does an ask actually spend its time?

Two complementary harnesses over one *stage map* (module → named
pipeline stage, the same names the metrics histograms use):

* :class:`StackSampler` — a statistical profiler. A background thread
  snapshots every live thread's stack via ``sys._current_frames()`` at
  a fixed interval and attributes each busy sample to the pipeline
  stage of its innermost ``repro`` frame; builtin/stdlib leaf time
  therefore rolls up to the repro code that called it, which is what a
  "vectorize the hot path" decision needs. Samples parked in known
  blocking waits (queue.get, lock/condition wait, future.result) are
  classified ``idle`` and excluded from attribution — a worker waiting
  for work is not a hot spot. Zero per-call overhead on the measured
  code; cost is one stack walk per thread per interval.
* :class:`ScopedProfiler` — a deterministic ``cProfile`` harness with
  span-scoped enable/disable, for when exact call counts matter more
  than low overhead (single-ask investigations, not serving
  benchmarks). Its breakdown aggregates self-time (``tottime``) by the
  same stage map.

Both report the same shape: ``{"samples"/"seconds", "stages": {...},
"fractions": {...}, "attributed_fraction": f}`` where
``attributed_fraction`` is the share of busy time landing in *named
pipeline stages* — the quantity ``serve-bench --profile`` gates and
writes to ``BENCH_precis.json``.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import threading
import time
from typing import Optional

__all__ = [
    "PIPELINE_STAGES",
    "classify_path",
    "classify_frame",
    "StackSampler",
    "ScopedProfiler",
]

#: (path fragment, stage) — first match wins, so more specific
#: fragments come first. Fragments use '/'-normalized module paths.
_STAGE_RULES: tuple[tuple[str, str], ...] = (
    ("repro/core/database_generator", "database_generator"),
    ("repro/core/schema_generator", "schema_generator"),
    ("repro/core/result_schema", "schema_generator"),
    ("repro/graph", "schema_generator"),
    ("repro/text", "match"),
    ("repro/relational", "storage"),
    ("repro/storage", "storage"),
    ("repro/nlg", "translate"),
    ("repro/cache", "cache"),
    ("repro/core/engine", "engine"),
    ("repro/core", "engine"),
    ("repro/service", "service"),
    ("repro/obs", "observability"),
    ("repro/", "engine"),
)

#: stages that count as "named pipeline stages" for the attribution
#: gate — the work an ask is made of, as opposed to harness overhead
PIPELINE_STAGES = frozenset(
    {
        "match",
        "schema_generator",
        "database_generator",
        "storage",
        "translate",
        "cache",
        "engine",
    }
)

#: (filename fragment, function name) leaves that mean "parked, not
#: working" — attributing these would make every idle worker look hot
_IDLE_LEAVES: tuple[tuple[str, str], ...] = (
    ("threading", "wait"),
    ("threading", "_wait_for_tstate_lock"),
    ("threading", "join"),
    ("queue", "get"),
    ("queue", "put"),
    ("concurrent/futures", "result"),
    ("socket", "accept"),
    ("selectors", "select"),
)


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def classify_path(filename: str) -> Optional[str]:
    """The pipeline stage of one source file, or None outside repro."""
    path = _normalize(filename)
    marker = path.rfind("/repro/")
    if marker < 0:
        return None
    tail = path[marker + 1 :]  # "repro/..."
    for fragment, stage in _STAGE_RULES:
        if tail.startswith(fragment):
            return stage
    return "engine"


def _is_idle_leaf(frame) -> bool:
    path = _normalize(frame.f_code.co_filename)
    name = frame.f_code.co_name
    for fragment, function in _IDLE_LEAVES:
        if function == name and fragment in path:
            return True
    return False


def classify_frame(frame) -> str:
    """The stage of one captured stack: ``idle`` for parked threads,
    else the stage of the innermost repro frame, else ``runtime``."""
    if _is_idle_leaf(frame):
        return "idle"
    current = frame
    while current is not None:
        stage = classify_path(current.f_code.co_filename)
        if stage is not None:
            return stage
        current = current.f_back
    return "runtime"


def _breakdown(stages: dict[str, float], unit: str) -> dict:
    """The common report shape over per-stage weights."""
    busy = {k: v for k, v in stages.items() if k != "idle"}
    total_busy = sum(busy.values())
    attributed = sum(
        v for k, v in busy.items() if k in PIPELINE_STAGES
    )
    return {
        unit: sum(stages.values()),
        "stages": dict(sorted(stages.items(), key=lambda kv: -kv[1])),
        "fractions": (
            {k: v / total_busy for k, v in busy.items()}
            if total_busy > 0
            else {}
        ),
        "attributed_fraction": (
            attributed / total_busy if total_busy > 0 else 0.0
        ),
    }


class StackSampler:
    """Statistical whole-process profiler (see module docstring).

    >>> sampler = StackSampler(interval_s=0.005)
    >>> sampler.start()
    >>> ...   # drive the workload
    >>> report = sampler.stop()
    >>> report["attributed_fraction"]   # share of busy samples in
    0.93                                # named pipeline stages
    """

    def __init__(self, interval_s: float = 0.002):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self._lock = threading.Lock()
        self._stages: dict[str, float] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.is_set():
            frames = sys._current_frames()
            with self._lock:
                for ident, frame in frames.items():
                    if ident == own:
                        continue
                    stage = classify_frame(frame)
                    self._stages[stage] = self._stages.get(stage, 0) + 1
                    self._samples += 1
            del frames  # drop frame references promptly
            self._stop.wait(self.interval_s)

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._thread = threading.Thread(
            target=self._run, name="precis-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling and return the breakdown."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        return self.breakdown()

    def breakdown(self) -> dict:
        with self._lock:
            return _breakdown(dict(self._stages), "samples")

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self):
        running = "running" if self._thread is not None else "stopped"
        return f"StackSampler({running}, {self._samples} samples)"


class ScopedProfiler:
    """Deterministic cProfile harness with scoped enable.

    ``with profiler.profile():`` turns cProfile on for exactly that
    region (a span, an ask, a generator loop) in the calling thread;
    regions accumulate into one profile until :meth:`breakdown`.
    """

    def __init__(self):
        self._profile = cProfile.Profile()
        self._lock = threading.Lock()

    class _Scope:
        __slots__ = ("_owner",)

        def __init__(self, owner: "ScopedProfiler"):
            self._owner = owner

        def __enter__(self):
            self._owner._profile.enable()
            return self._owner

        def __exit__(self, *exc_info):
            self._owner._profile.disable()
            return False

    def profile(self) -> "ScopedProfiler._Scope":
        return ScopedProfiler._Scope(self)

    def breakdown(self, top: int = 20) -> dict:
        """Self-time by stage plus the *top* hottest repro functions."""
        stats = pstats.Stats(self._profile)
        stages: dict[str, float] = {}
        functions: list[tuple[float, str]] = []
        for (filename, lineno, name), entry in stats.stats.items():
            self_time = entry[2]  # tottime
            if self_time <= 0:
                continue
            stage = classify_path(filename)
            if stage is None:
                stages["runtime"] = stages.get("runtime", 0.0) + self_time
                continue
            stages[stage] = stages.get(stage, 0.0) + self_time
            functions.append(
                (self_time, f"{stage}: {name} ({_short(filename)}:{lineno})")
            )
        functions.sort(key=lambda pair: -pair[0])
        out = _breakdown(stages, "seconds")
        out["hottest"] = [
            {"self_s": seconds, "function": label}
            for seconds, label in functions[:top]
        ]
        return out

    def __repr__(self):
        return "ScopedProfiler(cProfile)"


def _short(filename: str) -> str:
    path = _normalize(filename)
    marker = path.rfind("/repro/")
    return path[marker + 1 :] if marker >= 0 else path
