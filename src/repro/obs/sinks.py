"""Trace sinks — where closed root spans go.

A sink is any object with ``emit(span)``. Three are provided:

* :class:`InMemorySink` — keeps spans in a list; the test / programmatic
  default.
* :class:`JsonLinesSink` — one JSON object per root span per line, for
  offline analysis (``jq``-able); accepts an open stream or a path.
* :class:`TableSink` — renders each root span as an aligned
  human-readable table (the ``--stats`` CLI view).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, TextIO, Union

from .tracer import Span

__all__ = ["InMemorySink", "JsonLinesSink", "TableSink", "format_span_table"]


class InMemorySink:
    """Collects root spans in order; the default sink for tests."""

    def __init__(self):
        self.spans: list[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()

    @property
    def last(self) -> Optional[Span]:
        return self.spans[-1] if self.spans else None

    def find(self, name: str) -> Optional[Span]:
        """First span named *name*, searching every root depth-first."""
        for root in self.spans:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def counter_total(self, name: str) -> int:
        """Sum of counter *name* across every recorded root span."""
        return sum(root.total_counters().get(name, 0) for root in self.spans)

    def __len__(self):
        return len(self.spans)

    def __repr__(self):
        return f"InMemorySink({len(self.spans)} spans)"


class JsonLinesSink:
    """Writes one sorted-key JSON line per root span.

    Accepts an already-open text stream (kept open) or a filesystem
    path (opened for append; call :meth:`close` or use as a context
    manager).
    """

    def __init__(self, target: Union[TextIO, str, Path]):
        if isinstance(target, (str, Path)):
            self._stream: TextIO = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def emit(self, span: Span) -> None:
        self._stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def format_span_table(span: Span) -> str:
    """An aligned stage/time/counter table for one span tree."""
    rows: list[tuple[str, str, str]] = []
    for node, depth in span.walk():
        counters = " ".join(
            f"{key}={value}" for key, value in sorted(node.counters.items())
        )
        rows.append(
            ("  " * depth + node.name, f"{node.duration_s * 1e3:.3f} ms", counters)
        )
    header = ("stage", "time", "counters")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(3)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    totals = span.total_counters()
    if totals:
        lines.append(
            "totals: "
            + " ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        )
    return "\n".join(lines)


class TableSink:
    """Prints each root span as a human-readable table."""

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream

    def emit(self, span: Span) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        print(format_span_table(span), file=stream)
        print("", file=stream)
