"""repro.obs — observability for the précis pipeline.

The measurement substrate every scaling/perf PR builds on: a
:class:`Tracer` with nestable stage spans (wall-clock start + monotonic
duration), typed integer counters, and pluggable sinks; plus
:class:`QueryStats`, the per-query digest the engine hangs on
:attr:`repro.core.answer.PrecisAnswer.stats`.

The whole subsystem is opt-in: every instrumented call site defaults to
:data:`NULL_TRACER`, a shared no-op whose cost is one attribute check,
so untraced runs are byte-identical to the uninstrumented engine.

Quickstart::

    from repro import PrecisEngine
    from repro.obs import InMemorySink, Tracer

    sink = InMemorySink()
    engine = PrecisEngine(db, tracer=Tracer([sink]))
    answer = engine.ask('"Woody Allen"')
    answer.stats.counter("tuples_emitted")   # == answer.total_tuples()
    answer.stats.stage("match").duration_ms  # inverted-index time

On top of per-query tracing sit the *service-level* layers:
:mod:`repro.obs.metrics` (a thread-safe :class:`MetricsRegistry` of
counters/gauges/log-bucketed histograms fed by the engine on every ask,
a :class:`SlowQueryLog`, and Prometheus/JSON exporters) and
:mod:`repro.obs.explain` (the structured :class:`Explanation`
provenance record attached to every answer — why each relation and
tuple batch is in the précis, and which constraint bounded it).

See ``docs/observability.md`` for the counter glossary and the span
layout of each pipeline stage.
"""

from .context import (
    RequestTrace,
    TraceBuffer,
    TraceContext,
    activate,
    chrome_trace_events,
    current_context,
    current_trace_id,
    deactivate,
    validate_chrome_trace,
)
from .explain import (
    BatchProvenance,
    CacheProvenance,
    Explanation,
    RelationProvenance,
    SchemaStop,
)
from .metrics import (
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
    FrontDoorMetrics,
    SlowQuery,
    SlowQueryLog,
    prometheus_text,
    write_metrics,
)
from .profile import ScopedProfiler, StackSampler
from .sinks import InMemorySink, JsonLinesSink, TableSink, format_span_table
from .slo import SLObjective, SLOTracker
from .stats import COUNTER_GLOSSARY, QueryStats, StageStats, format_stats
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "InMemorySink",
    "JsonLinesSink",
    "TableSink",
    "format_span_table",
    "QueryStats",
    "StageStats",
    "format_stats",
    "COUNTER_GLOSSARY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EngineMetrics",
    "ServiceMetrics",
    "FrontDoorMetrics",
    "SlowQuery",
    "SlowQueryLog",
    "prometheus_text",
    "write_metrics",
    "Explanation",
    "RelationProvenance",
    "SchemaStop",
    "BatchProvenance",
    "CacheProvenance",
    "TraceContext",
    "RequestTrace",
    "TraceBuffer",
    "current_context",
    "current_trace_id",
    "activate",
    "deactivate",
    "chrome_trace_events",
    "validate_chrome_trace",
    "SLObjective",
    "SLOTracker",
    "StackSampler",
    "ScopedProfiler",
]
