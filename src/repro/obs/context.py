"""Request-scoped trace context and the sampled trace buffer.

This is the correlation layer between the two observability views that
existed before it: per-stage :class:`~repro.obs.tracer.Span` trees (the
engine's view of one ask) and fleet-wide
:class:`~repro.obs.metrics.MetricsRegistry` aggregates (the service's
view of all of them). It answers the production question neither can
alone: *which request* put that observation in that p99 bucket, and
*why was it slow*.

* :class:`TraceContext` — minted by :meth:`repro.service.PrecisService.
  submit` per request (trace_id, tenant, priority, query, deadline) and
  propagated across the admission-queue boundary into the worker
  thread. Inside the worker it is *activated* into a
  :mod:`contextvars` variable so any code downstream — the engine, the
  metrics façade, the slow-query log — can read
  :func:`current_trace_id` without an API change at every call site.
* :class:`RequestTrace` — one completed (or shed) request: its context,
  outcome, queue wait, retry count, and the full span tree from
  submit → queue → retry attempts → engine stages → storage.
* :class:`TraceBuffer` — a bounded ring of kept traces with *head
  sampling plus always-keep triggers*: normal requests are admitted at
  ``sample_rate`` (deterministically, from the trace id), while
  degraded / shed / retried / failed / slow requests are **always**
  kept. Under load the buffer is therefore tail-biased: the traces you
  have are the ones you need.
* Exporters — JSON-lines (:meth:`TraceBuffer.export_jsonl`, the durable
  capture format) and Chrome trace-event JSON
  (:func:`chrome_trace_events`, loadable in ``chrome://tracing`` /
  Perfetto), plus :func:`validate_chrome_trace`, the structural checker
  CI runs against exported files.

Everything here is dependency-free within the package (it imports only
:mod:`repro.obs.tracer`), so the service, the engine and the CLI can
all use it without cycles.
"""

from __future__ import annotations

import contextvars
import json
import secrets
import threading
import time
from collections import deque
from typing import Iterable, Optional, TextIO, Union

from .tracer import Span

__all__ = [
    "TraceContext",
    "RequestTrace",
    "TraceBuffer",
    "current_context",
    "current_trace_id",
    "activate",
    "deactivate",
    "synthetic_span",
    "load_jsonl",
    "chrome_trace_events",
    "validate_chrome_trace",
]

#: the active request's context in this thread of execution (None when
#: serving untraced traffic — i.e. no TraceBuffer configured)
_CURRENT: contextvars.ContextVar[Optional["TraceContext"]] = (
    contextvars.ContextVar("precis_trace_context", default=None)
)


def current_context() -> Optional["TraceContext"]:
    """The request context active in this thread, or None."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """The active request's trace id, or None outside a traced request."""
    ctx = _CURRENT.get()
    return ctx.trace_id if ctx is not None else None


def activate(context: "TraceContext") -> contextvars.Token:
    """Install *context* as the thread's active request; returns the
    token for :func:`deactivate`. Workers call this after dequeue so
    everything the request touches downstream sees its trace id."""
    return _CURRENT.set(context)


def deactivate(token: contextvars.Token) -> None:
    _CURRENT.reset(token)


class TraceContext:
    """Identity and admission-time facts of one traced request.

    Minted in :meth:`~repro.service.PrecisService.submit` (the caller's
    thread), carried on the queued request object, and activated in the
    worker thread — the one object that crosses the queue boundary and
    ties both sides of the trace together.
    """

    __slots__ = (
        "trace_id",
        "tenant",
        "priority",
        "query",
        "submitted_wall",
        "submitted_mono",
        "deadline_s",
    )

    def __init__(
        self,
        trace_id: str,
        query: str,
        tenant: Optional[str] = None,
        priority: str = "interactive",
        submitted_wall: Optional[float] = None,
        submitted_mono: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ):
        self.trace_id = trace_id
        self.query = query
        self.tenant = tenant
        self.priority = priority
        self.submitted_wall = (
            submitted_wall if submitted_wall is not None else time.time()
        )
        self.submitted_mono = (
            submitted_mono
            if submitted_mono is not None
            else time.perf_counter()
        )
        #: seconds of deadline budget at admission (None = no deadline)
        self.deadline_s = deadline_s

    @classmethod
    def mint(
        cls,
        query: str,
        tenant: Optional[str] = None,
        priority: str = "interactive",
        deadline_s: Optional[float] = None,
    ) -> "TraceContext":
        """A fresh context with a random 64-bit hex trace id."""
        return cls(
            trace_id=secrets.token_hex(8),
            query=query,
            tenant=tenant,
            priority=priority,
            deadline_s=deadline_s,
        )

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "query": self.query,
            "tenant": self.tenant,
            "priority": self.priority,
            "submitted_wall": self.submitted_wall,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(
            trace_id=data["trace_id"],
            query=data.get("query", ""),
            tenant=data.get("tenant"),
            priority=data.get("priority", "interactive"),
            submitted_wall=data.get("submitted_wall"),
            deadline_s=data.get("deadline_s"),
        )

    def __repr__(self):
        tenant = f", tenant={self.tenant!r}" if self.tenant else ""
        return f"TraceContext({self.trace_id}{tenant}, {self.priority})"


# ---------------------------------------------------------------- span serde
#
# Span.to_dict() records durations but not sibling *offsets*, which the
# Chrome exporter needs to lay children out inside their parent. These
# two helpers serialize a tree with offsets relative to the tree's
# root, and rebuild Span objects whose monotonic fields reproduce the
# original layout — so a trace survives a JSONL round trip and still
# renders correctly.


def _span_to_dict(span: Span, root: Span) -> dict:
    return {
        "name": span.name,
        "offset_s": span._mono_start - root._mono_start,
        "duration_s": span.duration_s,
        "wall_start": span.wall_start,
        "counters": dict(span.counters),
        "children": [_span_to_dict(child, root) for child in span.children],
    }


def _span_from_dict(data: dict) -> Span:
    span = Span(data["name"])
    offset = float(data.get("offset_s", 0.0))
    span._mono_start = offset
    span._mono_end = offset + float(data.get("duration_s", 0.0))
    span.wall_start = float(data.get("wall_start", 0.0))
    span.counters = dict(data.get("counters", {}))
    span.children = [_span_from_dict(child) for child in data["children"]]
    return span


def synthetic_span(
    name: str,
    wall_start: float,
    duration_s: float,
    mono_start: float = 0.0,
    counters: Optional[dict] = None,
) -> Span:
    """A closed span with explicit times — for regions the tracer never
    saw live (the queue wait, a shed decision made in the caller)."""
    span = Span(name)
    span.wall_start = wall_start
    span._mono_start = mono_start
    span._mono_end = mono_start + max(duration_s, 0.0)
    if counters:
        span.counters.update(counters)
    return span


# ------------------------------------------------------------- request traces

#: outcomes whose traces are always kept regardless of the sample rate
_TRIGGER_OUTCOMES = frozenset(
    {
        "degraded",
        "failed",
        "shed_full",
        "shed_stale",
        "shed_closed",
        "shed_tenant_quota",
    }
)


class RequestTrace:
    """One request's complete story: context, outcome, span tree."""

    __slots__ = (
        "context",
        "root",
        "outcome",
        "duration_s",
        "queue_wait_s",
        "retries",
        "degraded_stage",
        "error",
        "worker",
        "coalesced_into",
    )

    def __init__(
        self,
        context: TraceContext,
        root: Optional[Span],
        outcome: str,
        duration_s: float = 0.0,
        queue_wait_s: float = 0.0,
        retries: int = 0,
        degraded_stage: Optional[str] = None,
        error: Optional[str] = None,
        worker: Optional[str] = None,
        coalesced_into: Optional[str] = None,
    ):
        self.context = context
        self.root = root
        self.outcome = outcome
        self.duration_s = duration_s
        self.queue_wait_s = queue_wait_s
        self.retries = retries
        self.degraded_stage = degraded_stage
        self.error = error
        self.worker = worker
        #: trace id of the leader execution this request was coalesced
        #: into (async front door); None for uncoalesced requests
        self.coalesced_into = coalesced_into

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    def triggered(self, slow_s: Optional[float] = None) -> bool:
        """True when an always-keep trigger fired: a non-answered
        outcome, a retried request, or (when *slow_s* is set) a slow
        one."""
        if self.outcome in _TRIGGER_OUTCOMES:
            return True
        if self.retries > 0:
            return True
        if slow_s is not None and self.duration_s >= slow_s:
            return True
        return False

    def stage_names(self) -> list[str]:
        """Depth-first span names — the shape of the trace tree."""
        if self.root is None:
            return []
        return [span.name for span, __ in self.root.walk()]

    def to_dict(self) -> dict:
        out = self.context.to_dict()
        out.update(
            {
                "outcome": self.outcome,
                "duration_s": self.duration_s,
                "queue_wait_s": self.queue_wait_s,
                "retries": self.retries,
                "degraded_stage": self.degraded_stage,
                "error": self.error,
                "worker": self.worker,
                "coalesced_into": self.coalesced_into,
                "root": (
                    _span_to_dict(self.root, self.root)
                    if self.root is not None
                    else None
                ),
            }
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RequestTrace":
        root = data.get("root")
        return cls(
            context=TraceContext.from_dict(data),
            root=_span_from_dict(root) if root is not None else None,
            outcome=data.get("outcome", "answered"),
            duration_s=float(data.get("duration_s", 0.0)),
            queue_wait_s=float(data.get("queue_wait_s", 0.0)),
            retries=int(data.get("retries", 0)),
            degraded_stage=data.get("degraded_stage"),
            error=data.get("error"),
            worker=data.get("worker"),
            coalesced_into=data.get("coalesced_into"),
        )

    def __repr__(self):
        return (
            f"RequestTrace({self.trace_id}, {self.outcome}, "
            f"{self.duration_s * 1e3:.3f}ms, retries={self.retries})"
        )


class TraceBuffer:
    """Bounded, thread-safe ring of kept request traces.

    Capture is always on when a buffer is configured; *admission* is
    what is sampled. Normal (answered, un-retried, fast) traces are
    head-sampled at ``sample_rate``, deterministically from the trace
    id, so a given request is either in or out regardless of buffer
    state. Triggered traces — degraded, shed, failed, retried, or
    slower than ``slow_ms`` — bypass sampling entirely and are always
    kept (tail-biased capture). When the ring is full the oldest trace
    falls out.
    """

    #: sampling resolution: the trace-id hash is reduced to this space
    _SAMPLE_SPACE = 1_000_000

    def __init__(
        self,
        capacity: int = 256,
        sample_rate: float = 0.1,
        slow_ms: Optional[float] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._traces: deque[RequestTrace] = deque(maxlen=capacity)
        self._offered = 0
        self._kept_sampled = 0
        self._kept_triggered = 0

    # --------------------------------------------------------- admission

    def sampled(self, trace_id: str) -> bool:
        """The head-sampling decision for *trace_id* — deterministic, so
        retries of the same request agree with the original."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        bucket = int(trace_id, 16) % self._SAMPLE_SPACE
        return bucket < self.sample_rate * self._SAMPLE_SPACE

    def offer(self, trace: RequestTrace) -> bool:
        """Admit *trace* if triggered or head-sampled; returns kept?"""
        slow_s = self.slow_ms / 1e3 if self.slow_ms is not None else None
        triggered = trace.triggered(slow_s)
        keep = triggered or self.sampled(trace.trace_id)
        with self._lock:
            self._offered += 1
            if keep:
                if triggered:
                    self._kept_triggered += 1
                else:
                    self._kept_sampled += 1
                self._traces.append(trace)
        return keep

    # --------------------------------------------------------- queries

    def traces(self) -> list[RequestTrace]:
        """Snapshot of kept traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def find(self, trace_id: str) -> Optional[RequestTrace]:
        with self._lock:
            for trace in self._traces:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "offered": self._offered,
                "kept": len(self._traces),
                "kept_sampled": self._kept_sampled,
                "kept_triggered": self._kept_triggered,
                "capacity": self.capacity,
                "sample_rate": self.sample_rate,
            }

    def __len__(self):
        return len(self._traces)

    # --------------------------------------------------------- export

    def export_jsonl(self, target: Union[str, TextIO]) -> int:
        """One JSON document per line per kept trace; returns the count."""
        traces = self.traces()
        if hasattr(target, "write"):
            for trace in traces:
                target.write(json.dumps(trace.to_dict(), sort_keys=True))
                target.write("\n")
        else:
            with open(target, "w", encoding="utf-8") as stream:
                for trace in traces:
                    stream.write(json.dumps(trace.to_dict(), sort_keys=True))
                    stream.write("\n")
        return len(traces)

    def to_chrome(self) -> dict:
        return chrome_trace_events(self.traces())

    def __repr__(self):
        return (
            f"TraceBuffer({len(self._traces)}/{self.capacity} kept, "
            f"rate={self.sample_rate:g})"
        )


def load_jsonl(source: Union[str, TextIO]) -> list[RequestTrace]:
    """Read traces back from :meth:`TraceBuffer.export_jsonl` output."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
    return [
        RequestTrace.from_dict(json.loads(line))
        for line in lines
        if line.strip()
    ]


# ------------------------------------------------------- chrome trace export


def _emit_span_events(
    span: Span,
    begin_us: float,
    end_us: float,
    pid: int,
    tid: int,
    events: list[dict],
) -> None:
    """B/E pairs for *span* clamped into [begin_us, end_us], children
    nested recursively. Clamping guarantees stack discipline even when
    wall/monotonic clocks of synthesized spans disagree slightly."""
    events.append(
        {
            "ph": "B",
            "name": span.name,
            "cat": "precis",
            "ts": begin_us,
            "pid": pid,
            "tid": tid,
            "args": {"counters": dict(span.counters)}
            if span.counters
            else {},
        }
    )
    base = span._mono_start
    for child in span.children:
        child_begin = begin_us + (child._mono_start - base) * 1e6
        child_end = child_begin + child.duration_s * 1e6
        child_begin = min(max(child_begin, begin_us), end_us)
        child_end = min(max(child_end, child_begin), end_us)
        _emit_span_events(child, child_begin, child_end, pid, tid, events)
    events.append(
        {
            "ph": "E",
            "name": span.name,
            "cat": "precis",
            "ts": end_us,
            "pid": pid,
            "tid": tid,
        }
    )


def chrome_trace_events(
    traces: Iterable[RequestTrace], pid: int = 1
) -> dict:
    """Render traces as a Chrome trace-event document.

    Each request gets its own ``tid`` row (named by trace id, outcome
    and worker via thread_name metadata), so concurrent requests —
    whose queue spans overlap their neighbours' execution in real time
    — never interleave B/E events on one stack. ``ts`` is microseconds
    since the earliest submit among the exported traces, and the event
    list is sorted by ``ts`` (stable, so nesting order survives ties).
    """
    traces = [t for t in traces if t.root is not None]
    events: list[dict] = []
    if traces:
        origin = min(t.root.wall_start for t in traces)
        for index, trace in enumerate(traces):
            tid = index + 1
            label = f"{trace.trace_id[:8]} {trace.outcome}"
            if trace.worker:
                label += f" @{trace.worker}"
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
            begin_us = max((trace.root.wall_start - origin) * 1e6, 0.0)
            end_us = begin_us + trace.root.duration_s * 1e6
            _emit_span_events(
                trace.root, begin_us, end_us, pid, tid, events
            )
    events.sort(key=lambda event: event["ts"])  # stable: ties keep order
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural problems of a Chrome trace-event document (empty list
    = valid): sorted ``ts``, per-(pid, tid) B/E stack discipline with
    matching names, pid/tid/ts present on every event."""
    problems: list[str] = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["document is not a dict with a traceEvents list"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_ts: Optional[float] = None
    stacks: dict[tuple, list[str]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        phase = event.get("ph")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"event {index} ts {ts} < previous ts {last_ts} "
                    "(not sorted)"
                )
            last_ts = ts
        if phase in ("B", "E"):
            if "name" not in event:
                problems.append(f"event {index} ({phase}) missing name")
                continue
            key = (event.get("pid"), event.get("tid"))
            stack = stacks.setdefault(key, [])
            if phase == "B":
                stack.append(event["name"])
            else:
                if not stack:
                    problems.append(
                        f"event {index}: E {event['name']!r} with no "
                        f"open B on pid/tid {key}"
                    )
                elif stack[-1] != event["name"]:
                    problems.append(
                        f"event {index}: E {event['name']!r} does not "
                        f"match open B {stack[-1]!r} on pid/tid {key}"
                    )
                    stack.pop()
                else:
                    stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(
                f"pid/tid {key}: {len(stack)} unclosed B event(s): {stack}"
            )
    return problems
