"""Per-query statistics distilled from a span tree.

:class:`QueryStats` is the programmatic face of one traced query — the
object hung on :attr:`repro.core.answer.PrecisAnswer.stats`: a flat,
ordered list of :class:`StageStats` (one per span, with nesting depth),
the root duration, and the counter totals aggregated over the whole
tree. :func:`format_stats` renders it as the table the CLI's
``--stats`` flag prints.

:data:`COUNTER_GLOSSARY` is the canonical counter vocabulary; the
engine only ever emits these names (plus the odd extra documented at
its call site), so dashboards and tests can key on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .tracer import Span

__all__ = ["StageStats", "QueryStats", "format_stats", "COUNTER_GLOSSARY"]


#: canonical counter names -> meaning (see docs/observability.md)
COUNTER_GLOSSARY: dict[str, str] = {
    "tokens_matched": "query tokens that matched at least one tuple",
    "relations_expanded": "relations admitted into the result schema G'",
    "paths_pruned": "candidate paths cut by a terminal degree failure",
    "paths_pushed": "paths pushed onto the schema generator's queue",
    "paths_popped": "paths popped off the schema generator's queue",
    "paths_admitted": "projection paths admitted into G'",
    "seed_tuples": "tuples seeded from the inverted-index matches",
    "joins_executed": "G' join edges executed by the database generator",
    "joins_skipped": "G' join edges skipped (no driving values / budget)",
    "tuples_emitted": "tuples deposited into the answer database",
    "cache_hit": "plan-cache hits (result schema served from cache)",
    "cache_miss": "plan-cache misses (schema was generated anew)",
    "answer_cache_hit": "answer-cache hits (whole ask short-circuited)",
    "answer_cache_miss": "answer-cache misses (pipeline ran in full)",
    "cache_invalidation": "cache entries discarded for a stale epoch token",
    "paragraphs_emitted": "narrative paragraphs produced by the translator",
    "attributes_indexed": "(relation, attribute) pairs indexed",
    "values_indexed": "non-NULL attribute values added to the index",
}


@dataclass(frozen=True)
class StageStats:
    """One pipeline stage: its own wall time and its own counters."""

    name: str
    depth: int
    duration_s: float
    counters: Mapping[str, int] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3


@dataclass(frozen=True)
class QueryStats:
    """Everything one traced query run measured."""

    stages: tuple[StageStats, ...]
    duration_s: float
    counters: Mapping[str, int]

    @classmethod
    def from_span(cls, root: Span) -> "QueryStats":
        stages = tuple(
            StageStats(
                name=span.name,
                depth=depth,
                duration_s=span.duration_s,
                counters=dict(span.counters),
            )
            for span, depth in root.walk()
        )
        return cls(
            stages=stages,
            duration_s=root.duration_s,
            counters=root.total_counters(),
        )

    # ------------------------------------------------------------- queries

    def counter(self, name: str, default: int = 0) -> int:
        """Aggregated value of one counter across all stages."""
        return self.counters.get(name, default)

    def stage(self, name: str) -> Optional[StageStats]:
        """First stage with that name, in pipeline order."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "counters": dict(self.counters),
            "stages": [
                {
                    "name": stage.name,
                    "depth": stage.depth,
                    "duration_s": stage.duration_s,
                    "counters": dict(stage.counters),
                }
                for stage in self.stages
            ],
        }

    def __repr__(self):
        return (
            f"QueryStats({len(self.stages)} stages, "
            f"{self.duration_s * 1e3:.3f}ms, {len(self.counters)} counters)"
        )


def format_stats(stats: QueryStats) -> str:
    """The per-stage timing + counter table (the ``--stats`` view)."""
    rows: list[tuple[str, str, str]] = []
    for stage in stats.stages:
        counters = " ".join(
            f"{key}={value}" for key, value in sorted(stage.counters.items())
        )
        rows.append(
            (
                "  " * stage.depth + stage.name,
                f"{stage.duration_ms:.3f} ms",
                counters,
            )
        )
    header = ("stage", "time", "counters")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(3)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    if stats.counters:
        lines.append(
            "totals: "
            + " ".join(f"{k}={v}" for k, v in sorted(stats.counters.items()))
        )
    return "\n".join(lines)
