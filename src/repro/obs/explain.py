"""Structured provenance for a précis answer — "why is this here?"

Keyword-search engines over databases justify their results by showing
the join tree that connects the keywords (BANKS-style systems); the
précis equivalent is to surface the decisions of §5.1–§5.2: which seed
token pulled a relation into the result schema, which weighted path
admitted each joined relation, which degree constraint stopped schema
expansion, which strategy and driving-value set pulled each tuple
batch, and which cardinality constraint cut generation short.

This module holds the *data model* only — plain, JSON-serializable
dataclasses with no dependency on the core pipeline. The builder that
fills them from a finished answer lives in
:func:`repro.core.explain.build_explanation`; the engine attaches the
result as :attr:`repro.core.answer.PrecisAnswer.explanation` and the
CLI renders it under ``--explain``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "RelationProvenance",
    "SchemaStop",
    "BatchProvenance",
    "CacheProvenance",
    "Explanation",
]


@dataclass(frozen=True)
class RelationProvenance:
    """Why one relation entered the result schema ``G'``."""

    relation: str
    #: ``"seed"`` (query tokens matched here) or ``"joined"`` (pulled in
    #: along an admitted projection path)
    kind: str
    #: tokens that matched in this relation (seed relations only)
    tokens: tuple[str, ...] = ()
    #: human-readable admitting path, e.g. ``"MOVIE → GENRE . GENRE"``
    via_path: Optional[str] = None
    #: weight of the admitting path (the best-first priority that won)
    path_weight: Optional[float] = None
    #: the join edge that carried the relation in, e.g.
    #: ``"MOVIE.ID → GENRE.MID"``
    via_edge: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "kind": self.kind,
            "tokens": list(self.tokens),
            "via_path": self.via_path,
            "path_weight": self.path_weight,
            "via_edge": self.via_edge,
        }


@dataclass(frozen=True)
class SchemaStop:
    """How the Figure 3 traversal ended.

    ``kind`` is ``"degree"`` when a terminal degree-constraint failure
    cut the queue (the paper's stopping rule), ``"exhausted"`` when
    the queue simply drained — every reachable path was considered — or
    ``"deadline"`` when an expired request deadline
    (:mod:`repro.core.deadline`) cut the queue exactly as a terminal
    constraint failure would have.
    """

    kind: str
    #: description of the constraint that stopped expansion (the failing
    #: part, for composites); None when the queue drained
    constraint: Optional[str] = None
    #: the first rejected path (the best candidate that did not make it)
    rejected_path: Optional[str] = None
    rejected_weight: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "constraint": self.constraint,
            "rejected_path": self.rejected_path,
            "rejected_weight": self.rejected_weight,
        }


@dataclass(frozen=True)
class BatchProvenance:
    """One tuple batch pulled into the answer by the database generator."""

    #: the relation that received the batch
    relation: str
    #: ``"seed"`` or ``"join"``
    kind: str
    #: the executed edge, e.g. ``"MOVIE.ID → CAST.MID"`` (joins only)
    via_edge: Optional[str]
    #: retrieval strategy actually used (``naive`` / ``round_robin``;
    #: seeds always fetch by tid list)
    strategy: Optional[str]
    #: distinct driving-attribute values (joins) or seed tids
    driving_values: int
    #: tuples the fetch returned
    tuples_fetched: int
    #: tuples actually new to the answer (after dedup)
    tuples_new: int
    #: cardinality budget in force for this batch (None = unbounded)
    budget: Optional[int] = None
    #: weight of the executed edge (joins only)
    edge_weight: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "relation": self.relation,
            "kind": self.kind,
            "via_edge": self.via_edge,
            "strategy": self.strategy,
            "driving_values": self.driving_values,
            "tuples_fetched": self.tuples_fetched,
            "tuples_new": self.tuples_new,
            "budget": self.budget,
            "edge_weight": self.edge_weight,
        }


@dataclass(frozen=True)
class CacheProvenance:
    """Which cache layers served (or could have served) this answer."""

    #: ``"hit"`` / ``"miss"`` / ``"off"`` / ``"uncacheable"``
    plan: str = "off"
    #: ``"miss"`` / ``"off"`` / ``"uncacheable"`` — an answer served
    #: *from* the cache keeps the explanation of the run that built it
    answer: str = "off"

    def to_dict(self) -> dict:
        return {"plan": self.plan, "answer": self.answer}


@dataclass
class Explanation:
    """The full provenance record of one précis answer."""

    query: str
    degree: str
    cardinality: str
    relations: list[RelationProvenance] = field(default_factory=list)
    schema_stop: Optional[SchemaStop] = None
    batches: list[BatchProvenance] = field(default_factory=list)
    #: edges of ``G'`` that never executed (no driving values or budget)
    skipped_edges: list[str] = field(default_factory=list)
    stopped_by_cardinality: bool = False
    cache: CacheProvenance = field(default_factory=CacheProvenance)
    #: first pipeline stage a request deadline tripped at (``"match"`` /
    #: ``"schema"`` / ``"tuples"`` / ``"translate"``); None when the
    #: answer ran to completion. Mirrors
    #: :attr:`repro.core.answer.PrecisAnswer.degraded_stage`.
    deadline_stage: Optional[str] = None
    #: trace id of the request that produced this answer
    #: (:mod:`repro.obs.context`); None outside a traced request. Links
    #: the provenance record to the request's span tree in the trace
    #: buffer and its exemplar on the latency histograms.
    trace_id: Optional[str] = None

    # ------------------------------------------------------------- queries

    def relation(self, name: str) -> Optional[RelationProvenance]:
        for entry in self.relations:
            if entry.relation == name:
                return entry
        return None

    def bounding_constraints(self) -> list[str]:
        """The constraints that actually bit on this query: the degree
        constraint if it stopped schema expansion, the cardinality
        constraint if it stopped tuple generation or capped a batch."""
        out = []
        if self.schema_stop is not None and self.schema_stop.kind == "degree":
            out.append(f"degree: {self.schema_stop.constraint}")
        if self.stopped_by_cardinality or any(
            batch.budget is not None
            and batch.tuples_fetched >= batch.budget > 0
            for batch in self.batches
        ):
            out.append(f"cardinality: {self.cardinality}")
        if self.deadline_stage is not None:
            out.append(f"deadline: expired during {self.deadline_stage}")
        return out

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "degree": self.degree,
            "cardinality": self.cardinality,
            "relations": [entry.to_dict() for entry in self.relations],
            "schema_stop": (
                self.schema_stop.to_dict()
                if self.schema_stop is not None
                else None
            ),
            "batches": [batch.to_dict() for batch in self.batches],
            "skipped_edges": list(self.skipped_edges),
            "stopped_by_cardinality": self.stopped_by_cardinality,
            "deadline_stage": self.deadline_stage,
            "trace_id": self.trace_id,
            "bounding_constraints": self.bounding_constraints(),
            "cache": self.cache.to_dict(),
        }

    # ------------------------------------------------------------- display

    def render(self) -> str:
        """The multi-line ``--explain`` view."""
        lines = [f"why-précis for {self.query!r}"]
        if self.trace_id is not None:
            lines.append(f"trace: {self.trace_id}")
        lines.append(f"constraints: degree = {self.degree}; "
                     f"cardinality = {self.cardinality}")
        lines.append("relations:")
        for entry in self.relations:
            if entry.kind == "seed":
                tokens = ", ".join(repr(t) for t in entry.tokens) or "(seeded)"
                lines.append(
                    f"  {entry.relation}: seed — query token(s) {tokens} "
                    f"matched here"
                )
            else:
                weight = (
                    f"{entry.path_weight:g}"
                    if entry.path_weight is not None
                    else "?"
                )
                lines.append(
                    f"  {entry.relation}: joined via {entry.via_edge} "
                    f"(admitting path {entry.via_path}, w={weight})"
                )
        if self.schema_stop is not None:
            if self.schema_stop.kind == "degree":
                weight = (
                    f"{self.schema_stop.rejected_weight:g}"
                    if self.schema_stop.rejected_weight is not None
                    else "?"
                )
                lines.append(
                    f"schema expansion stopped by {self.schema_stop.constraint} "
                    f"at path {self.schema_stop.rejected_path} (w={weight})"
                )
            elif self.schema_stop.kind == "deadline":
                lines.append(
                    "schema expansion stopped by the request deadline "
                    "(partial schema)"
                )
            else:
                lines.append(
                    "schema expansion exhausted the graph "
                    "(no constraint rejected a path)"
                )
        lines.append("tuple batches:")
        for batch in self.batches:
            budget = "∞" if batch.budget is None else str(batch.budget)
            if batch.kind == "seed":
                lines.append(
                    f"  seed {batch.relation}: {batch.tuples_new} tuple(s) "
                    f"from {batch.driving_values} index match(es), "
                    f"budget {budget}"
                )
            else:
                lines.append(
                    f"  join {batch.via_edge} [{batch.strategy}]: "
                    f"{batch.driving_values} driving value(s) → "
                    f"{batch.tuples_new} new tuple(s), budget {budget}"
                )
        for edge in self.skipped_edges:
            lines.append(f"  skip {edge} (no driving values or no budget)")
        if self.stopped_by_cardinality:
            lines.append(
                f"generation stopped: cardinality constraint "
                f"({self.cardinality}) exhausted"
            )
        if self.deadline_stage is not None:
            lines.append(
                f"degraded: deadline expired during {self.deadline_stage} — "
                f"the answer is a valid partial précis"
            )
        bounding = self.bounding_constraints()
        if bounding:
            lines.append("bounded by: " + "; ".join(bounding))
        else:
            lines.append("bounded by: nothing — the answer is complete")
        lines.append(
            f"cache: plan {self.cache.plan}, answer {self.cache.answer}"
        )
        return "\n".join(lines)
