"""Stage spans and the tracer that records them.

A :class:`Span` is one timed region of pipeline work — "match",
"schema_generator", "database_generator", "translate", "build_index" —
carrying a wall-clock start, a monotonic duration, a dict of typed
integer counters, and nested child spans. A :class:`Tracer` maintains
the currently open span stack and delivers every *root* span, once
closed, to its sinks (see :mod:`repro.obs.sinks`).

The default tracer everywhere in the engine is :data:`NULL_TRACER`,
whose ``span()`` hands back one shared no-op context manager and whose
``count()``/``gauge()`` return immediately — tracing off costs one
attribute check per call site and allocates nothing, so the pipeline's
behaviour (and the answers it produces) are byte-identical with and
without instrumentation.

Counter semantics: ``count`` *adds* to the innermost open span,
``gauge`` *sets*. Counts issued while no span is open are dropped (the
null path behaves identically). Counter values are plain ints; the
canonical names are listed in
:data:`repro.obs.stats.COUNTER_GLOSSARY`.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, counted region of work, possibly with children."""

    __slots__ = (
        "name",
        "wall_start",
        "counters",
        "children",
        "_mono_start",
        "_mono_end",
    )

    def __init__(self, name: str):
        self.name = name
        self.wall_start: float = 0.0
        self.counters: dict[str, int] = {}
        self.children: list["Span"] = []
        self._mono_start: float = 0.0
        self._mono_end: Optional[float] = None

    # ------------------------------------------------------------- lifecycle

    def _start(self) -> None:
        self.wall_start = time.time()
        self._mono_start = time.perf_counter()

    def _finish(self) -> None:
        self._mono_end = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self._mono_end is not None

    @property
    def duration_s(self) -> float:
        """Monotonic duration in seconds (0.0 while the span is open)."""
        if self._mono_end is None:
            return 0.0
        return self._mono_end - self._mono_start

    # ------------------------------------------------------------- queries

    def counter(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def walk(self) -> Iterable[tuple["Span", int]]:
        """Depth-first (span, depth) pairs, self first."""
        stack: list[tuple[Span, int]] = [(self, 0)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def find(self, name: str) -> Optional["Span"]:
        """First span named *name* in depth-first order (self included)."""
        for span, __ in self.walk():
            if span.name == name:
                return span
        return None

    def total_counters(self) -> dict[str, int]:
        """Counters aggregated over this span and all descendants."""
        totals: dict[str, int] = {}
        for span, __ in self.walk():
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def to_dict(self) -> dict:
        """JSON-compatible snapshot (durations in seconds)."""
        return {
            "name": self.name,
            "wall_start": self.wall_start,
            "duration_s": self.duration_s,
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self):
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"{len(self.counters)} counters, {len(self.children)} children)"
        )


class _SpanContext:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._span = Span(name)

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span._start()
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._span._finish()
        self._tracer._pop(self._span)
        return False


class _NullSpanContext:
    """Shared no-op context manager; yields one shared dummy span."""

    __slots__ = ("_span",)

    def __init__(self):
        self._span = Span("<null>")

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Records nested stage spans and forwards closed roots to sinks.

    >>> from repro.obs import Tracer, InMemorySink
    >>> sink = InMemorySink()
    >>> tracer = Tracer([sink])
    >>> with tracer.span("outer"):
    ...     tracer.count("things", 2)
    ...     with tracer.span("inner"):
    ...         tracer.count("things", 1)
    >>> sink.spans[0].total_counters()["things"]
    3
    """

    def __init__(self, sinks: Optional[Iterable] = None, enabled: bool = True):
        self.sinks = list(sinks) if sinks is not None else []
        self.enabled = enabled
        # The open-span stack is *thread-local*: concurrent asks through
        # one shared engine (and hence one shared tracer) each build
        # their own span tree — counters land on the issuing thread's
        # innermost span and cannot mis-parent across threads.
        self._local = threading.local()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------- recording

    def span(self, name: str):
        """Open a nested stage span: ``with tracer.span("match") as s:``."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return _SpanContext(self, name)

    def count(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* of the innermost open span."""
        if not self.enabled or not self._stack:
            return
        counters = self._stack[-1].counters
        counters[name] = counters.get(name, 0) + amount

    def gauge(self, name: str, value: int) -> None:
        """Set counter *name* of the innermost open span to *value*."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].counters[name] = value

    # ------------------------------------------------------------- stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate a corrupted stack (an exception unwound past a span)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack:
            for sink in self.sinks:
                sink.emit(span)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.sinks)} sinks, depth={len(self._stack)})"


class NullTracer(Tracer):
    """The no-op tracer threaded through the engine by default.

    Immutable-by-convention singleton (:data:`NULL_TRACER`): never give
    it sinks; ``enabled`` stays False.
    """

    def __init__(self):
        super().__init__(sinks=None, enabled=False)

    def span(self, name: str):
        return _NULL_SPAN_CONTEXT

    def count(self, name: str, amount: int = 1) -> None:
        return None

    def gauge(self, name: str, value: int) -> None:
        return None


#: shared process-wide no-op tracer — the default for every instrumented
#: call site; recording nothing, it keeps traced and untraced runs
#: behaviourally identical.
NULL_TRACER = NullTracer()
