"""Unit tests for profiles and the registry (§3.1 personalization)."""

import pytest

from repro.core import MaxTuplesPerRelation, WeightThreshold
from repro.personalization import Profile, ProfileRegistry


class TestProfile:
    def test_weight_setters(self):
        profile = Profile("p")
        profile.set_projection_weight("R", "A", 0.3)
        profile.set_join_weight("R", "S", 0.6)
        assert profile.weights == {
            ("proj", "R", "A"): 0.3,
            ("join", "R", "S"): 0.6,
        }

    def test_personalize_applies_overrides(self, paper_graph):
        profile = Profile("fan").set_join_weight("MOVIE", "GENRE", 0.2)
        personalized = profile.personalize(paper_graph)
        assert personalized.join_edge("MOVIE", "GENRE").weight == 0.2
        assert paper_graph.join_edge("MOVIE", "GENRE").weight == 0.9

    def test_personalize_without_weights_returns_same_graph(self, paper_graph):
        profile = Profile("empty")
        assert profile.personalize(paper_graph) is paper_graph

    def test_merged_with_overrides(self):
        base = Profile(
            "designer",
            weights={("proj", "R", "A"): 0.5},
            degree=WeightThreshold(0.8),
        )
        user = Profile(
            "user",
            weights={("proj", "R", "A"): 0.9, ("proj", "R", "B"): 0.2},
            cardinality=MaxTuplesPerRelation(3),
        )
        merged = base.merged_with(user)
        assert merged.weights[("proj", "R", "A")] == 0.9
        assert merged.weights[("proj", "R", "B")] == 0.2
        assert merged.degree == WeightThreshold(0.8)
        assert merged.cardinality == MaxTuplesPerRelation(3)
        assert merged.name == "designer+user"


class TestRegistry:
    def test_register_and_get(self):
        registry = ProfileRegistry()
        registry.register(Profile("a"))
        assert registry.get("a").name == "a"
        assert "a" in registry
        assert registry.names() == ("a",)
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ProfileRegistry()
        registry.register(Profile("a"))
        with pytest.raises(KeyError):
            registry.register(Profile("a"))

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            ProfileRegistry().get("nope")
