"""Unit tests for profiles and the registry (§3.1 personalization)."""

import json

import pytest

from repro.core import (
    CompositeDegree,
    DeadlineCardinality,
    Deadline,
    MaxPathLength,
    MaxTuplesPerRelation,
    WeightThreshold,
)
from repro.graph import GraphError, WeightOverlay
from repro.personalization import Profile, ProfileRegistry


class TestProfile:
    def test_weight_setters(self):
        profile = Profile("p")
        profile.set_projection_weight("R", "A", 0.3)
        profile.set_join_weight("R", "S", 0.6)
        assert profile.weights == {
            ("proj", "R", "A"): 0.3,
            ("join", "R", "S"): 0.6,
        }

    def test_personalize_applies_overrides(self, paper_graph):
        profile = Profile("fan").set_join_weight("MOVIE", "GENRE", 0.2)
        personalized = profile.personalize(paper_graph)
        assert personalized.join_edge("MOVIE", "GENRE").weight == 0.2
        assert paper_graph.join_edge("MOVIE", "GENRE").weight == 0.9

    def test_personalize_without_weights_returns_same_graph(self, paper_graph):
        profile = Profile("empty")
        assert profile.personalize(paper_graph) is paper_graph

    def test_merged_with_overrides(self):
        base = Profile(
            "designer",
            weights={("proj", "R", "A"): 0.5},
            degree=WeightThreshold(0.8),
        )
        user = Profile(
            "user",
            weights={("proj", "R", "A"): 0.9, ("proj", "R", "B"): 0.2},
            cardinality=MaxTuplesPerRelation(3),
        )
        merged = base.merged_with(user)
        assert merged.weights[("proj", "R", "A")] == 0.9
        assert merged.weights[("proj", "R", "B")] == 0.2
        assert merged.degree == WeightThreshold(0.8)
        assert merged.cardinality == MaxTuplesPerRelation(3)
        assert merged.name == "designer+user"


class TestOverlayConversion:
    def test_overlay_returns_weight_overlay(self, paper_graph):
        profile = Profile("fan").set_join_weight("MOVIE", "GENRE", 0.2)
        overlay = profile.overlay(paper_graph)
        assert isinstance(overlay, WeightOverlay)
        assert overlay.base is paper_graph
        assert overlay.join_edge("MOVIE", "GENRE").weight == 0.2

    def test_personalize_returns_overlay_not_clone(self, paper_graph):
        profile = Profile("fan").set_join_weight("MOVIE", "GENRE", 0.2)
        personalized = profile.personalize(paper_graph)
        assert isinstance(personalized, WeightOverlay)
        assert personalized.base is paper_graph

    def test_empty_profile_overlay_is_noop(self, paper_graph):
        overlay = Profile("empty").overlay(paper_graph)
        assert isinstance(overlay, WeightOverlay)
        assert overlay.fingerprint() is None

    def test_overlay_validates_edges_against_graph(self, paper_graph):
        profile = Profile("bad").set_join_weight("MOVIE", "NOPE", 0.2)
        with pytest.raises(GraphError):
            profile.overlay(paper_graph)

    def test_equal_profiles_produce_equal_fingerprints(self, paper_graph):
        a = (
            Profile("a")
            .set_join_weight("MOVIE", "GENRE", 0.2)
            .set_projection_weight("MOVIE", "TITLE", 0.4)
        )
        b = (  # same weights, opposite insertion order
            Profile("b")
            .set_projection_weight("MOVIE", "TITLE", 0.4)
            .set_join_weight("MOVIE", "GENRE", 0.2)
        )
        assert (
            a.overlay(paper_graph).fingerprint()
            == b.overlay(paper_graph).fingerprint()
        )


class TestSerde:
    def roundtrip(self, profile):
        # through actual JSON text, as a profile store would
        return Profile.from_dict(json.loads(json.dumps(profile.to_dict())))

    def test_roundtrip_weights_and_metadata(self):
        profile = Profile(
            "fan",
            weights={
                ("proj", "MOVIE", "TITLE"): 0.4,
                ("join", "MOVIE", "GENRE"): 0.2,
            },
            description="genre-averse movie fan",
        )
        revived = self.roundtrip(profile)
        assert revived.name == profile.name
        assert revived.weights == profile.weights
        assert revived.description == profile.description
        assert revived.degree is None
        assert revived.cardinality is None

    def test_roundtrip_constraints(self):
        profile = Profile(
            "strict",
            degree=CompositeDegree(WeightThreshold(0.8), MaxPathLength(2)),
            cardinality=MaxTuplesPerRelation(3),
        )
        revived = self.roundtrip(profile)
        assert revived.degree == profile.degree
        assert revived.cardinality == profile.cardinality

    def test_roundtrip_preserves_overlay_identity(self, paper_graph):
        profile = Profile(
            "fan",
            weights={
                ("join", "MOVIE", "GENRE"): 0.2,
                ("proj", "MOVIE", "TITLE"): 0.4,
            },
        )
        original = profile.overlay(paper_graph)
        revived = self.roundtrip(profile).overlay(paper_graph)
        assert revived.canonical_patches() == original.canonical_patches()
        assert revived.fingerprint() == original.fingerprint()

    def test_unknown_version_rejected(self):
        with pytest.raises(GraphError):
            Profile.from_dict({"version": 99, "name": "x", "weights": []})

    def test_bad_edge_key_rejected(self):
        with pytest.raises(GraphError):
            Profile.from_dict(
                {
                    "version": 1,
                    "name": "x",
                    "weights": [[["bogus", "A", "B"], 0.5]],
                }
            )

    def test_unknown_constraint_type_rejected(self):
        with pytest.raises(GraphError):
            Profile.from_dict(
                {
                    "version": 1,
                    "name": "x",
                    "weights": [],
                    "degree": {"type": "NoSuchConstraint", "args": {}},
                }
            )

    def test_stateful_constraint_not_serializable(self):
        profile = Profile(
            "live", cardinality=DeadlineCardinality(Deadline.after(1.0))
        )
        with pytest.raises(ValueError):
            profile.to_dict()


class TestRegistry:
    def test_register_and_get(self):
        registry = ProfileRegistry()
        registry.register(Profile("a"))
        assert registry.get("a").name == "a"
        assert "a" in registry
        assert registry.names() == ("a",)
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ProfileRegistry()
        registry.register(Profile("a"))
        with pytest.raises(KeyError):
            registry.register(Profile("a"))

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            ProfileRegistry().get("nope")
