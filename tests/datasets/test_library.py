"""Tests for the digital-library dataset and précis over it."""

import pytest

from repro import MaxTuplesPerRelation, PrecisEngine, WeightThreshold
from repro.datasets import (
    generate_library_database,
    library_graph,
    library_schema,
    library_translation_spec,
)
from repro.graph import validate_graph
from repro.nlg import Translator


class TestSchemaAndGraph:
    def test_seven_relations(self):
        assert len(library_schema()) == 7

    def test_graph_consistent_with_schema(self):
        assert validate_graph(library_graph(), library_schema()) == []

    def test_bridges_have_no_heading(self):
        spec = library_translation_spec()
        assert spec.heading_of("MADE_BY") is None
        assert spec.heading_of("SHOWN_AT") is None
        assert spec.heading_of("ITEM") == "TITLE"


class TestGenerator:
    def test_deterministic(self):
        a = generate_library_database(n_items=40, seed=2)
        b = generate_library_database(n_items=40, seed=2)
        assert a.cardinalities() == b.cardinalities()

    def test_integrity(self):
        db = generate_library_database(n_items=60, seed=1)
        assert db.integrity_violations() == []

    def test_scaling(self):
        db = generate_library_database(n_items=100, seed=0)
        cards = db.cardinalities()
        assert cards["ITEM"] == 100
        assert cards["MADE_BY"] >= 100  # 1-2 creators per item
        assert cards["SUBJECT"] >= 100


class TestPrecisOverLibrary:
    @pytest.fixture(scope="class")
    def engine(self):
        return PrecisEngine(
            generate_library_database(n_items=80, seed=4),
            graph=library_graph(),
            translator=Translator(library_translation_spec()),
        )

    def test_creator_query_crosses_the_bridge(self, engine):
        name = next(
            row["NAME"]
            for row in engine.db.relation("CREATOR").scan(["NAME"])
        )
        answer = engine.ask(
            f'"{name}"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(4),
        )
        assert answer.found
        assert "ITEM" in answer.result_schema.relations
        assert "MADE_BY" in answer.result_schema.relations
        # the bridge is plumbing: no visible attributes
        assert answer.result_schema.attributes_of("SHOWN_AT") == ()

    def test_narrative_speaks_through_bridges(self, engine):
        name = next(
            row["NAME"]
            for row in engine.db.relation("CREATOR").scan(["NAME"])
        )
        answer = engine.ask(
            f'"{name}"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(4),
        )
        assert answer.narrative
        assert f"Works by {name} include" in answer.narrative

    def test_topic_query_pulls_items(self, engine):
        answer = engine.ask(
            "mythology",
            degree=WeightThreshold(0.95),
            cardinality=MaxTuplesPerRelation(3),
        )
        if answer.found:  # topic exists at this seed
            assert "ITEM" in answer.result_schema.relations
