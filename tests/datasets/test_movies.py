"""Unit tests for the movies dataset (Figure 1 faithfulness + generator)."""

import pytest

from repro.datasets import (
    generate_movies_database,
    movies_graph,
    movies_schema,
    paper_instance,
)


class TestSchema:
    def test_seven_relations(self):
        schema = movies_schema()
        assert set(schema.relation_names) == {
            "THEATRE", "PLAY", "MOVIE", "GENRE", "CAST", "ACTOR", "DIRECTOR",
        }

    def test_primary_keys_match_paper(self):
        schema = movies_schema()
        assert schema.relation("MOVIE").primary_key == ("MID",)
        assert schema.relation("CAST").primary_key == ("MID", "AID")
        assert schema.relation("DIRECTOR").primary_key == ("DID",)

    def test_foreign_keys_connect_the_graph(self):
        schema = movies_schema()
        pairs = {(fk.source, fk.target) for fk in schema.foreign_keys}
        assert pairs == {
            ("PLAY", "THEATRE"), ("PLAY", "MOVIE"), ("GENRE", "MOVIE"),
            ("CAST", "MOVIE"), ("CAST", "ACTOR"), ("MOVIE", "DIRECTOR"),
        }


class TestGraphWeights:
    """The textually attested weights of Figure 1."""

    def test_genre_movie_asymmetry(self):
        graph = movies_graph()
        assert graph.join_edge("GENRE", "MOVIE").weight == 1.0
        assert graph.join_edge("MOVIE", "GENRE").weight == 0.9

    def test_phone_projection_weights(self):
        """PHONE over THEATRE = 0.8; over MOVIE = 0.7 * 1 * 0.8 = 0.56."""
        graph = movies_graph()
        assert graph.projection_edge("THEATRE", "PHONE").weight == 0.8
        transfer = (
            graph.join_edge("MOVIE", "PLAY").weight
            * graph.join_edge("PLAY", "THEATRE").weight
            * graph.projection_edge("THEATRE", "PHONE").weight
        )
        assert transfer == pytest.approx(0.56)

    def test_heading_attributes_weigh_one(self):
        graph = movies_graph()
        for relation, attribute in [
            ("THEATRE", "NAME"), ("MOVIE", "TITLE"), ("GENRE", "GENRE"),
            ("ACTOR", "ANAME"), ("DIRECTOR", "DNAME"),
        ]:
            assert graph.projection_edge(relation, attribute).weight == 1.0

    def test_every_fk_has_both_directions(self):
        graph = movies_graph()
        for source, target in [
            ("GENRE", "MOVIE"), ("CAST", "MOVIE"), ("CAST", "ACTOR"),
            ("PLAY", "MOVIE"), ("PLAY", "THEATRE"), ("MOVIE", "DIRECTOR"),
        ]:
            assert graph.has_join(source, target)
            assert graph.has_join(target, source)


class TestPaperInstance:
    def test_integrity(self):
        assert paper_instance().integrity_violations() == []

    def test_woody_is_director_and_actor(self):
        db = paper_instance()
        directors = {
            row["DNAME"] for row in db.relation("DIRECTOR").scan(["DNAME"])
        }
        actors = {
            row["ANAME"] for row in db.relation("ACTOR").scan(["ANAME"])
        }
        assert "Woody Allen" in directors
        assert "Woody Allen" in actors

    def test_match_point_genres(self):
        db = paper_instance()
        genres = sorted(
            row["GENRE"]
            for row in db.relation("GENRE").scan()
            if row["MID"] == 1
        )
        assert genres == ["Drama", "Thriller"]


class TestSyntheticGenerator:
    def test_deterministic(self):
        a = generate_movies_database(n_movies=30, seed=5)
        b = generate_movies_database(n_movies=30, seed=5)
        assert a.cardinalities() == b.cardinalities()
        rows_a = sorted(r.values for r in a.relation("MOVIE").scan())
        rows_b = sorted(r.values for r in b.relation("MOVIE").scan())
        assert rows_a == rows_b

    def test_different_seeds_differ(self):
        a = generate_movies_database(n_movies=30, seed=5)
        b = generate_movies_database(n_movies=30, seed=6)
        rows_a = sorted(r.values for r in a.relation("MOVIE").scan())
        rows_b = sorted(r.values for r in b.relation("MOVIE").scan())
        assert rows_a != rows_b

    def test_scales_with_n_movies(self):
        db = generate_movies_database(n_movies=50, seed=1)
        cards = db.cardinalities()
        assert cards["MOVIE"] == 50
        assert cards["DIRECTOR"] == 12
        assert cards["GENRE"] >= 50

    def test_referential_integrity(self, synthetic_movies):
        assert synthetic_movies.integrity_violations() == []

    def test_join_indexes_created(self, synthetic_movies):
        assert synthetic_movies.relation("GENRE").has_index("MID")
        assert synthetic_movies.relation("MOVIE").has_index("MID")

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_movies_database(n_movies=0)
