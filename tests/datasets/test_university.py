"""Unit tests for the university dataset (the second schema)."""

from repro import PrecisEngine, TopRProjections, WeightThreshold
from repro.datasets import (
    generate_university_database,
    university_graph,
    university_schema,
)


class TestSchema:
    def test_relations(self):
        schema = university_schema()
        assert set(schema.relation_names) == {
            "DEPARTMENT", "INSTRUCTOR", "COURSE", "TEACHES",
            "STUDENT", "ENROLLED",
        }

    def test_m2m_diamond(self):
        schema = university_schema()
        pairs = {(fk.source, fk.target) for fk in schema.foreign_keys}
        assert ("ENROLLED", "STUDENT") in pairs
        assert ("ENROLLED", "COURSE") in pairs


class TestGenerator:
    def test_deterministic(self):
        a = generate_university_database(n_students=20, n_courses=6, seed=9)
        b = generate_university_database(n_students=20, n_courses=6, seed=9)
        assert a.cardinalities() == b.cardinalities()

    def test_integrity(self, university_db):
        assert university_db.integrity_violations() == []

    def test_cardinalities(self, university_db):
        cards = university_db.cardinalities()
        assert cards["STUDENT"] == 60
        assert cards["COURSE"] == 12
        assert cards["DEPARTMENT"] == 5


class TestPrecisOverUniversity:
    def test_course_query_pulls_instructors(self, university_db, university_g):
        engine = PrecisEngine(university_db, graph=university_g)
        course = next(
            row["CNAME"]
            for row in university_db.relation("COURSE").scan(["CNAME"])
        )
        answer = engine.ask(f'"{course}"', degree=WeightThreshold(0.85))
        assert answer.found
        assert "COURSE" in answer.result_schema.relations
        assert "INSTRUCTOR" in answer.result_schema.relations

    def test_department_query(self, university_db, university_g):
        engine = PrecisEngine(university_db, graph=university_g)
        answer = engine.ask("Informatics", degree=TopRProjections(5))
        assert answer.found
        assert answer.total_tuples() > 0
        assert len(answer.result_schema.projected_attributes) <= 5
