"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture()
def demo_dir(tmp_path):
    directory = tmp_path / "demo"
    code, __ = _run(["init-demo", str(directory)])
    assert code == 0
    return directory


class TestInitDemo:
    def test_writes_database_and_graph(self, demo_dir):
        assert (demo_dir / "_schema.json").exists()
        assert (demo_dir / "_graph.json").exists()
        assert (demo_dir / "MOVIE.csv").exists()

    def test_synthetic_size(self, tmp_path):
        directory = tmp_path / "synth"
        code, out = _run(
            ["init-demo", str(directory), "--movies", "30", "--seed", "4"]
        )
        assert code == 0
        assert "tuples" in out


class TestSchema:
    def test_prints_ddl_and_summary(self, demo_dir):
        code, out = _run(["schema", str(demo_dir)])
        assert code == 0
        assert "CREATE TABLE MOVIE" in out
        assert "relations," in out
        assert "fan-out" in out


class TestQuery:
    def test_basic_query(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--per-relation", "3",
            ]
        )
        assert code == 0
        assert "Match Point" in out
        assert "Result schema:" in out

    def test_narrative_flag(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--narrative",
            ]
        )
        assert code == 0
        assert "Woody Allen" in out

    def test_dot_output(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--dot",
            ]
        )
        assert code == 0
        assert out.startswith("digraph")

    def test_save_exports_answer(self, demo_dir, tmp_path):
        target = tmp_path / "answer"
        code, out = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--save", str(target),
            ]
        )
        assert code == 0
        assert (target / "_schema.json").exists()
        assert (target / "MOVIE.csv").exists()

    def test_no_match_exit_code(self, demo_dir):
        code, out = _run(["query", str(demo_dir), "zzznope"])
        assert code == 1
        assert "no match" in out

    def test_degree_top_and_total(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-top", "3", "--total", "4",
            ]
        )
        assert code == 0

    def test_composite_degree(self, demo_dir):
        code, __ = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.8", "--degree-length", "2",
                "--degree-top", "6",
            ]
        )
        assert code == 0


class TestStatsFlag:
    def test_query_stats_prints_stage_table(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--per-relation", "3", "--stats",
            ]
        )
        assert code == 0
        assert "Match Point" in out  # the answer itself still prints
        assert "index build:" in out
        assert "stage" in out and "time" in out and "counters" in out
        for stage in ("ask", "match", "schema", "database_generator"):
            assert stage in out
        assert "tokens_matched=1" in out
        assert "tuples_emitted=" in out
        assert "totals:" in out

    def test_query_without_stats_prints_no_table(self, demo_dir):
        code, out = _run(
            ["query", str(demo_dir), '"Woody Allen"', "--degree-weight", "0.9"]
        )
        assert code == 0
        assert "tuples_emitted=" not in out
        assert "index build:" not in out

    def test_explain_stats(self, demo_dir):
        code, out = _run(
            [
                "explain", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--stats",
            ]
        )
        assert code == 0
        assert "précis plan" in out
        assert "database_generator" in out
        assert "totals:" in out

    def test_estimate_stats(self, demo_dir):
        code, out = _run(
            [
                "estimate", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--stats",
            ]
        )
        assert code == 0
        assert "schema_generator" in out
        assert "tokens_matched=1" in out

    def test_no_match_still_prints_stats(self, demo_dir):
        code, out = _run(["query", str(demo_dir), "zzznope", "--stats"])
        assert code == 1
        assert "no match" in out
        assert "tokens_matched=0" in out


class TestExplain:
    def test_plan_ddl_and_sql(self, demo_dir):
        code, out = _run(
            [
                "explain", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--per-relation", "3",
            ]
        )
        assert code == 0
        assert "précis plan" in out
        assert "CREATE TABLE" in out
        assert "SELECT" in out
        assert "ROWID IN" in out


class TestGraphFallback:
    def test_directory_without_graph_file(self, demo_dir):
        (demo_dir / "_graph.json").unlink()
        code, out = _run(
            ["query", str(demo_dir), '"Woody Allen"', "--degree-top", "5"]
        )
        assert code == 0


class TestEstimate:
    def test_estimate_prints_sizes(self, demo_dir):
        code, out = _run(
            [
                "estimate", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9",
            ]
        )
        assert code == 0
        assert "estimated answer size" in out
        assert "MOVIE" in out
        assert "total:" in out

    def test_estimate_suggests_cap(self, demo_dir):
        code, out = _run(
            [
                "estimate", str(demo_dir), '"Woody Allen"',
                "--degree-weight", "0.9", "--target-total", "10",
            ]
        )
        assert code == 0
        assert "--per-relation" in out

    def test_estimate_no_match(self, demo_dir):
        code, out = _run(["estimate", str(demo_dir), "zzznope"])
        assert code == 1


class TestExplainProvenance:
    def test_query_explain_flag(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), "Allen",
                "--total", "5", "--explain",
            ]
        )
        assert code == 0
        assert "why-précis for" in out
        assert "seed — query token(s)" in out
        assert "schema expansion stopped by weight threshold (w0=0.9)" in out
        assert "cardinality: max total tuples (c0=5)" in out

    def test_explain_subcommand_leads_with_provenance(self, demo_dir):
        code, out = _run(["explain", str(demo_dir), "Allen"])
        assert code == 0
        assert out.index("why-précis for") < out.index("précis plan")


class TestMetricsExport:
    def test_metrics_out_json(self, demo_dir, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        code, out = _run(
            [
                "query", str(demo_dir), "Allen",
                "--metrics-out", str(target), "--slow-query-ms", "0",
            ]
        )
        assert code == 0
        assert f"metrics written to {target}" in out
        document = json.loads(target.read_text())
        assert document["counters"]["precis_asks_total"] == 1
        assert document["histograms"]["precis_ask_seconds"]["count"] == 1
        assert document["slow_queries"]  # 0 ms threshold records the ask

    def test_metrics_out_prometheus_to_stdout(self, demo_dir):
        code, out = _run(
            [
                "query", str(demo_dir), "Allen",
                "--metrics-out", "-", "--metrics-format", "prometheus",
            ]
        )
        assert code == 0
        assert "# TYPE precis_ask_seconds histogram" in out
        assert 'precis_ask_seconds_bucket{le="+Inf"} 1' in out

    def test_metrics_written_even_without_match(self, demo_dir, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        code, __ = _run(
            [
                "query", str(demo_dir), "zzznope",
                "--metrics-out", str(target),
            ]
        )
        assert code == 1
        document = json.loads(target.read_text())
        assert document["counters"]["precis_asks_total"] == 1

    def test_no_metrics_flag_writes_nothing(self, demo_dir):
        code, out = _run(["query", str(demo_dir), "Allen"])
        assert code == 0
        assert "metrics written" not in out


class TestServeBenchTracing:
    @pytest.fixture(scope="class")
    def bench_dir(self, tmp_path_factory):
        """One small traced + profiled serve-bench run shared by the
        class: its JSONL capture, JSON payload, and printed output."""
        directory = tmp_path_factory.mktemp("serve")
        trace_path = directory / "trace.jsonl"
        json_path = directory / "BENCH.json"
        code, out = _run(
            [
                "serve-bench", "--movies", "30",
                "--clients", "2", "--requests", "3", "--workers", "1",
                "--trace-out", str(trace_path),
                "--trace-sample", "1.0",
                "--profile",
                "--json-out", str(json_path),
            ]
        )
        assert code == 0
        return directory, out

    def test_trace_capture_written_and_announced(self, bench_dir):
        directory, out = bench_dir
        assert "traces: 6 kept" in out
        lines = (directory / "trace.jsonl").read_text().splitlines()
        assert len(lines) == 6

    def test_payload_carries_slo_profile_and_trace_stats(self, bench_dir):
        import json

        directory, __ = bench_dir
        payload = json.loads((directory / "BENCH.json").read_text())["serve"]
        assert payload["traces"]["kept"] == 6
        assert payload["slo"]["objectives"]
        assert "attributed_fraction" in payload["profile"]

    def test_export_chrome_validates(self, bench_dir):
        import json

        directory, __ = bench_dir
        chrome = directory / "trace.json"
        code, out = _run(
            [
                "trace", "export", str(directory / "trace.jsonl"),
                "-o", str(chrome), "--validate",
            ]
        )
        assert code == 0
        assert "6 trace(s) exported" in out
        document = json.loads(chrome.read_text())
        events = document["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "B"}
        assert {"request", "queue", "ask"} <= names
        # every request rendered on its own tid row
        assert len({e["tid"] for e in events if e["ph"] == "M"}) == 6

    def test_export_chrome_to_stdout(self, bench_dir):
        import json

        directory, __ = bench_dir
        code, out = _run(["trace", "export", str(directory / "trace.jsonl")])
        assert code == 0
        assert json.loads(out)["displayTimeUnit"] == "ms"

    def test_export_jsonl_round_trip(self, bench_dir):
        directory, __ = bench_dir
        source = directory / "trace.jsonl"
        code, out = _run(
            ["trace", "export", str(source), "--format", "jsonl"]
        )
        assert code == 0
        assert out.strip().splitlines() == (
            source.read_text().strip().splitlines()
        )

    def test_rootless_capture_exports_valid_empty_document(self, tmp_path):
        import json

        from repro.obs.context import RequestTrace, TraceContext

        trace = RequestTrace(
            context=TraceContext.mint("q"), root=None, outcome="shed_full"
        )
        path = tmp_path / "one.jsonl"
        path.write_text(json.dumps(trace.to_dict()) + "\n")
        code, out = _run(["trace", "export", str(path), "--validate"])
        assert code == 0
        assert json.loads(out)["traceEvents"] == []
