"""Unit tests for degree and cardinality constraints (Tables 1–2,

Formula 3)."""

import pytest

from repro.core import (
    CompositeCardinality,
    CompositeDegree,
    MaxPathLength,
    MaxTotalTuples,
    MaxTuplesPerRelation,
    TopRProjections,
    Unlimited,
    WeightThreshold,
    cardinality_for_response_time,
)
from repro.core.constraints import SchemaState
from repro.graph import Path
from repro.graph.schema_graph import JoinEdge, ProjectionEdge
from repro.relational import CostParameters


def _proj_path(rel, attr, weight, hops=0):
    path = None
    prev = rel
    for i in range(hops):
        edge = JoinEdge(prev, f"{rel}_h{i}", "K", "K", 1.0)
        path = Path.seed(edge) if path is None else path.extend(edge)
        prev = f"{rel}_h{i}"
    proj = ProjectionEdge(prev, attr, weight)
    return Path.seed(proj) if path is None else path.extend(proj)


def _join_path(src, dst, weight, hops=1):
    path = Path.seed(JoinEdge(src, dst, "K", "K", weight))
    for i in range(hops - 1):
        path = path.extend(JoinEdge(path.terminal_relation, f"{dst}_h{i}", "K", "K", 1.0))
    return path


class TestTopRProjections:
    def test_admits_until_r_distinct_attributes(self):
        constraint = TopRProjections(2)
        state = SchemaState()
        p1 = _proj_path("A", "X", 1.0)
        assert constraint.admits(state, p1)
        state.admit(p1)
        p2 = _proj_path("A", "Y", 0.9)
        assert constraint.admits(state, p2)
        state.admit(p2)
        assert not constraint.admits(state, _proj_path("A", "Z", 0.8))

    def test_duplicate_attribute_is_free(self):
        constraint = TopRProjections(1)
        state = SchemaState()
        state.admit(_proj_path("A", "X", 1.0))
        same_attr_again = _proj_path("A", "X", 0.5, hops=0)
        assert constraint.admits(state, same_attr_again)

    def test_join_path_needs_headroom(self):
        constraint = TopRProjections(1)
        state = SchemaState()
        join = _join_path("A", "B", 0.9)
        assert constraint.admits(state, join)
        state.admit(_proj_path("A", "X", 1.0))
        assert not constraint.admits(state, join)

    def test_terminal_on_failure(self):
        assert TopRProjections(3).terminal_on_failure

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TopRProjections(-1)

    def test_zero_admits_nothing(self):
        constraint = TopRProjections(0)
        assert not constraint.admits(SchemaState(), _proj_path("A", "X", 1.0))


class TestWeightThreshold:
    def test_threshold(self):
        constraint = WeightThreshold(0.9)
        state = SchemaState()
        assert constraint.admits(state, _proj_path("A", "X", 0.9))
        assert not constraint.admits(state, _proj_path("A", "X", 0.89))

    def test_join_paths_checked_on_weight(self):
        constraint = WeightThreshold(0.5)
        assert constraint.admits(SchemaState(), _join_path("A", "B", 0.6))
        assert not constraint.admits(SchemaState(), _join_path("A", "B", 0.4))

    def test_bounds(self):
        with pytest.raises(ValueError):
            WeightThreshold(1.5)
        with pytest.raises(ValueError):
            WeightThreshold(-0.1)

    def test_terminal(self):
        assert WeightThreshold(0.5).terminal_on_failure


class TestMaxPathLength:
    def test_projection_length(self):
        constraint = MaxPathLength(2)
        state = SchemaState()
        assert constraint.admits(state, _proj_path("A", "X", 1.0, hops=1))
        assert not constraint.admits(state, _proj_path("A", "X", 1.0, hops=2))

    def test_join_path_leaves_room_for_projection(self):
        constraint = MaxPathLength(2)
        assert constraint.admits(SchemaState(), _join_path("A", "B", 1.0, hops=1))
        assert not constraint.admits(SchemaState(), _join_path("A", "B", 1.0, hops=2))

    def test_not_terminal(self):
        assert not MaxPathLength(2).terminal_on_failure


class TestCompositeDegree:
    def test_conjunction(self):
        constraint = CompositeDegree(WeightThreshold(0.5), MaxPathLength(1))
        state = SchemaState()
        assert constraint.admits(state, _proj_path("A", "X", 0.6))
        assert not constraint.admits(state, _proj_path("A", "X", 0.4))
        assert not constraint.admits(state, _proj_path("A", "X", 1.0, hops=1))

    def test_terminal_only_if_all_terminal(self):
        assert CompositeDegree(
            WeightThreshold(0.5), TopRProjections(4)
        ).terminal_on_failure
        assert not CompositeDegree(
            WeightThreshold(0.5), MaxPathLength(2)
        ).terminal_on_failure

    def test_failing_terminal_detects_which_part_failed(self):
        constraint = CompositeDegree(WeightThreshold(0.5), MaxPathLength(1))
        state = SchemaState()
        # fails only the (non-terminal) length part
        assert not constraint.failing_terminal(
            state, _proj_path("A", "X", 0.9, hops=1)
        )
        # fails the (terminal) weight part
        assert constraint.failing_terminal(state, _proj_path("A", "X", 0.1))

    def test_needs_parts(self):
        with pytest.raises(ValueError):
            CompositeDegree()


class TestCardinalityConstraints:
    def test_unlimited(self):
        constraint = Unlimited()
        assert constraint.budget_for("R", {"R": 100}) is None
        assert not constraint.exhausted({"R": 10**9})

    def test_max_total(self):
        constraint = MaxTotalTuples(10)
        assert constraint.budget_for("R", {"A": 4, "B": 3}) == 3
        assert constraint.budget_for("R", {"A": 10}) == 0
        assert constraint.exhausted({"A": 10})
        assert not constraint.exhausted({"A": 9})

    def test_max_per_relation(self):
        constraint = MaxTuplesPerRelation(5)
        assert constraint.budget_for("R", {"R": 2}) == 3
        assert constraint.budget_for("S", {"R": 2}) == 5
        assert not constraint.exhausted({"R": 5})
        assert MaxTuplesPerRelation(0).exhausted({})

    def test_composite_takes_tightest(self):
        constraint = CompositeCardinality(
            MaxTotalTuples(10), MaxTuplesPerRelation(4)
        )
        assert constraint.budget_for("R", {"R": 1, "S": 2}) == 3
        assert constraint.budget_for("R", {"R": 0, "S": 8}) == 2
        assert constraint.exhausted({"S": 10})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MaxTotalTuples(-1)
        with pytest.raises(ValueError):
            MaxTuplesPerRelation(-2)


class TestFormulaThree:
    def test_derives_per_relation_cap(self):
        params = CostParameters(index_time=1.0, tuple_time=2.0)
        constraint = cardinality_for_response_time(90.0, 3, params)
        # c_R = 90 / (3 * 3) = 10
        assert constraint == MaxTuplesPerRelation(10)

    def test_floors(self):
        params = CostParameters(index_time=1.0, tuple_time=2.0)
        assert cardinality_for_response_time(100.0, 3, params).c0 == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            cardinality_for_response_time(-1, 3)
        with pytest.raises(ValueError):
            cardinality_for_response_time(10, 0)
