"""Unit tests for the Result Schema Generator (Figure 3)."""

import pytest

from repro.core import (
    CompositeDegree,
    MaxPathLength,
    TopRProjections,
    WeightThreshold,
    generate_result_schema,
)
from repro.core.schema_generator import SchemaGeneratorStats
from repro.datasets import movies_graph
from repro.graph import SchemaGraph


@pytest.fixture()
def graph():
    return movies_graph()


class TestPaperRunningExample:
    """Q = {"Woody Allen"} with weight >= 0.9 must reproduce Figure 4."""

    def test_result_schema_matches_figure_4(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.9)
        )
        assert set(schema.relations) == {
            "DIRECTOR", "ACTOR", "CAST", "MOVIE", "GENRE",
        }
        assert set(schema.attributes_of("DIRECTOR")) == {
            "DNAME", "BDATE", "BLOCATION",
        }
        assert set(schema.attributes_of("ACTOR")) == {"ANAME"}
        assert set(schema.attributes_of("MOVIE")) == {"TITLE", "YEAR"}
        assert set(schema.attributes_of("GENRE")) == {"GENRE"}
        assert schema.attributes_of("CAST") == ()

    def test_movie_has_in_degree_two(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.9)
        )
        degrees = schema.in_degrees()
        assert degrees["MOVIE"] == 2
        assert degrees["CAST"] == 1
        assert degrees["GENRE"] == 1
        assert degrees["DIRECTOR"] == 0
        assert degrees["ACTOR"] == 0

    def test_join_edges_match_figure_4(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.9)
        )
        edges = {(e.source, e.target) for e in schema.join_edges()}
        assert edges == {
            ("DIRECTOR", "MOVIE"),
            ("ACTOR", "CAST"),
            ("CAST", "MOVIE"),
            ("MOVIE", "GENRE"),
        }

    def test_retrieval_attributes_include_join_plumbing(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.9)
        )
        # DID is not visible on MOVIE but is needed to drive the join
        assert "DID" in schema.retrieval_attributes("MOVIE")
        assert "DID" not in schema.attributes_of("MOVIE")
        assert set(schema.retrieval_attributes("CAST")) == {"AID", "MID"}


class TestDegreeConstraintBehaviours:
    def test_top_r_counts_distinct_attributes(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR"], TopRProjections(3)
        )
        assert len(schema.projected_attributes) == 3
        # the three heaviest projections reachable from DIRECTOR
        assert ("DIRECTOR", "DNAME") in schema.projected_attributes
        assert ("MOVIE", "TITLE") in schema.projected_attributes

    def test_top_zero_is_empty(self, graph):
        schema = generate_result_schema(graph, ["DIRECTOR"], TopRProjections(0))
        assert schema.is_empty()
        assert schema.relations == ()

    def test_weight_one_keeps_only_weight_one_paths(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR"], WeightThreshold(1.0)
        )
        assert ("DIRECTOR", "DNAME") in schema.projected_attributes
        assert ("MOVIE", "TITLE") in schema.projected_attributes
        assert ("MOVIE", "YEAR") not in schema.projected_attributes

    def test_max_path_length_one_stays_local(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR"], MaxPathLength(1)
        )
        assert set(schema.relations) <= {"DIRECTOR"}
        assert set(schema.attributes_of("DIRECTOR")) == {
            "DID", "DNAME", "BLOCATION", "BDATE",
        }

    def test_length_constraint_is_exact_not_heuristic(self):
        """A light short path must survive a heavy long path's rejection

        (MaxPathLength is non-terminal)."""
        graph = SchemaGraph()
        graph.add_relation("A")
        graph.add_attribute("A", "CHEAP", 0.5)
        graph.add_relation("B")
        graph.add_attribute("B", "FAR", 1.0)
        graph.add_attribute("A", "K", 0.1)
        graph.add_attribute("B", "K", 0.1)
        graph.add_join("A", "B", "K", "K", 1.0)
        schema = generate_result_schema(graph, ["A"], MaxPathLength(1))
        # B.FAR (weight 1.0, length 2) pops first and is rejected;
        # A.CHEAP (weight 0.5, length 1) must still be admitted.
        assert ("A", "CHEAP") in schema.projected_attributes
        assert ("B", "FAR") not in schema.projected_attributes

    def test_composite(self, graph):
        schema = generate_result_schema(
            graph,
            ["DIRECTOR"],
            CompositeDegree(WeightThreshold(0.9), TopRProjections(2)),
        )
        assert len(schema.projected_attributes) == 2
        assert all(
            path.weight >= 0.9 for path in schema.projection_paths
        )


class TestTraversalMechanics:
    def test_unknown_token_relation_raises(self, graph):
        with pytest.raises(ValueError):
            generate_result_schema(graph, ["NOPE"], TopRProjections(1))

    def test_no_token_relations_yields_empty(self, graph):
        schema = generate_result_schema(graph, [], WeightThreshold(0.5))
        assert schema.is_empty()

    def test_duplicate_token_relations_deduplicated(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR", "DIRECTOR"], WeightThreshold(0.9)
        )
        assert schema.origin_relations == ("DIRECTOR",)

    def test_admission_in_decreasing_weight_order(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.8)
        )
        weights = [path.weight for path in schema.projection_paths]
        assert weights == sorted(weights, reverse=True)

    def test_paths_are_acyclic(self, graph):
        schema = generate_result_schema(
            graph, ["DIRECTOR"], WeightThreshold(0.3)
        )
        for path in schema.projection_paths:
            relations = path.relations()
            assert len(relations) == len(set(relations))

    def test_stats_populated(self, graph):
        stats = SchemaGeneratorStats()
        generate_result_schema(
            graph, ["DIRECTOR"], WeightThreshold(0.9), stats=stats
        )
        assert stats.paths_admitted > 0
        assert stats.paths_popped >= stats.paths_admitted
        assert stats.paths_pushed > 0

    def test_result_relations_subset_of_graph(self, graph):
        schema = generate_result_schema(
            graph, ["GENRE"], WeightThreshold(0.5)
        )
        assert set(schema.relations) <= set(graph.relations)

    def test_lower_threshold_explores_more(self, graph):
        tight = generate_result_schema(
            graph, ["THEATRE"], WeightThreshold(0.9)
        )
        loose = generate_result_schema(
            graph, ["THEATRE"], WeightThreshold(0.5)
        )
        assert set(tight.projected_attributes) <= set(
            loose.projected_attributes
        )
        assert len(loose.projected_attributes) > len(
            tight.projected_attributes
        )


class TestPerformanceGuard:
    def test_large_graph_generates_quickly(self):
        """A 100-relation, 800-attribute graph must plan in well under a

        second (Figure 7's 'negligible' claim at scale)."""
        import time

        from repro.bench import random_schema_graph

        big = random_schema_graph(
            n_relations=100, attrs_per_relation=8, extra_joins=80, seed=0
        )
        start = time.perf_counter()
        schema = generate_result_schema(
            big, [big.relations[0]], TopRProjections(50)
        )
        elapsed = time.perf_counter() - start
        assert len(schema.projected_attributes) == 50
        assert elapsed < 1.0
