"""Tests for the optional result-schema (plan) cache."""

import pytest

from repro import PrecisEngine, TopRProjections, WeightThreshold
from repro.datasets import movies_graph, paper_instance


@pytest.fixture()
def engine():
    return PrecisEngine(
        paper_instance(), graph=movies_graph(), cache_plans=True
    )


class TestPlanCache:
    def test_same_query_reuses_schema_object(self, engine):
        first, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        second, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        assert first is second

    def test_cache_keyed_by_token_relations_not_tokens(self, engine):
        """Different tokens landing in the same relations share a plan."""
        match_point, __, ___ = engine.plan(
            '"Match Point"', WeightThreshold(0.9)
        )
        anything_else, __, ___ = engine.plan(
            '"Anything Else"', WeightThreshold(0.9)
        )
        assert match_point is anything_else

    def test_different_degree_different_plan(self, engine):
        a, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        b, __, ___ = engine.plan('"Woody Allen"', TopRProjections(2))
        assert a is not b

    def test_profile_runs_bypass_cache(self, engine):
        from repro import Profile

        base, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        profile = Profile("p").set_join_weight("MOVIE", "GENRE", 0.1)
        scoped, __, ___ = engine.plan(
            '"Woody Allen"', WeightThreshold(0.9), profile=profile
        )
        assert scoped is not base
        assert "GENRE" not in scoped.relations
        # cache not polluted by the profile run
        again, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        assert again is base

    def test_query_time_weights_bypass_cache(self, engine):
        base, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        overridden, __, ___ = engine.plan(
            '"Woody Allen"',
            WeightThreshold(0.9),
            weights={("join", "MOVIE", "GENRE"): 0.1},
        )
        assert overridden is not base

    def test_disabled_by_default(self):
        engine = PrecisEngine(paper_instance(), graph=movies_graph())
        a, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        b, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        assert a is not b

    def test_ask_still_correct_with_cache(self, engine):
        answer = engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        again = engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert answer.cardinalities() == again.cardinalities()

    def test_token_order_shares_one_entry(self, engine):
        """Regression: the old cache keyed on token *discovery order*,

        so reordering the tokens of a query re-planned the identical
        relation set. The canonical key sorts the relations."""
        first, __, ___ = engine.plan("allen drama", WeightThreshold(0.9))
        second, __, ___ = engine.plan("drama allen", WeightThreshold(0.9))
        assert second is first
        stats = engine.cache.stats()["plans"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_graph_mutation_invalidates_entry(self, engine):
        first, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        assert "GENRE" in first.relations
        engine.graph.set_join_weight("MOVIE", "GENRE", 0.1)
        second, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        assert second is not first
        assert "GENRE" not in second.relations
        assert engine.cache.stats()["plans"]["invalidations"] == 1

    def test_data_mutation_does_not_invalidate_plans(self, engine):
        """Plans depend on the graph only — tuple churn keeps them hot."""
        first, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        engine.db.insert(
            "MOVIE", {"MID": 95, "TITLE": "Churn", "YEAR": 2024, "DID": 1}
        )
        second, __, ___ = engine.plan('"Woody Allen"', WeightThreshold(0.9))
        assert second is first
