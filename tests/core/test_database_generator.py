"""Unit tests for the Result Database Generator (Figure 5)."""

import pytest

from repro.core import (
    MaxTotalTuples,
    MaxTuplesPerRelation,
    STRATEGY_NAIVE,
    STRATEGY_ROUND_ROBIN,
    Unlimited,
    WeightThreshold,
    generate_result_database,
    generate_result_schema,
)
from repro.datasets import movies_graph, paper_instance
from repro.text import build_index


@pytest.fixture()
def db():
    return paper_instance()


@pytest.fixture()
def graph():
    return movies_graph()


@pytest.fixture()
def schema(graph):
    return generate_result_schema(
        graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.9)
    )


def _woody_seeds(db):
    index = build_index(db)
    seeds = {}
    for occ in index.lookup_token("Woody Allen"):
        seeds.setdefault(occ.relation, set()).update(occ.tids)
    return seeds


class TestSeeding:
    def test_seed_tuples_present(self, db, schema):
        answer, report = generate_result_database(
            db, schema, _woody_seeds(db), Unlimited()
        )
        assert report.seed_counts == {"DIRECTOR": 1, "ACTOR": 1}
        assert len(answer.relation("DIRECTOR")) == 1

    def test_seeds_outside_schema_ignored(self, db, schema):
        seeds = _woody_seeds(db)
        seeds["THEATRE"] = {1}  # THEATRE not in the result schema
        answer, report = generate_result_database(db, schema, seeds)
        assert "THEATRE" not in answer
        assert "THEATRE" not in report.seed_counts

    def test_seed_cardinality_bounded(self, db, graph):
        schema = generate_result_schema(graph, ["MOVIE"], WeightThreshold(0.9))
        index = build_index(db)
        tids = {
            occ.relation: set(occ.tids)
            for occ in index.lookup_word("the")  # several movie titles
        }
        answer, __ = generate_result_database(
            db, schema, tids, MaxTuplesPerRelation(1)
        )
        assert len(answer.relation("MOVIE")) == 1


class TestJoinWalk:
    def test_unconstrained_walk_reaches_all_relations(self, db, schema):
        answer, report = generate_result_database(
            db, schema, _woody_seeds(db), Unlimited()
        )
        assert answer.cardinalities() == {
            "DIRECTOR": 1,
            "ACTOR": 1,
            "MOVIE": 5,
            "CAST": 2,
            "GENRE": 8,
        }
        assert report.joins_executed == 4
        assert not report.skipped_edges

    def test_join_order_by_decreasing_weight_with_postponement(
        self, db, schema
    ):
        __, report = generate_result_database(
            db, schema, _woody_seeds(db), Unlimited()
        )
        order = [(e.edge.source, e.edge.target) for e in report.executions]
        # MOVIE -> GENRE must come after BOTH arrivals at MOVIE
        movie_arrivals = [
            order.index(("DIRECTOR", "MOVIE")),
            order.index(("CAST", "MOVIE")),
        ]
        assert order.index(("MOVIE", "GENRE")) > max(movie_arrivals)
        # CAST -> MOVIE must come after ACTOR -> CAST populated CAST
        assert order.index(("CAST", "MOVIE")) > order.index(("ACTOR", "CAST"))

    def test_duplicates_removed_at_shared_relation(self, db, graph):
        """Hollywood Ending arrives at MOVIE both via DIRECTOR and via

        CAST; it must appear once."""
        schema = generate_result_schema(
            graph, ["DIRECTOR", "ACTOR"], WeightThreshold(0.9)
        )
        answer, __ = generate_result_database(
            db, schema, _woody_seeds(db), Unlimited()
        )
        titles = [
            row["TITLE"] for row in answer.relation("MOVIE").scan(["TITLE"])
        ]
        assert len(titles) == len(set(titles))

    def test_paper_cardinality_example(self, db, schema):
        """'Up to three tuples per relation' — the §5.2 running example."""
        answer, report = generate_result_database(
            db, schema, _woody_seeds(db), MaxTuplesPerRelation(3)
        )
        cards = answer.cardinalities()
        assert cards["MOVIE"] == 3
        assert cards["GENRE"] == 3
        assert cards["DIRECTOR"] == 1
        titles = {
            row["TITLE"] for row in answer.relation("MOVIE").scan(["TITLE"])
        }
        assert titles == {
            "Match Point", "Melinda and Melinda", "Anything Else",
        }

    def test_max_total_stops_walk(self, db, schema):
        answer, report = generate_result_database(
            db, schema, _woody_seeds(db), MaxTotalTuples(2)
        )
        assert answer.total_tuples() == 2  # just the two seeds
        assert report.stopped_by_cardinality

    def test_tuples_subset_of_source(self, db, schema):
        answer, __ = generate_result_database(
            db, schema, _woody_seeds(db), Unlimited()
        )
        for relation in answer.relation_names:
            source = db.relation(relation)
            src_rows = {
                tuple(row.values)
                for row in source.scan(
                    answer.relation(relation).schema.attribute_names
                )
            }
            for row in answer.relation(relation).scan():
                assert tuple(row.values) in src_rows

    def test_tid_maps_point_back_to_source(self, db, schema):
        answer, report = generate_result_database(
            db, schema, _woody_seeds(db), Unlimited()
        )
        for relation, tid_map in report.tid_maps.items():
            for source_tid, answer_tid in tid_map.items():
                source_row = db.relation(relation).fetch(
                    source_tid,
                    answer.relation(relation).schema.attribute_names,
                )
                answer_row = answer.relation(relation).fetch(answer_tid)
                assert tuple(source_row.values) == tuple(answer_row.values)


class TestStrategies:
    def test_naive_may_dangle_on_to_n_joins(self, db, schema):
        answer, __ = generate_result_database(
            db,
            schema,
            _woody_seeds(db),
            MaxTuplesPerRelation(3),
            strategy=STRATEGY_NAIVE,
        )
        # NaïveQ keeps an arbitrary (tid-order) prefix of GENRE tuples
        genre_mids = {
            row["MID"] for row in answer.relation("GENRE").scan(["MID"])
        }
        # the tid-order prefix covers movies 1 and 2 only; movie 3 is
        # starved of genres — exactly the NaïveQ risk the paper describes
        assert genre_mids == {1, 2}
        assert 3 not in genre_mids

    def test_round_robin_spreads_across_movies(self, db, schema):
        answer, __ = generate_result_database(
            db,
            schema,
            _woody_seeds(db),
            MaxTuplesPerRelation(3),
            strategy=STRATEGY_ROUND_ROBIN,
        )
        genre_mids = {
            row["MID"] for row in answer.relation("GENRE").scan(["MID"])
        }
        assert genre_mids == {1, 2, 3}  # one genre per movie

    def test_auto_uses_round_robin_only_for_to_n(self, db, schema):
        __, report = generate_result_database(
            db, schema, _woody_seeds(db), MaxTuplesPerRelation(3),
            strategy="auto",
        )
        strategies = {
            (e.edge.source, e.edge.target): e.strategy
            for e in report.executions
        }
        assert strategies[("DIRECTOR", "MOVIE")] == STRATEGY_ROUND_ROBIN
        assert strategies[("MOVIE", "GENRE")] == STRATEGY_ROUND_ROBIN
        if ("CAST", "MOVIE") in strategies:  # to-1: MOVIE.MID is the pk
            assert strategies[("CAST", "MOVIE")] == STRATEGY_NAIVE

    def test_unknown_strategy_rejected(self, db, schema):
        with pytest.raises(ValueError):
            generate_result_database(
                db, schema, {}, Unlimited(), strategy="bogus"
            )


class TestAnswerShape:
    def test_answer_schema_is_projection_of_source(self, db, schema):
        answer, __ = generate_result_database(db, schema, _woody_seeds(db))
        for relation in answer.relation_names:
            attrs = set(answer.relation(relation).schema.attribute_names)
            source_attrs = set(
                db.relation(relation).schema.attribute_names
            )
            assert attrs <= source_attrs
            assert attrs == set(schema.retrieval_attributes(relation))

    def test_answer_declares_only_real_foreign_keys(self, db, schema):
        """Of the four G' edges only CAST→MOVIE follows an actual

        foreign-key direction; the others are reverse joins and must not
        become constraints of the answer."""
        answer, __ = generate_result_database(db, schema, _woody_seeds(db))
        fk_pairs = {
            (fk.source, fk.target) for fk in answer.schema.foreign_keys
        }
        assert fk_pairs == {("CAST", "MOVIE")}

    def test_empty_seeds_empty_answer(self, db, schema):
        answer, report = generate_result_database(db, schema, {})
        assert answer.total_tuples() == 0
        assert report.joins_executed == 0
