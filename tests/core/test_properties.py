"""Property-based tests for the précis core invariants (DESIGN.md §6)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MaxTotalTuples,
    MaxTuplesPerRelation,
    TopRProjections,
    WeightThreshold,
    generate_result_database,
    generate_result_schema,
)
from repro.datasets import generate_movies_database, movies_graph
from repro.graph import random_weight_assignment
from repro.text import build_index

_GRAPH = movies_graph()
_DB = generate_movies_database(n_movies=40, seed=11)
_INDEX = build_index(_DB)
_RELATIONS = list(_GRAPH.relations)


def _seeds_for_relation(relation, count=3):
    rel = _DB.relation(relation)
    return {relation: set(list(rel.tids())[:count])}


class TestResultSchemaInvariants:
    @given(
        seed=st.integers(0, 10**6),
        origin=st.sampled_from(_RELATIONS),
        threshold=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_weight_threshold_is_exact(self, seed, origin, threshold):
        """Every admitted projection path satisfies the threshold, and

        paths pop in non-increasing weight order, over random weights."""
        graph = _GRAPH.with_weights(
            random_weight_assignment(_GRAPH, random.Random(seed))
        )
        schema = generate_result_schema(
            graph, [origin], WeightThreshold(threshold)
        )
        weights = [path.weight for path in schema.projection_paths]
        assert all(w >= threshold - 1e-12 for w in weights)
        assert weights == sorted(weights, reverse=True)
        assert set(schema.relations) <= set(graph.relations)

    @given(
        seed=st.integers(0, 10**6),
        origin=st.sampled_from(_RELATIONS),
        r=st.integers(0, 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_r_bounds_distinct_attributes(self, seed, origin, r):
        graph = _GRAPH.with_weights(
            random_weight_assignment(_GRAPH, random.Random(seed))
        )
        schema = generate_result_schema(graph, [origin], TopRProjections(r))
        assert len(schema.projected_attributes) <= r

    @given(seed=st.integers(0, 10**6), origin=st.sampled_from(_RELATIONS))
    @settings(max_examples=40, deadline=None)
    def test_schema_attributes_subset_of_source(self, seed, origin):
        graph = _GRAPH.with_weights(
            random_weight_assignment(_GRAPH, random.Random(seed))
        )
        schema = generate_result_schema(graph, [origin], TopRProjections(8))
        for relation in schema.relations:
            source_attrs = set(_DB.relation(relation).schema.attribute_names)
            assert set(schema.retrieval_attributes(relation)) <= source_attrs


class TestResultDatabaseInvariants:
    @given(
        origin=st.sampled_from(_RELATIONS),
        cap=st.integers(1, 15),
        strategy=st.sampled_from(["naive", "round_robin", "auto"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_per_relation_cap_never_exceeded(self, origin, cap, strategy):
        schema = generate_result_schema(
            _GRAPH, [origin], WeightThreshold(0.6)
        )
        if schema.is_empty():
            return
        answer, __ = generate_result_database(
            _DB,
            schema,
            _seeds_for_relation(origin),
            MaxTuplesPerRelation(cap),
            strategy=strategy,
        )
        assert all(n <= cap for n in answer.cardinalities().values())

    @given(origin=st.sampled_from(_RELATIONS), total=st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_total_cap_never_exceeded(self, origin, total):
        schema = generate_result_schema(
            _GRAPH, [origin], WeightThreshold(0.6)
        )
        if schema.is_empty():
            return
        answer, __ = generate_result_database(
            _DB, schema, _seeds_for_relation(origin), MaxTotalTuples(total)
        )
        assert answer.total_tuples() <= total

    @given(origin=st.sampled_from(_RELATIONS))
    @settings(max_examples=30, deadline=None)
    def test_unconstrained_round_robin_answer_is_consistent(self, origin):
        """With no cardinality bound the answer must be a fully

        consistent sub-database (no dangling references)."""
        schema = generate_result_schema(
            _GRAPH, [origin], WeightThreshold(0.6)
        )
        if schema.is_empty():
            return
        answer, __ = generate_result_database(
            _DB, schema, _seeds_for_relation(origin)
        )
        assert answer.integrity_violations() == []

    @given(
        origin=st.sampled_from(_RELATIONS),
        cap=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_answer_tuples_subset_of_source(self, origin, cap):
        schema = generate_result_schema(
            _GRAPH, [origin], WeightThreshold(0.6)
        )
        if schema.is_empty():
            return
        answer, __ = generate_result_database(
            _DB, schema, _seeds_for_relation(origin), MaxTuplesPerRelation(cap)
        )
        for relation in answer.relation_names:
            attrs = answer.relation(relation).schema.attribute_names
            source_rows = {
                tuple(row.values) for row in _DB.relation(relation).scan(attrs)
            }
            for row in answer.relation(relation).scan():
                assert tuple(row.values) in source_rows
