"""EXPLAIN provenance: why each relation/batch is in the answer and
which constraint bounded it (repro.core.explain.build_explanation +
repro.obs.explain)."""

import json

import pytest

from repro.cache import CacheConfig
from repro.core import (
    MaxTotalTuples,
    MaxTuplesPerRelation,
    PrecisEngine,
    Unlimited,
    WeightThreshold,
    build_explanation,
    render_explanation,
)
from repro.core.constraints import (
    CompositeCardinality,
    CompositeDegree,
    MaxPathLength,
    TopRProjections,
)
from repro.datasets import movies_graph, paper_instance


@pytest.fixture()
def engine():
    return PrecisEngine(paper_instance(), graph=movies_graph())


class TestConstraintDescriptions:
    def test_each_constraint_names_its_parameter(self):
        assert WeightThreshold(0.9).describe() == "weight threshold (w0=0.9)"
        assert TopRProjections(5).describe() == "top-r projections (r=5)"
        assert MaxPathLength(3).describe() == "max path length (l0=3)"
        assert MaxTotalTuples(7).describe() == "max total tuples (c0=7)"
        assert (
            MaxTuplesPerRelation(4).describe()
            == "max tuples per relation (c0=4)"
        )
        assert Unlimited().describe() == "unlimited"

    def test_composites_join_parts(self):
        degree = CompositeDegree(WeightThreshold(0.5), MaxPathLength(2))
        assert (
            degree.describe()
            == "weight threshold (w0=0.5) AND max path length (l0=2)"
        )
        cardinality = CompositeCardinality(
            MaxTotalTuples(9), MaxTuplesPerRelation(3)
        )
        assert "AND" in cardinality.describe()


class TestRelationProvenance:
    def test_seed_vs_joined(self, engine):
        answer = engine.ask("Allen", translate=False)
        explanation = answer.explanation
        actor = explanation.relation("ACTOR")
        assert actor.kind == "seed"
        assert actor.tokens == ("allen",)
        movie = explanation.relation("MOVIE")
        assert movie.kind == "joined"
        assert movie.via_edge in (
            "DIRECTOR.DID → MOVIE.DID",
            "CAST.MID → MOVIE.MID",
        )
        assert movie.path_weight is not None
        assert explanation.relation("NOPE") is None

    def test_every_schema_relation_is_explained(self, engine):
        answer = engine.ask("Allen", translate=False)
        explained = {entry.relation for entry in answer.explanation.relations}
        assert explained == set(answer.result_schema.relations)


class TestBoundingConstraints:
    def test_degree_stop_names_the_constraint(self, engine):
        answer = engine.ask(
            "Allen", degree=WeightThreshold(0.9), translate=False
        )
        stop = answer.explanation.schema_stop
        assert stop.kind == "degree"
        assert stop.constraint == "weight threshold (w0=0.9)"
        assert stop.rejected_path is not None
        assert stop.rejected_weight < 0.9
        assert (
            "degree: weight threshold (w0=0.9)"
            in answer.explanation.bounding_constraints()
        )

    def test_composite_degree_names_the_failing_part(self, engine):
        answer = engine.ask(
            "Allen",
            degree=CompositeDegree(WeightThreshold(0.9), MaxPathLength(50)),
            translate=False,
        )
        # only the weight threshold can fail here — the length bound is
        # far beyond the graph diameter
        assert (
            answer.explanation.schema_stop.constraint
            == "weight threshold (w0=0.9)"
        )

    def test_cardinality_stop_names_the_constraint(self, engine):
        answer = engine.ask(
            "Allen", cardinality=MaxTotalTuples(5), translate=False
        )
        explanation = answer.explanation
        assert explanation.stopped_by_cardinality
        assert (
            "cardinality: max total tuples (c0=5)"
            in explanation.bounding_constraints()
        )
        assert any(batch.budget is not None for batch in explanation.batches)

    def test_unbounded_answer_reports_nothing(self, engine):
        # exhaust the whole graph and take every tuple: no constraint bites
        answer = engine.ask(
            "Allen",
            degree=WeightThreshold(0.0),
            cardinality=Unlimited(),
            translate=False,
        )
        explanation = answer.explanation
        assert explanation.schema_stop.kind == "exhausted"
        assert explanation.bounding_constraints() == []
        assert "bounded by: nothing" in explanation.render()


class TestBatchProvenance:
    def test_seed_and_join_batches(self, engine):
        answer = engine.ask("Allen", translate=False)
        batches = answer.explanation.batches
        seeds = [b for b in batches if b.kind == "seed"]
        joins = [b for b in batches if b.kind == "join"]
        assert {b.relation for b in seeds} == {"ACTOR", "DIRECTOR"}
        assert all(b.strategy is None for b in seeds)
        assert all(b.via_edge is not None for b in joins)
        assert all(b.strategy in ("naive", "round_robin") for b in joins)
        assert all(b.edge_weight is not None for b in joins)

    def test_budgets_ride_on_batches(self, engine):
        answer = engine.ask(
            "Allen", cardinality=MaxTotalTuples(5), translate=False
        )
        budgets = [b.budget for b in answer.explanation.batches]
        assert budgets[0] == 5  # first seed sees the full budget
        assert all(b is not None for b in budgets)


class TestCacheProvenance:
    def test_no_cache_reports_off(self, engine):
        answer = engine.ask("Allen", translate=False)
        assert answer.explanation.cache.plan == "off"
        assert answer.explanation.cache.answer == "off"

    def test_plan_cache_hit_keeps_original_stop(self):
        engine = PrecisEngine(
            paper_instance(),
            graph=movies_graph(),
            cache=CacheConfig(plans=True, answers=False),
        )
        first = engine.ask("Allen", translate=False)
        second = engine.ask("Allen", translate=False)
        assert first.explanation.cache.plan == "miss"
        assert second.explanation.cache.plan == "hit"
        # the stop reason rides on the cached ResultSchema
        assert (
            second.explanation.schema_stop == first.explanation.schema_stop
        )
        assert second.explanation.schema_stop.kind == "degree"

    def test_answer_cache_hit_returns_building_runs_explanation(self):
        engine = PrecisEngine(
            paper_instance(), graph=movies_graph(), cache=True
        )
        first = engine.ask("Allen", translate=False)
        second = engine.ask("Allen", translate=False)
        assert second is first  # served from the answer cache
        assert second.explanation.cache.answer == "miss"


class TestExportAndRender:
    def test_to_dict_is_json_serializable(self, engine):
        answer = engine.ask(
            "Allen", cardinality=MaxTotalTuples(5), translate=False
        )
        parsed = json.loads(json.dumps(answer.explanation.to_dict()))
        assert parsed["query"] == "Allen"
        assert parsed["schema_stop"]["kind"] == "degree"
        assert parsed["bounding_constraints"]
        assert parsed["cache"] == {"plan": "off", "answer": "off"}

    def test_render_names_the_decisions(self, engine):
        answer = engine.ask(
            "Allen", cardinality=MaxTotalTuples(5), translate=False
        )
        text = render_explanation(answer)
        assert "why-précis for 'Allen'" in text
        assert "ACTOR: seed" in text
        assert "joined via" in text
        assert "schema expansion stopped by weight threshold (w0=0.9)" in text
        assert "bounded by:" in text
        assert "cardinality: max total tuples (c0=5)" in text

    def test_render_rejects_explanationless_answer(self, engine):
        answer = engine.ask("Allen", translate=False)
        answer.explanation = None
        with pytest.raises(ValueError):
            render_explanation(answer)

    def test_explanation_excluded_from_answer_to_dict(self, engine):
        answer = engine.ask("Allen", translate=False)
        assert "explanation" not in answer.to_dict()

    def test_standalone_builder(self, engine):
        answer = engine.ask("Allen", translate=False)
        rebuilt = build_explanation(
            answer, WeightThreshold(0.9), Unlimited()
        )
        assert rebuilt.relation("ACTOR").kind == "seed"
        assert rebuilt.cache.plan == "off"


class TestPerOccurrenceExplanations:
    def test_each_homonym_answer_is_explained(self, engine):
        answers = engine.ask_per_occurrence("Allen", translate=False)
        assert len(answers) == 2
        for answer in answers:
            explanation = answer.explanation
            assert explanation is not None
            seeds = [
                e for e in explanation.relations if e.kind == "seed"
            ]
            assert len(seeds) == 1  # one schema per occurrence
