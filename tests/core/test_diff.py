"""Tests for answer diffing."""

import pytest

from repro import MaxTuplesPerRelation, WeightThreshold
from repro.core import diff_answers


class TestIdentical:
    def test_same_run_twice_is_empty(self, paper_engine):
        a = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        b = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        diff = diff_answers(a, b)
        assert diff.is_empty
        assert diff.summary() == "answers are identical"


class TestSchemaChanges:
    def test_threshold_widening_reports_new_regions(self, paper_engine):
        tight = paper_engine.ask('"Match Point"', degree=WeightThreshold(0.95))
        loose = paper_engine.ask('"Match Point"', degree=WeightThreshold(0.5))
        diff = diff_answers(tight, loose)
        assert "THEATRE" in diff.relations_added
        assert diff.relations_removed == ()
        assert ("GENRE", "GENRE") in diff.attributes_added
        assert "THEATRE" in diff.tuples_added
        assert "+relations" in diff.summary()

    def test_reverse_direction_mirrors(self, paper_engine):
        tight = paper_engine.ask('"Match Point"', degree=WeightThreshold(0.95))
        loose = paper_engine.ask('"Match Point"', degree=WeightThreshold(0.5))
        diff = diff_answers(loose, tight)
        assert "THEATRE" in diff.relations_removed
        assert "THEATRE" in diff.tuples_removed


class TestTupleChanges:
    def test_cap_change_reports_tuple_delta(self, paper_engine):
        small = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(2),
        )
        large = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(4),
        )
        diff = diff_answers(small, large)
        assert diff.relations_added == ()
        added_titles = {
            t["TITLE"] for t in diff.tuples_added.get("MOVIE", [])
        }
        assert added_titles  # the extra movies
        assert not diff.tuples_removed.get("MOVIE")

    def test_tuples_matched_on_shared_attributes(self, paper_engine):
        """An attribute-set change must not mark all tuples as new."""
        from repro.core import TopRProjections

        narrow = paper_engine.ask(
            '"Woody Allen"', degree=TopRProjections(4)
        )
        wide = paper_engine.ask(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        diff = diff_answers(narrow, wide)
        movie_added = diff.tuples_added.get("MOVIE", [])
        # same movies in both; only the attribute set grew
        assert movie_added == []


class TestDiffSymmetry:
    def test_added_removed_mirror(self, paper_engine):
        """diff(a,b).added must equal diff(b,a).removed, across a sweep

        of thresholds."""
        thresholds = [1.0, 0.9, 0.7, 0.5]
        answers = [
            paper_engine.ask('"Match Point"', degree=WeightThreshold(t))
            for t in thresholds
        ]
        for a in answers:
            for b in answers:
                forward = diff_answers(a, b)
                backward = diff_answers(b, a)
                assert forward.relations_added == backward.relations_removed
                assert forward.attributes_added == backward.attributes_removed
                assert forward.tuples_added == backward.tuples_removed
