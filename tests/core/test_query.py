"""Unit tests for PrecisQuery parsing."""

from repro.core import PrecisQuery


class TestParse:
    def test_words(self):
        query = PrecisQuery.parse("woody comedy")
        assert query.tokens == (("woody",), ("comedy",))

    def test_phrases(self):
        query = PrecisQuery.parse('"Woody Allen" drama')
        assert query.tokens == (("woody", "allen"), ("drama",))

    def test_empty(self):
        assert PrecisQuery.parse("").is_empty()
        assert PrecisQuery.parse("   ").is_empty()

    def test_text_preserved(self):
        text = '"Woody Allen" 2005'
        assert PrecisQuery.parse(text).text == text

    def test_token_strings(self):
        query = PrecisQuery.parse('"Match Point" drama')
        assert query.token_strings == ("match point", "drama")


class TestFromTokens:
    def test_each_string_is_one_token(self):
        query = PrecisQuery.from_tokens(["Woody Allen", "comedy"])
        assert query.tokens == (("woody", "allen"), ("comedy",))

    def test_empty_tokens_dropped(self):
        query = PrecisQuery.from_tokens(["", "drama"])
        assert query.tokens == (("drama",),)

    def test_str(self):
        query = PrecisQuery.from_tokens(["Woody Allen"])
        assert str(query) == '"Woody Allen"'
