"""Tests for per-occurrence answers (§5.1 homonyms) and join ordering."""

import pytest

from repro import MaxTotalTuples, MaxTuplesPerRelation, WeightThreshold
from repro.core import (
    JOIN_ORDER_FIFO,
    JOIN_ORDER_WEIGHT,
    generate_result_database,
)
from repro.core.result_schema import ResultSchema
from repro.graph import Path
from repro.graph.schema_graph import JoinEdge, ProjectionEdge
from repro.relational import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    RelationSchema,
)


class TestAskPerOccurrence:
    def test_one_answer_per_homonym(self, paper_engine):
        answers = paper_engine.ask_per_occurrence(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        assert len(answers) == 2
        origins = {a.result_schema.origin_relations for a in answers}
        assert origins == {("ACTOR",), ("DIRECTOR",)}

    def test_answers_are_independent(self, paper_engine):
        actor, director = sorted(
            paper_engine.ask_per_occurrence(
                '"Woody Allen"', degree=WeightThreshold(0.9)
            ),
            key=lambda a: a.result_schema.origin_relations,
        )
        # the actor-rooted answer has no DIRECTOR relation at w>=0.9
        assert "DIRECTOR" not in actor.result_schema.relations
        assert "ACTOR" not in director.result_schema.relations
        # each narrative covers only its own facet
        assert "As an actor" in actor.narrative
        assert "As a director" not in actor.narrative
        assert "As a director" in director.narrative

    def test_movie_in_degree_is_one_per_facet(self, paper_engine):
        answers = paper_engine.ask_per_occurrence(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        for answer in answers:
            assert answer.result_schema.in_degree("MOVIE") == 1

    def test_single_occurrence_token(self, paper_engine):
        answers = paper_engine.ask_per_occurrence(
            '"Scarlett Johansson"', degree=WeightThreshold(0.9)
        )
        assert len(answers) == 1
        assert answers[0].result_schema.origin_relations == ("ACTOR",)

    def test_unmatched_token_yields_no_answers(self, paper_engine):
        assert paper_engine.ask_per_occurrence("zz-none") == []

    def test_cardinality_applies_per_answer(self, paper_engine):
        answers = paper_engine.ask_per_occurrence(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(2),
        )
        for answer in answers:
            assert all(n <= 2 for n in answer.cardinalities().values())

    def test_query_time_weights_apply(self, paper_engine):
        """§3.1 query-time overrides work per occurrence too: muting
        the MOVIE→GENRE edge drops GENRE from every facet's schema."""
        base = paper_engine.ask_per_occurrence(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        assert any(
            "GENRE" in a.result_schema.relations for a in base
        )
        muted = paper_engine.ask_per_occurrence(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            weights={("join", "MOVIE", "GENRE"): 0.1},
        )
        assert len(muted) == len(base)
        assert all(
            "GENRE" not in a.result_schema.relations for a in muted
        )

    def test_weights_layer_over_profile(self, paper_engine):
        from repro import Profile

        profile = Profile("genre-fan").set_join_weight(
            "MOVIE", "GENRE", 1.0
        )
        answers = paper_engine.ask_per_occurrence(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            profile=profile,
            weights={("join", "MOVIE", "GENRE"): 0.1},  # override wins
        )
        assert all(
            "GENRE" not in a.result_schema.relations for a in answers
        )


def _fork_fixture():
    """A: 1 seed tuple; A→B (w 0.6) admitted before A→C (w 0.9).

    Both B and C hold 5 joinable tuples; a total budget of 1 + 3 forces
    the two join orders to pick different relations first.
    """
    schema = DatabaseSchema(
        [
            RelationSchema(
                "A",
                [Column("ID", DataType.INT, nullable=False),
                 Column("VAL", DataType.TEXT)],
                primary_key="ID",
            ),
            RelationSchema(
                "B",
                [Column("ID", DataType.INT, nullable=False),
                 Column("REF", DataType.INT)],
                primary_key="ID",
            ),
            RelationSchema(
                "C",
                [Column("ID", DataType.INT, nullable=False),
                 Column("REF", DataType.INT)],
                primary_key="ID",
            ),
        ]
    )
    db = Database(schema)
    db.insert("A", {"ID": 1, "VAL": "seed"})
    for i in range(5):
        db.insert("B", {"ID": 10 + i, "REF": 1})
        db.insert("C", {"ID": 20 + i, "REF": 1})
    db.create_join_indexes()
    for rel in ("B", "C"):
        db.relation(rel).create_index("REF")

    edge_b = JoinEdge("A", "B", "ID", "REF", 0.6)
    edge_c = JoinEdge("A", "C", "ID", "REF", 0.9)
    result_schema = ResultSchema(origin_relations=("A",))
    # admission order: the B path first (e.g. it was shorter), the
    # heavier C path second — so FIFO != weight order
    result_schema.admit(
        Path.seed(edge_b).extend(ProjectionEdge("B", "ID", 1.0))
    )
    result_schema.admit(
        Path.seed(edge_c).extend(ProjectionEdge("C", "ID", 1.0))
    )
    result_schema.admit(Path.seed(ProjectionEdge("A", "VAL", 1.0)))
    return db, result_schema


class TestJoinOrder:
    def test_weight_order_populates_heaviest_first(self):
        db, schema = _fork_fixture()
        answer, report = generate_result_database(
            db, schema, {"A": {1}}, MaxTotalTuples(4),
            join_order=JOIN_ORDER_WEIGHT,
        )
        # 1 seed + 3 budget: the heavy A→C edge wins the budget
        assert len(answer.relation("C")) == 3
        assert len(answer.relation("B")) == 0

    def test_fifo_order_populates_admission_first(self):
        db, schema = _fork_fixture()
        answer, __ = generate_result_database(
            db, schema, {"A": {1}}, MaxTotalTuples(4),
            join_order=JOIN_ORDER_FIFO,
        )
        assert len(answer.relation("B")) == 3
        assert len(answer.relation("C")) == 0

    def test_orders_agree_without_budget_pressure(self):
        db, schema = _fork_fixture()
        by_weight, __ = generate_result_database(
            db, schema, {"A": {1}}, join_order=JOIN_ORDER_WEIGHT
        )
        by_fifo, __ = generate_result_database(
            db, schema, {"A": {1}}, join_order=JOIN_ORDER_FIFO
        )
        assert by_weight.cardinalities() == by_fifo.cardinalities()

    def test_unknown_join_order_rejected(self):
        db, schema = _fork_fixture()
        with pytest.raises(ValueError):
            generate_result_database(
                db, schema, {"A": {1}}, join_order="random"
            )
