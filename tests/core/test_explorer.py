"""Tests for the interactive Explorer (§3.1 progressive exploration)."""

import pytest

from repro import MaxTuplesPerRelation
from repro.core import Explorer


@pytest.fixture()
def explorer(paper_engine):
    return Explorer(paper_engine, '"Match Point"', start_threshold=1.0)


class TestExpansion:
    def test_starts_tight(self, explorer):
        answer = explorer.current()
        assert set(answer.result_schema.relations) == {"MOVIE"}

    def test_expand_reaches_new_regions_monotonically(self, explorer):
        seen = [set(explorer.current().result_schema.relations)]
        for __ in range(10):
            answer = explorer.expand()
            seen.append(set(answer.result_schema.relations))
        for earlier, later in zip(seen, seen[1:]):
            assert earlier <= later
        assert "THEATRE" in seen[-1]  # the loosest region of Figure 1

    def test_every_expand_admits_new_paths_until_exhausted(self, explorer):
        """Each threshold level corresponds to at least one newly

        admissible projection path (levels are path weights, so the
        path count strictly grows; the attribute set may not, when the
        new path is a second route to a known attribute)."""
        previous = len(explorer.current().result_schema.projection_paths)
        levels = explorer.reachable_levels()
        for __ in range(len(levels) + 2):
            answer = explorer.expand()
            current = len(answer.result_schema.projection_paths)
            assert current > previous or explorer.threshold == levels[-1]
            if explorer.threshold == levels[-1]:
                break
            previous = current

    def test_expand_at_bottom_is_stable(self, explorer):
        for __ in range(30):
            explorer.expand()
        threshold = explorer.threshold
        explorer.expand()
        assert explorer.threshold == threshold


class TestNarrow:
    def test_narrow_undoes_expand(self, explorer):
        before = explorer.threshold
        explorer.expand()
        explorer.narrow()
        assert explorer.threshold == before

    def test_narrow_at_top_is_stable(self, explorer):
        explorer.narrow()
        assert explorer.threshold == 1.0

    def test_narrow_restores_schema(self, explorer):
        original = set(explorer.current().result_schema.relations)
        explorer.expand()
        explorer.expand()
        explorer.narrow()
        explorer.narrow()
        assert set(explorer.current().result_schema.relations) == original


class TestFrontier:
    def test_frontier_previews_next_relations(self, explorer):
        weight, added = explorer.frontier()
        assert weight < 1.0
        answer = explorer.expand()
        for relation in added:
            assert relation in answer.result_schema.relations

    def test_frontier_at_bottom(self, explorer):
        for __ in range(30):
            explorer.expand()
        weight, added = explorer.frontier()
        assert added == ()
        assert weight == explorer.threshold


class TestCardinalityCarriesThrough:
    def test_cap_applies_at_every_level(self, paper_engine):
        explorer = Explorer(
            paper_engine,
            '"Woody Allen"',
            cardinality=MaxTuplesPerRelation(2),
        )
        for __ in range(5):
            answer = explorer.expand()
            assert all(n <= 2 for n in answer.cardinalities().values())
