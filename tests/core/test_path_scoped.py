"""Tests for path-scoped driving tuples (§5.2's P_d dependence).

Scenario: two token relations, A and B, both feed into HUB; only A's
admitted path continues beyond HUB into OUT. With the simple (default)
reading, B's tuples that landed in HUB also drive the HUB→OUT join;
path-scoped execution restricts that join to tuples that arrived along
A's path — the paths actually stored in P_d.
"""

import pytest

from repro.core import Unlimited, generate_result_database
from repro.core.result_schema import ResultSchema
from repro.graph import Path
from repro.graph.schema_graph import JoinEdge, ProjectionEdge
from repro.relational import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    RelationSchema,
)


@pytest.fixture()
def setup():
    schema = DatabaseSchema(
        [
            RelationSchema(
                "A",
                [Column("ID", DataType.INT, nullable=False),
                 Column("HREF", DataType.INT)],
                primary_key="ID",
            ),
            RelationSchema(
                "B",
                [Column("ID", DataType.INT, nullable=False),
                 Column("HREF", DataType.INT)],
                primary_key="ID",
            ),
            RelationSchema(
                "HUB",
                [Column("HID", DataType.INT, nullable=False),
                 Column("NAME", DataType.TEXT)],
                primary_key="HID",
            ),
            RelationSchema(
                "OUT",
                [Column("OID", DataType.INT, nullable=False),
                 Column("HID", DataType.INT),
                 Column("LABEL", DataType.TEXT)],
                primary_key="OID",
            ),
        ]
    )
    db = Database(schema)
    # hub rows 1 and 2; A's seed points at hub 1, B's seed at hub 2
    db.insert("HUB", {"HID": 1, "NAME": "via-A"})
    db.insert("HUB", {"HID": 2, "NAME": "via-B"})
    db.insert("A", {"ID": 10, "HREF": 1})
    db.insert("B", {"ID": 20, "HREF": 2})
    db.insert("OUT", {"OID": 100, "HID": 1, "LABEL": "from hub 1"})
    db.insert("OUT", {"OID": 200, "HID": 2, "LABEL": "from hub 2"})
    db.create_join_indexes()
    db.relation("HUB").create_index("HID")
    db.relation("OUT").create_index("HID")

    a_hub = JoinEdge("A", "HUB", "HREF", "HID", 0.9)
    b_hub = JoinEdge("B", "HUB", "HREF", "HID", 0.9)
    hub_out = JoinEdge("HUB", "OUT", "HID", "HID", 0.8)

    result_schema = ResultSchema(origin_relations=("A", "B"))
    # A's path continues through HUB into OUT; B's path stops at HUB
    result_schema.admit(
        Path.seed(a_hub)
        .extend(hub_out)
        .extend(ProjectionEdge("OUT", "LABEL", 1.0))
    )
    result_schema.admit(
        Path.seed(a_hub).extend(ProjectionEdge("HUB", "NAME", 1.0))
    )
    result_schema.admit(
        Path.seed(b_hub).extend(ProjectionEdge("HUB", "NAME", 1.0))
    )
    seeds = {"A": {1}, "B": {1}}  # tids of the single A and B rows
    return db, result_schema, seeds


class TestPathScoping:
    def test_default_simple_reading_drags_everything(self, setup):
        db, schema, seeds = setup
        answer, __ = generate_result_database(
            db, schema, seeds, Unlimited(), path_scoped=False
        )
        labels = {
            row["LABEL"] for row in answer.relation("OUT").scan(["LABEL"])
        }
        assert labels == {"from hub 1", "from hub 2"}

    def test_path_scoped_follows_only_pd(self, setup):
        db, schema, seeds = setup
        answer, __ = generate_result_database(
            db, schema, seeds, Unlimited(), path_scoped=True
        )
        labels = {
            row["LABEL"] for row in answer.relation("OUT").scan(["LABEL"])
        }
        # B's hub tuple must not drive the HUB→OUT join: only A's path
        # continues through it in P_d
        assert labels == {"from hub 1"}
        # but both hub tuples are still in the answer (both paths end
        # at HUB's NAME)
        assert len(answer.relation("HUB")) == 2

    def test_scoping_tracks_duplicate_arrivals(self, setup):
        """If B's seed pointed at the same hub as A's, that shared hub

        tuple gains both arrival tags and does drive HUB→OUT."""
        db, schema, __ = setup
        shared = Database(db.schema)
        shared.insert("HUB", {"HID": 1, "NAME": "shared"})
        shared.insert("A", {"ID": 10, "HREF": 1})
        shared.insert("B", {"ID": 20, "HREF": 1})
        shared.insert("OUT", {"OID": 100, "HID": 1, "LABEL": "reached"})
        shared.create_join_indexes()
        shared.relation("OUT").create_index("HID")
        answer, __ = generate_result_database(
            shared, schema, {"A": {1}, "B": {1}}, Unlimited(),
            path_scoped=True,
        )
        labels = {
            row["LABEL"] for row in answer.relation("OUT").scan(["LABEL"])
        }
        assert labels == {"reached"}

    def test_engine_exposes_flag(self, paper_engine):
        from repro import WeightThreshold

        scoped = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            path_scoped=True,
        )
        plain = paper_engine.ask(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        # in the running example every admitted path continues through
        # every executed edge, so the two modes agree
        assert scoped.cardinalities() == plain.cardinalities()
