"""Oracle test: unconstrained generation equals reachability closure.

For an *acyclic* result schema and no cardinality constraint, the
Figure 5 walk (every edge executed once, after all arrivals at its
source) must produce exactly the value-join closure of the seeds: every
target tuple reachable from a seed along ``G'`` edges, however many
hops away. The oracle computes that closure by naive fixpoint iteration
and compares per-relation tuple sets on randomly generated trees of
relations with random data.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Unlimited, generate_result_database, generate_result_schema
from repro.core.constraints import WeightThreshold
from repro.graph import SchemaGraph
from repro.relational import (
    Column,
    Database,
    DatabaseSchema,
    DataType,
    RelationSchema,
)


def _random_tree_instance(seed: int):
    """A random tree of 2–5 relations; each non-root references its

    parent via REF; random tuples with random reference values
    (possibly dangling, to exercise partial joins)."""
    rng = random.Random(seed)
    n = rng.randint(2, 5)
    parents = {0: None}
    for i in range(1, n):
        parents[i] = rng.randrange(i)

    relations = []
    for i in range(n):
        columns = [Column("ID", DataType.INT, nullable=False)]
        if parents[i] is not None:
            columns.append(Column("REF", DataType.INT))
        relations.append(RelationSchema(f"T{i}", columns, primary_key="ID"))
    schema = DatabaseSchema(relations)
    db = Database(schema, enforce_foreign_keys=False)

    ids: dict[int, list[int]] = {}
    next_id = 1
    for i in range(n):
        ids[i] = []
        for __ in range(rng.randint(1, 8)):
            row = {"ID": next_id}
            if parents[i] is not None:
                pool = ids[parents[i]]
                # mix of valid and dangling references
                row["REF"] = (
                    rng.choice(pool) if pool and rng.random() < 0.8
                    else rng.randint(100, 120)
                )
            db.insert(f"T{i}", row)
            ids[i].append(next_id)
            next_id += 1
    db.create_join_indexes()
    for i in range(1, n):
        if not db.relation(f"T{i}").has_index("REF"):
            db.relation(f"T{i}").create_index("REF")

    graph = SchemaGraph()
    for i in range(n):
        graph.add_relation(f"T{i}")
        graph.add_attribute(f"T{i}", "ID", 1.0)
        if parents[i] is not None:
            graph.add_attribute(f"T{i}", "REF", 0.2)
    for i in range(1, n):
        graph.add_join(f"T{parents[i]}", f"T{i}", "ID", "REF", 1.0)
    return db, graph, parents, n


def _closure(db, result_schema, seeds):
    """Fixpoint value-join closure of the seeds along G' edges."""
    reached = {name: set() for name in result_schema.relations}
    for relation, tids in seeds.items():
        if relation in reached:
            reached[relation] |= set(tids)
    changed = True
    while changed:
        changed = False
        for edge in result_schema.join_edges():
            source = db.relation(edge.source)
            target = db.relation(edge.target)
            values = {
                source.fetch(tid)[edge.source_attribute]
                for tid in reached[edge.source]
            }
            new = target.lookup_in(edge.target_attribute, values)
            if not new <= reached[edge.target]:
                reached[edge.target] |= new
                changed = True
    return reached


class TestUnconstrainedEqualsClosure:
    @given(seed=st.integers(0, 5000), seed_count=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_generator_matches_fixpoint(self, seed, seed_count):
        db, graph, parents, n = _random_tree_instance(seed)
        result_schema = generate_result_schema(
            graph, ["T0"], WeightThreshold(0.9)
        )
        root_tids = list(db.relation("T0").tids())
        seeds = {"T0": set(root_tids[:seed_count])}
        __, report = generate_result_database(
            db, result_schema, seeds, Unlimited()
        )
        expected = _closure(db, result_schema, seeds)
        # compare via the report's tid maps (they key by *source* tids)
        for relation in result_schema.relations:
            got = set(report.tid_maps.get(relation, {}))
            assert got == expected[relation], (
                relation, got, expected[relation],
            )
