"""Tests for the result-size estimator."""

import pytest

from repro import PrecisEngine, WeightThreshold
from repro.core import (
    MaxTuplesPerRelation,
    estimate_cardinalities,
    estimate_total,
    generate_result_database,
    generate_result_schema,
    suggest_cardinality,
)
from repro.bench import chain_database, chain_graph
from repro.datasets import generate_movies_database, movies_graph
from repro.text import build_index


class TestUniformChainExactness:
    """On a uniform-fanout chain the estimate should be near-exact."""

    def test_matches_actual(self):
        db = chain_database(4, roots=50, fanout=3, seed=1)
        schema = generate_result_schema(
            chain_graph(4), ["R1"], WeightThreshold(0.9)
        )
        seeds = {"R1": set(list(db.relation("R1").tids())[:10])}
        estimated = estimate_cardinalities(db, schema, {"R1": 10})
        answer, __ = generate_result_database(db, schema, seeds)
        actual = answer.cardinalities()
        for relation, expected in estimated.items():
            assert expected == pytest.approx(actual[relation], rel=0.05), (
                relation, estimated, actual,
            )

    def test_cap_respected_in_estimate(self):
        db = chain_database(3, roots=50, fanout=3, seed=1)
        schema = generate_result_schema(
            chain_graph(3), ["R1"], WeightThreshold(0.9)
        )
        estimated = estimate_cardinalities(
            db, schema, {"R1": 20}, per_relation_cap=15
        )
        assert all(v <= 15 for v in estimated.values())


class TestMoviesApproximation:
    def test_within_factor_of_actual(self):
        db = generate_movies_database(n_movies=100, seed=3)
        graph = movies_graph()
        index = build_index(db)
        name = next(
            row["DNAME"] for row in db.relation("DIRECTOR").scan(["DNAME"])
        )
        (occ,) = [
            o for o in index.lookup_token(name) if o.relation == "DIRECTOR"
        ]
        schema = generate_result_schema(
            graph, ["DIRECTOR"], WeightThreshold(0.9)
        )
        estimated = estimate_total(
            db, schema, {"DIRECTOR": len(occ.tids)}
        )
        answer, __ = generate_result_database(
            db, schema, {"DIRECTOR": set(occ.tids)}
        )
        actual = answer.total_tuples()
        assert actual / 3 <= estimated <= actual * 3, (estimated, actual)

    def test_estimate_never_exceeds_database(self):
        db = generate_movies_database(n_movies=50, seed=3)
        schema = generate_result_schema(
            movies_graph(), ["MOVIE"], WeightThreshold(0.5)
        )
        estimated = estimate_cardinalities(db, schema, {"MOVIE": 50})
        for relation, value in estimated.items():
            assert value <= len(db.relation(relation))


class TestSuggestCardinality:
    def test_suggested_cap_hits_target(self):
        db = chain_database(4, roots=50, fanout=3, seed=1)
        schema = generate_result_schema(
            chain_graph(4), ["R1"], WeightThreshold(0.9)
        )
        seeds = {"R1": set(list(db.relation("R1").tids())[:10])}
        constraint = suggest_cardinality(db, schema, {"R1": 10}, 60)
        assert isinstance(constraint, MaxTuplesPerRelation)
        answer, __ = generate_result_database(db, schema, seeds, constraint)
        # within target plus modest estimation slack
        assert answer.total_tuples() <= 60 * 1.2

    def test_bigger_target_bigger_cap(self):
        db = chain_database(3, roots=50, fanout=3, seed=1)
        schema = generate_result_schema(
            chain_graph(3), ["R1"], WeightThreshold(0.9)
        )
        small = suggest_cardinality(db, schema, {"R1": 10}, 30)
        large = suggest_cardinality(db, schema, {"R1": 10}, 300)
        assert large.c0 > small.c0

    def test_validation(self):
        db = chain_database(2, roots=5, fanout=2)
        schema = generate_result_schema(
            chain_graph(2), ["R1"], WeightThreshold(0.9)
        )
        with pytest.raises(ValueError):
            suggest_cardinality(db, schema, {"R1": 5}, 0)
