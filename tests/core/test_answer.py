"""Unit tests for the PrecisAnswer object."""

from repro import MaxTuplesPerRelation, WeightThreshold
from repro.core import STRATEGY_NAIVE


class TestAnswerViews:
    def test_rows_of_hides_plumbing_attributes(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        rows = answer.rows_of("MOVIE")
        assert rows
        for row in rows:
            assert set(row) == {"TITLE", "YEAR"}  # DID and MID hidden

    def test_rows_of_invisible_relation_is_empty(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert answer.rows_of("CAST") == []  # no visible attributes

    def test_describe_contains_sections(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        text = answer.describe()
        assert "Result schema:" in text
        assert "Result database:" in text
        assert "Narrative:" in text
        assert "Match Point" in text

    def test_describe_not_found(self, paper_engine):
        answer = paper_engine.ask("qqqq-none")
        assert "no token matched" in answer.describe()

    def test_dangling_tuples_zero_for_round_robin_full(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert answer.dangling_tuples() == 0

    def test_dangling_tuples_positive_for_naive_trim(self, paper_engine):
        """NaïveQ + a tight per-relation cap leaves CAST tuples whose

        movie was trimmed away — a visible referential gap."""
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(2),
            strategy=STRATEGY_NAIVE,
        )
        assert answer.dangling_tuples() > 0

    def test_repr(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert "PrecisAnswer" in repr(answer)


class TestToDict:
    def test_json_roundtrip(self, paper_engine):
        import json

        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(3),
        )
        data = json.loads(json.dumps(answer.to_dict()))
        assert data["found"]
        assert data["query"] == '"Woody Allen"'
        assert data["schema"]["MOVIE"] == ["TITLE", "YEAR"]
        titles = [row["TITLE"] for row in data["relations"]["MOVIE"]]
        assert "Match Point" in titles
        assert data["narrative"]
        assert data["cost"]["tuple_reads"] > 0
        joins = {(j["source"], j["target"]) for j in data["joins"]}
        assert ("MOVIE", "GENRE") in joins

    def test_not_found_answer_serializes(self, paper_engine):
        import json

        answer = paper_engine.ask('"zz none"')
        data = json.loads(json.dumps(answer.to_dict()))
        assert not data["found"]
        assert data["unmatched_tokens"] == ["zz none"]
        assert data["relations"] == {}

    def test_values_rendered_as_text(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        data = answer.to_dict()
        for row in data["relations"]["MOVIE"]:
            assert isinstance(row["YEAR"], str)  # rendered, not raw int
