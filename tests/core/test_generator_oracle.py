"""Oracle tests: the Figure 3 generator vs brute-force path enumeration.

For small random graphs we can enumerate *every* acyclic projection path
exhaustively. Under a weight-threshold constraint the generator must
admit exactly the paths above the threshold (its best-first pruning is
provably lossless there: weights only shrink along a path); under top-r
it must pick attributes no worse than the brute-force optimum.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TopRProjections, WeightThreshold, generate_result_schema
from repro.graph import SchemaGraph


def _random_graph(seed: int) -> SchemaGraph:
    rng = random.Random(seed)
    graph = SchemaGraph()
    n_relations = rng.randint(2, 5)
    names = [f"R{i}" for i in range(n_relations)]
    weights = [0.3, 0.5, 0.7, 0.9, 1.0]
    for name in names:
        graph.add_relation(name)
        for j in range(rng.randint(1, 3)):
            graph.add_attribute(name, f"A{j}", rng.choice(weights))
    for a, b in itertools.permutations(names, 2):
        if rng.random() < 0.4:
            graph.add_join(a, b, "A0", "A0", rng.choice(weights))
    return graph


def _all_projection_paths(graph: SchemaGraph, origin: str):
    """Exhaustive DFS enumeration of acyclic projection paths."""
    paths = []

    def visit(relation: str, visited: tuple[str, ...], joins: tuple, weight: float):
        for edge in graph.projection_edges_of(relation):
            paths.append(
                (origin, joins, (relation, edge.attribute), weight * edge.weight)
            )
        for edge in graph.join_edges_from(relation):
            if edge.target in visited:
                continue
            visit(
                edge.target,
                visited + (edge.target,),
                joins + ((edge.source, edge.target),),
                weight * edge.weight,
            )

    visit(origin, (origin,), (), 1.0)
    return paths


class TestWeightThresholdExactness:
    @given(
        seed=st.integers(0, 10_000),
        threshold=st.sampled_from([0.25, 0.45, 0.65, 0.85, 0.95]),
    )
    @settings(max_examples=80, deadline=None)
    def test_admitted_paths_match_brute_force(self, seed, threshold):
        graph = _random_graph(seed)
        origin = graph.relations[0]
        schema = generate_result_schema(
            graph, [origin], WeightThreshold(threshold)
        )
        admitted = {
            (
                path.origin,
                tuple((e.source, e.target) for e in path.joins),
                path.terminal_attribute,
            )
            for path in schema.projection_paths
        }
        expected = {
            (origin_, joins, attr)
            for origin_, joins, attr, weight in _all_projection_paths(
                graph, origin
            )
            if weight >= threshold - 1e-12
        }
        assert admitted == expected

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_multi_origin_union(self, seed):
        graph = _random_graph(seed)
        origins = list(graph.relations[:2])
        threshold = 0.5
        schema = generate_result_schema(
            graph, origins, WeightThreshold(threshold)
        )
        admitted = {
            (
                path.origin,
                tuple((e.source, e.target) for e in path.joins),
                path.terminal_attribute,
            )
            for path in schema.projection_paths
        }
        expected = set()
        for origin in origins:
            for origin_, joins, attr, weight in _all_projection_paths(
                graph, origin
            ):
                if weight >= threshold - 1e-12:
                    expected.add((origin_, joins, attr))
        assert admitted == expected


class TestTopROptimality:
    @given(seed=st.integers(0, 10_000), r=st.integers(1, 6))
    @settings(max_examples=80, deadline=None)
    def test_no_excluded_attribute_beats_an_admitted_one(self, seed, r):
        graph = _random_graph(seed)
        origin = graph.relations[0]
        schema = generate_result_schema(graph, [origin], TopRProjections(r))
        assert len(schema.projected_attributes) <= r

        best: dict[tuple, float] = {}
        for __, ___, attr, weight in _all_projection_paths(graph, origin):
            best[attr] = max(best.get(attr, 0.0), weight)
        admitted = schema.projected_attributes
        excluded = set(best) - set(admitted)
        if admitted and excluded:
            worst_admitted = min(best[attr] for attr in admitted)
            best_excluded = max(best[attr] for attr in excluded)
            assert worst_admitted >= best_excluded - 1e-12

        # if fewer than r attributes exist at all, all must be admitted
        if len(best) <= r:
            assert set(admitted) == set(best)
