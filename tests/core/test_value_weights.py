"""Unit tests for value weights (§7 future-work extension)."""

import pytest

from repro import MaxTuplesPerRelation, WeightThreshold
from repro.core import (
    AttributeValueWeights,
    CallableWeigher,
    CombinedWeights,
    NumericAttributeWeights,
    TupleWeigher,
)
from repro.relational import Row


def _row(relation, tid, **values):
    return Row(relation, tid, tuple(values), tuple(values.values()))


class TestWeighers:
    def test_uniform_base(self):
        weigher = TupleWeigher()
        assert weigher.weight("R", _row("R", 1, A=1)) == 0.0

    def test_attribute_value_weights(self):
        weigher = AttributeValueWeights(
            {"GENRE": {"GENRE": {"Drama": 1.0, "Western": 0.1}}}
        )
        assert weigher.weight("GENRE", _row("GENRE", 1, GENRE="Drama")) == 1.0
        assert weigher.weight("GENRE", _row("GENRE", 2, GENRE="Western")) == 0.1
        assert weigher.weight("GENRE", _row("GENRE", 3, GENRE="Scifi")) == 0.0
        # unconfigured relation falls back to default
        assert weigher.weight("MOVIE", _row("MOVIE", 1, TITLE="x")) == 0.0

    def test_attribute_value_weights_default(self):
        weigher = AttributeValueWeights({}, default=0.5)
        assert weigher.weight("R", _row("R", 1, A=1)) == 0.5

    def test_numeric_recency(self):
        weigher = NumericAttributeWeights("MOVIE", "YEAR")
        recent = _row("MOVIE", 1, YEAR=2005)
        old = _row("MOVIE", 2, YEAR=1990)
        assert weigher.weight("MOVIE", recent) > weigher.weight("MOVIE", old)
        ascending = NumericAttributeWeights("MOVIE", "YEAR", descending=False)
        assert ascending.weight("MOVIE", old) > ascending.weight(
            "MOVIE", recent
        )

    def test_numeric_handles_nulls(self):
        weigher = NumericAttributeWeights("MOVIE", "YEAR")
        assert weigher.weight("MOVIE", _row("MOVIE", 1, YEAR=None)) == float(
            "-inf"
        )

    def test_callable(self):
        weigher = CallableWeigher(lambda rel, row: row.get("N", 0) * 2)
        assert weigher.weight("R", _row("R", 1, N=3)) == 6

    def test_combined(self):
        combined = CombinedWeights(
            CallableWeigher(lambda rel, row: 1.0),
            CallableWeigher(lambda rel, row: 2.0),
            scales=[1.0, 0.5],
        )
        assert combined.weight("R", _row("R", 1, A=1)) == 2.0

    def test_combined_validation(self):
        with pytest.raises(ValueError):
            CombinedWeights()
        with pytest.raises(ValueError):
            CombinedWeights(TupleWeigher(), scales=[1.0, 2.0])

    def test_sort_key_orders_descending_then_tid(self):
        weigher = CallableWeigher(lambda rel, row: row["W"])
        rows = [
            _row("R", 3, W=1.0),
            _row("R", 1, W=5.0),
            _row("R", 2, W=1.0),
        ]
        rows.sort(key=weigher.sort_key("R"))
        assert [r.tid for r in rows] == [1, 2, 3]


class TestGeneratorIntegration:
    def test_weigher_steers_naive_truncation(self, paper_engine):
        """Prefer old movies: the budgeted answer keeps 2001–2003

        instead of the tid-order 2005–2003 prefix."""
        prefer_old = NumericAttributeWeights(
            "MOVIE", "YEAR", descending=False
        )
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(3),
            strategy="naive",
            tuple_weigher=prefer_old,
        )
        years = sorted(row["YEAR"] for row in answer.rows_of("MOVIE"))
        assert years == [2001, 2002, 2003]

    def test_weigher_steers_round_robin_scan_order(self, paper_engine):
        """Per movie, the heavier genre is taken first in the RR round."""
        prefer = AttributeValueWeights(
            {"GENRE": {"GENRE": {"Thriller": 2.0, "Romance": 2.0,
                                 "Drama": 1.0, "Comedy": 0.5}}}
        )
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(3),
            strategy="round_robin",
            tuple_weigher=prefer,
        )
        genres = {row["GENRE"] for row in answer.rows_of("GENRE")}
        # movies 1..3 contribute their heaviest genre first:
        # Thriller (not Drama), Drama (not Comedy), Romance (not Comedy)
        assert genres == {"Thriller", "Drama", "Romance"}

    def test_weigher_steers_seed_selection(self, paper_engine):
        """With budget 1 on GENRE seeds, the heaviest matching tuple

        survives."""
        prefer = CallableWeigher(
            lambda rel, row: row.tid if rel == "GENRE" else 0.0
        )
        answer = paper_engine.ask(
            "Comedy",
            degree=WeightThreshold(0.95),
            cardinality=MaxTuplesPerRelation(1),
            tuple_weigher=prefer,
        )
        # four Comedy tuples (tids 3,5,7,8) — the highest-tid one wins
        tid_map = answer.report.tid_maps["GENRE"]
        assert set(tid_map) == {8}

    def test_without_weigher_prefix_is_tid_ordered(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(3),
            strategy="naive",
        )
        years = [row["YEAR"] for row in answer.rows_of("MOVIE")]
        assert years == [2005, 2004, 2003]

    def test_cardinality_still_respected(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(2),
            tuple_weigher=NumericAttributeWeights("MOVIE", "YEAR"),
        )
        assert all(n <= 2 for n in answer.cardinalities().values())


class TestQueryTimeWeights:
    def test_ask_weights_override_graph(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            weights={("join", "MOVIE", "GENRE"): 0.1},
        )
        assert "GENRE" not in answer.result_schema.relations
        # engine's base graph untouched
        again = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert "GENRE" in again.result_schema.relations

    def test_weights_layer_on_top_of_profile(self, paper_db, paper_graph):
        from repro import PrecisEngine, Profile

        engine = PrecisEngine(paper_db, graph=paper_graph)
        profile = Profile("p").set_join_weight("MOVIE", "GENRE", 0.95)
        answer = engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            profile=profile,
            weights={("join", "DIRECTOR", "MOVIE"): 0.2},
        )
        # profile keeps GENRE reachable via ACTOR->CAST->MOVIE; the
        # query-time override kills the DIRECTOR->MOVIE edge
        edges = {
            (e.source, e.target)
            for e in answer.result_schema.join_edges()
        }
        assert ("DIRECTOR", "MOVIE") not in edges
        assert ("MOVIE", "GENRE") in edges
