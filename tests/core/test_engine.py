"""Unit tests for the end-to-end engine facade (§4 architecture)."""

import pytest

from repro import (
    MaxTuplesPerRelation,
    PrecisEngine,
    PrecisQuery,
    Profile,
    TopRProjections,
    Unlimited,
    WeightThreshold,
)
from repro.text import SynonymMap


class TestAsk:
    def test_basic_answer(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        assert answer.found
        assert "MOVIE" in answer.database
        assert answer.total_tuples() > 0

    def test_accepts_query_object(self, paper_engine):
        query = PrecisQuery.parse('"Match Point"')
        answer = paper_engine.ask(query, degree=WeightThreshold(0.9))
        assert answer.found
        assert answer.query is query

    def test_unmatched_token_reported(self, paper_engine):
        answer = paper_engine.ask('"xyzzy not present"')
        assert not answer.found
        assert answer.unmatched_tokens == ("xyzzy not present",)
        assert answer.total_tuples() == 0

    def test_multi_token_union_semantics(self, paper_engine):
        answer = paper_engine.ask(
            '"Match Point" "Scarlett Johansson"',
            degree=WeightThreshold(0.9),
        )
        relations = {
            occ.relation
            for match in answer.matches
            for occ in match.occurrences
        }
        assert {"MOVIE", "ACTOR"} <= relations
        assert answer.result_schema.origin_relations

    def test_cost_measured(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert answer.cost.tuple_reads > 0

    def test_cardinality_respected(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"',
            degree=WeightThreshold(0.9),
            cardinality=MaxTuplesPerRelation(2),
        )
        assert all(n <= 2 for n in answer.cardinalities().values())

    def test_narrative_attached_when_translator_present(self, paper_engine):
        answer = paper_engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert answer.narrative
        assert "Woody Allen" in answer.narrative

    def test_translate_flag_off(self, paper_engine):
        answer = paper_engine.ask(
            '"Woody Allen"', degree=WeightThreshold(0.9), translate=False
        )
        assert answer.narrative is None


class TestPlan:
    def test_plan_returns_schema_without_tuples(self, paper_engine):
        schema, matches, graph = paper_engine.plan(
            '"Woody Allen"', degree=WeightThreshold(0.9)
        )
        assert set(schema.origin_relations) == {"DIRECTOR", "ACTOR"}
        assert matches[0].found
        assert graph is paper_engine.graph


class TestDefaults:
    def test_default_graph_from_schema(self, paper_db):
        engine = PrecisEngine(paper_db)
        answer = engine.ask('"Woody Allen"', degree=TopRProjections(4))
        assert answer.found

    def test_default_degree_applied(self, paper_db, paper_graph):
        engine = PrecisEngine(
            paper_db, graph=paper_graph,
            default_degree=TopRProjections(1),
        )
        answer = engine.ask('"Woody Allen"')
        assert len(answer.result_schema.projected_attributes) == 1

    def test_default_cardinality_applied(self, paper_db, paper_graph):
        engine = PrecisEngine(
            paper_db, graph=paper_graph,
            default_cardinality=MaxTuplesPerRelation(1),
        )
        answer = engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert all(n <= 1 for n in answer.cardinalities().values())


class TestSynonyms:
    def test_synonym_resolves_to_canonical(self, paper_db, paper_graph):
        synonyms = SynonymMap()
        synonyms.add_synonym("the woodman", "Woody Allen")
        engine = PrecisEngine(paper_db, graph=paper_graph, synonyms=synonyms)
        answer = engine.ask(
            '"the woodman"', degree=WeightThreshold(0.9)
        )
        assert answer.found


class TestProfiles:
    def test_profile_overrides_weights(self, paper_db, paper_graph):
        engine = PrecisEngine(paper_db, graph=paper_graph)
        fan = Profile("fan")
        # a fan doesn't care about genres
        fan.set_join_weight("MOVIE", "GENRE", 0.1)
        answer = engine.ask(
            '"Woody Allen"', degree=WeightThreshold(0.9), profile=fan
        )
        assert "GENRE" not in answer.result_schema.relations
        # base graph untouched
        plain = engine.ask('"Woody Allen"', degree=WeightThreshold(0.9))
        assert "GENRE" in plain.result_schema.relations

    def test_registered_profile_by_name(self, paper_db, paper_graph):
        engine = PrecisEngine(paper_db, graph=paper_graph)
        reviewer = Profile(
            "reviewer",
            degree=WeightThreshold(0.8),
            cardinality=MaxTuplesPerRelation(2),
        )
        engine.register_profile(reviewer)
        answer = engine.ask('"Woody Allen"', profile="reviewer")
        assert all(n <= 2 for n in answer.cardinalities().values())
        # the reviewer's looser degree reaches further than 0.9
        assert ("ACTOR", "BLOCATION") not in answer.result_schema.projected_attributes
        deep = engine.ask('"Woody Allen"', degree=WeightThreshold(0.6))
        assert len(deep.result_schema.projected_attributes) >= len(
            answer.result_schema.projected_attributes
        )

    def test_unknown_profile_raises(self, paper_db, paper_graph):
        engine = PrecisEngine(paper_db, graph=paper_graph)
        with pytest.raises(KeyError):
            engine.ask('"Woody Allen"', profile="nobody")


class TestStopwords:
    def test_bare_stopwords_dropped_when_enabled(self, paper_db, paper_graph):
        engine = PrecisEngine(
            paper_db, graph=paper_graph, drop_stopwords=True
        )
        # "the" alone matches several titles; with stopword dropping the
        # query reduces to the informative token only
        answer = engine.ask("the jade", degree=WeightThreshold(0.9))
        assert [m.token for m in answer.matches] == ["jade"]

    def test_quoted_phrases_keep_stopwords(self, paper_db, paper_graph):
        engine = PrecisEngine(
            paper_db, graph=paper_graph, drop_stopwords=True
        )
        answer = engine.ask(
            '"The Curse of the Jade Scorpion"', degree=WeightThreshold(0.9)
        )
        assert answer.found

    def test_disabled_by_default(self, paper_engine):
        answer = paper_engine.ask("the jade", degree=WeightThreshold(0.9))
        tokens = [m.token for m in answer.matches]
        assert "the" in tokens
