"""Direct unit tests for the ResultSchema container."""

import pytest

from repro.core.result_schema import ResultSchema
from repro.graph import Path
from repro.graph.schema_graph import JoinEdge, ProjectionEdge


def _schema_with_paths():
    schema = ResultSchema(origin_relations=("A", "B"))
    a_title = Path.seed(ProjectionEdge("A", "TITLE", 1.0))
    a_to_c = Path.seed(JoinEdge("A", "C", "K", "K", 0.9)).extend(
        ProjectionEdge("C", "NAME", 1.0)
    )
    b_to_c = Path.seed(JoinEdge("B", "C", "K2", "K2", 0.8)).extend(
        ProjectionEdge("C", "NAME", 0.9)
    )
    deep = (
        Path.seed(JoinEdge("A", "C", "K", "K", 0.9))
        .extend(JoinEdge("C", "D", "J", "J", 0.7))
        .extend(ProjectionEdge("D", "LABEL", 1.0))
    )
    for path in (a_title, a_to_c, b_to_c, deep):
        schema.admit(path)
    return schema


class TestAccumulation:
    def test_relations_first_appearance_order(self):
        schema = _schema_with_paths()
        assert schema.relations == ("A", "C", "B", "D")

    def test_join_path_rejected(self):
        schema = ResultSchema(origin_relations=("A",))
        join_only = Path.seed(JoinEdge("A", "B", "K", "K", 0.5))
        with pytest.raises(ValueError):
            schema.admit(join_only)

    def test_empty(self):
        schema = ResultSchema(origin_relations=("A",))
        assert schema.is_empty()
        assert schema.relations == ()
        assert schema.join_edges() == ()


class TestDerivedViews:
    def test_attributes_of(self):
        schema = _schema_with_paths()
        assert schema.attributes_of("A") == ("TITLE",)
        assert schema.attributes_of("C") == ("NAME",)
        assert schema.attributes_of("D") == ("LABEL",)

    def test_projected_attributes(self):
        schema = _schema_with_paths()
        assert schema.projected_attributes == {
            ("A", "TITLE"), ("C", "NAME"), ("D", "LABEL"),
        }

    def test_join_edges_deduplicated(self):
        schema = _schema_with_paths()
        pairs = [(e.source, e.target) for e in schema.join_edges()]
        assert pairs == [("A", "C"), ("B", "C"), ("C", "D")]

    def test_in_degrees(self):
        schema = _schema_with_paths()
        assert schema.in_degrees() == {"A": 0, "B": 0, "C": 2, "D": 1}

    def test_join_edges_into_and_from(self):
        schema = _schema_with_paths()
        assert {e.source for e in schema.join_edges_into("C")} == {"A", "B"}
        assert [e.target for e in schema.join_edges_from("C")] == ["D"]

    def test_retrieval_attributes_add_join_columns(self):
        schema = _schema_with_paths()
        assert set(schema.retrieval_attributes("C")) == {"NAME", "K", "K2", "J"}
        assert set(schema.retrieval_attributes("A")) == {"TITLE", "K"}

    def test_paths_from(self):
        schema = _schema_with_paths()
        assert len(schema.paths_from("A")) == 3
        assert len(schema.paths_from("B")) == 1

    def test_describe_mentions_origins_and_degrees(self):
        schema = _schema_with_paths()
        text = schema.describe()
        assert "* A(TITLE)" in text
        assert "in-degree=2" in text
